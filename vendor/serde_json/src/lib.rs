//! Offline stand-in for `serde_json`.
//!
//! Renders the stub `serde` crate's [`Value`] tree as JSON text and parses
//! JSON text back into it. Covers the workspace's usage: `to_string`,
//! `to_writer`, `from_str`, `from_reader`, plus `to_value`/`from_value`.
//!
//! Numbers: integers that fit `i64`/`u64` stay integers; everything else is
//! `f64`, printed with Rust's shortest round-trip formatting (valid JSON,
//! exact round-trip). Non-finite floats serialize as `null`, as real
//! serde_json does.

pub use serde::value::Value;

/// Error raised by any serialization or parsing function in this crate.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(format!("io error: {e}"))
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Deserializes a `T` out of a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: std::io::Write, T: serde::Serialize>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Parses a `T` from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Parses a `T` from a JSON reader (reads to end).
pub fn from_reader<R: std::io::Read, T: serde::Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's `{}` for f64 is the shortest string that round-trips; it is
    // valid JSON except that integral values print without a decimal point,
    // which JSON also permits.
    let s = format!("{f}");
    out.push_str(&s);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn consume_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(&format!("invalid literal, expected `{lit}`"))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.consume_lit("null", Value::Null),
            Some(b't') => self.consume_lit("true", Value::Bool(true)),
            Some(b'f') => self.consume_lit("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => self.err("unexpected character"),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                if self.peek() != Some(b'\\') {
                                    return self.err("missing low surrogate");
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return self.err("missing low surrogate");
                                }
                                self.pos += 1;
                                let lo = self.parse_hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                            continue; // parse_hex4 already advanced past the digits
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char (input is a &str, so
                    // byte boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error("invalid utf-8".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return self.err("truncated \\u escape");
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid utf-8 in \\u escape".into()))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in ["null", "true", "false", "0", "-7", "18446744073709551615", "1.5", "\"hi\""] {
            let v: Value = {
                let mut p = Parser { bytes: json.as_bytes(), pos: 0 };
                p.parse_value().unwrap()
            };
            let mut out = String::new();
            write_value(&mut out, &v);
            assert_eq!(out, json);
        }
    }

    #[test]
    fn nested_structures_parse() {
        let v: Vec<(u32, u32)> = from_str("[[1,2],[3,4]]").unwrap();
        assert_eq!(v, vec![(1, 2), (3, 4)]);
        let o: Option<f64> = from_str("null").unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn string_escapes() {
        let s: String = from_str("\"a\\n\\u0041\\\"\"").unwrap();
        assert_eq!(s, "a\nA\"");
        assert_eq!(to_string(&s).unwrap(), "\"a\\nA\\\"\"");
    }

    #[test]
    fn f32_exact_round_trip() {
        let xs: Vec<f32> = vec![0.1, -3.25, 1e-8, f32::MAX, f32::MIN_POSITIVE];
        let s = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&s).unwrap();
        assert_eq!(xs, back);
    }
}
