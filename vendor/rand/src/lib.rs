//! Offline stand-in for `rand` 0.8.
//!
//! Implements the slice of the rand 0.8 API this workspace uses — `RngCore`,
//! `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, and `seq::SliceRandom::{shuffle, choose}` — on top of a
//! xoshiro256++ generator seeded through SplitMix64. Stream quality is more
//! than adequate for the synthetic-network generation and SGD sampling done
//! here; no cryptographic claims are made (none were made by callers).
//!
//! The generated sequences differ from real rand's StdRng (ChaCha12), so
//! seeded runs are deterministic per-binary but not bit-identical to runs
//! against crates.io rand. Nothing in the workspace depends on the latter.

/// Core generator interface: a source of uniformly distributed bits.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the subset of rand's `Standard`
/// distribution used in this workspace).
pub trait Standard: Sized {
    /// Samples one value from the standard distribution for `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Uniform sampling from a range; implemented for the numeric ranges used
/// by callers of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` by 64-bit widening multiply (Lemire-style,
/// without the rejection step — bias is < 2^-64 · span, irrelevant here).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let x = rng.next_u64() as u128;
    (x * span) >> 64
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let f = <$t as Standard>::sample_standard(rng);
                self.start + f * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let f = <$t as Standard>::sample_standard(rng);
                start + f * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64 (not ChaCha12 as in real rand — see crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference).
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let x: f64 = a.gen();
            assert!((0.0..1.0).contains(&x));
            let n = a.gen_range(3usize..17);
            assert!((3..17).contains(&n));
            let m = a.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should permute");
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
