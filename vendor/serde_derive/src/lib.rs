//! Offline stand-in for `serde_derive`.
//!
//! Derives the workspace's simplified `serde::Serialize` / `serde::Deserialize`
//! traits (a `Value`-tree model rather than the visitor model of real serde)
//! for the shapes this codebase actually uses:
//!
//! - named-field structs (with `#[serde(skip)]` support: skipped on
//!   serialize, filled from `Default` on deserialize),
//! - tuple structs (newtypes serialize transparently, wider tuples as arrays),
//! - enums with unit variants (serialized as the variant-name string) and
//!   newtype variants (serialized as a single-key object).
//!
//! Generics, lifetimes other than those inside field types, struct variants,
//! and serde attributes beyond `skip` are intentionally unsupported and fail
//! loudly at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated invalid Deserialize impl")
}

struct Field {
    name: String,
    skip: bool,
}

struct Variant {
    name: String,
    newtype: bool,
}

enum Data {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    data: Data,
}

/// Returns true when the attribute token pair (`#`, `[...]`) at `i` is a
/// `#[serde(...)]` attribute whose argument list contains the word `skip`.
fn attr_is_serde_skip(group: &TokenTree) -> bool {
    let TokenTree::Group(g) = group else { return false };
    let mut inner = g.stream().into_iter();
    match inner.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match inner.next() {
        Some(TokenTree::Group(args)) => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Skips attributes starting at `i`, returning the next index and whether a
/// `#[serde(skip)]` was among them.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut skip = false;
    while i + 1 < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                skip |= attr_is_serde_skip(&toks[i + 1]);
                i += 2;
            }
            _ => break,
        }
    }
    (i, skip)
}

/// Skips `pub` / `pub(crate)` style visibility.
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if i < toks.len() {
            if let TokenTree::Group(g) = &toks[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs(&toks, 0);
    i = skip_vis(&toks, i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the offline stub");
    }
    let data = match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Unit,
            other => panic!("serde_derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde_derive: expected `struct` or `enum`, found `{other}`"),
    };
    Item { name, data }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (next, skip) = skip_attrs(&toks, i);
        i = skip_vis(&toks, next);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other}"),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for (idx, t) in toks.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                trailing_comma = idx + 1 == toks.len();
            }
            _ => {}
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (next, _) = skip_attrs(&toks, i);
        i = next;
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let mut newtype = false;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                if count_tuple_fields(g.stream()) != 1 {
                    panic!("serde_derive: variant `{name}`: only newtype variants are supported");
                }
                newtype = true;
                i += 1;
            } else {
                panic!("serde_derive: variant `{name}`: struct variants are not supported");
            }
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, newtype });
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::Named(fields) => {
            let mut s = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "match ::serde::Serialize::to_value(&self.{f}) {{\n\
                       ::serde::value::Value::Null => {{}}\n\
                       __v => __fields.push((::std::string::String::from(\"{f}\"), __v)),\n\
                     }}\n",
                    f = f.name
                ));
            }
            s.push_str("::serde::value::Value::Object(__fields)");
            s
        }
        Data::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::Tuple(n) => {
            let elems: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::value::Value::Array(vec![{}])", elems.join(", "))
        }
        Data::Unit => {
            "::serde::value::Value::Str(::std::string::String::from(\"null\"))".to_string()
        }
        Data::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                if v.newtype {
                    s.push_str(&format!(
                        "{name}::{v}(__x) => ::serde::value::Value::Object(vec![(::std::string::String::from(\"{v}\"), ::serde::Serialize::to_value(__x))]),\n",
                        v = v.name
                    ));
                } else {
                    s.push_str(&format!(
                        "{name}::{v} => ::serde::value::Value::Str(::std::string::String::from(\"{v}\")),\n",
                        v = v.name
                    ));
                }
            }
            s.push_str("}\n");
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::Named(fields) => {
            let mut s = format!("::std::result::Result::Ok({name} {{\n");
            for f in fields {
                if f.skip {
                    s.push_str(&format!("{}: ::std::default::Default::default(),\n", f.name));
                } else {
                    s.push_str(&format!(
                        "{f}: ::serde::__private::field(__v, \"{f}\", \"{name}\")?,\n",
                        f = f.name
                    ));
                }
            }
            s.push_str("})");
            s
        }
        Data::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Data::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__private::tuple_elem(__v, {i}, {n}, \"{name}\")?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", elems.join(", "))
        }
        Data::Unit => format!("::std::result::Result::Ok({name})"),
        Data::Enum(variants) => {
            let mut s = String::from("match __v {\n");
            for v in variants {
                if v.newtype {
                    s.push_str(&format!(
                        "::serde::value::Value::Object(__o) if __o.len() == 1 && __o[0].0 == \"{v}\" => \
                         ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(&__o[0].1)?)),\n",
                        v = v.name
                    ));
                } else {
                    s.push_str(&format!(
                        "::serde::value::Value::Str(__s) if __s == \"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    ));
                }
            }
            s.push_str(&format!(
                "_ => ::std::result::Result::Err(::serde::Error::custom(format!(\"invalid {name} variant: {{:?}}\", __v))),\n}}\n"
            ));
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}
