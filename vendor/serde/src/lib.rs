//! Offline stand-in for `serde`.
//!
//! The container this workspace builds in has no access to crates.io, so this
//! crate (plus the sibling `serde_derive` and `serde_json` stubs under
//! `vendor/`) provides the small serde surface the workspace actually uses.
//! The data model is deliberately simple: `Serialize` lowers a type to a
//! [`value::Value`] tree and `Deserialize` rebuilds it from one. `serde_json`
//! renders/parses that tree as JSON.
//!
//! Semantics mirrored from real serde where this workspace depends on them:
//! `Option::None` struct fields are omitted from objects, `#[serde(skip)]`
//! fields are omitted and rebuilt via `Default`, unit enum variants become
//! strings, and newtype variants become single-key objects.

pub use serde_derive::{Deserialize, Serialize};

pub mod value {
    //! The serialization data model: a JSON-shaped value tree.

    /// A dynamically typed serialized value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// Absent / null.
        Null,
        /// Boolean.
        Bool(bool),
        /// Signed integer.
        Int(i64),
        /// Unsigned integer too large for `i64` (or any non-negative integer).
        UInt(u64),
        /// Floating point number.
        Float(f64),
        /// String.
        Str(String),
        /// Homogeneous-ish sequence.
        Array(Vec<Value>),
        /// Key/value map preserving insertion order.
        Object(Vec<(String, Value)>),
    }

    impl Value {
        /// Looks up `key` in an object; `None` for missing keys or non-objects.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// Numeric view of the value, if it is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match *self {
                Value::Int(i) => Some(i as f64),
                Value::UInt(u) => Some(u as f64),
                Value::Float(f) => Some(f),
                _ => None,
            }
        }

        /// Signed-integer view of the value, if it is an integer.
        pub fn as_i64(&self) -> Option<i64> {
            match *self {
                Value::Int(i) => Some(i),
                Value::UInt(u) => i64::try_from(u).ok(),
                _ => None,
            }
        }

        /// Unsigned-integer view of the value, if it is a non-negative integer.
        pub fn as_u64(&self) -> Option<u64> {
            match *self {
                Value::Int(i) => u64::try_from(i).ok(),
                Value::UInt(u) => Some(u),
                _ => None,
            }
        }

        /// Short tag describing the value's type, for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::Int(_) | Value::UInt(_) => "integer",
                Value::Float(_) => "number",
                Value::Str(_) => "string",
                Value::Array(_) => "array",
                Value::Object(_) => "object",
            }
        }
    }
}

use value::Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes an instance from the data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, found {}", got.kind())))
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v.as_i64() {
                    Some(i) => <$t>::try_from(i)
                        .map_err(|_| Error(format!("integer {i} out of range for {}", stringify!($t)))),
                    None => type_err("integer", v),
                }
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v.as_u64() {
                    Some(u) => <$t>::try_from(u)
                        .map_err(|_| Error(format!("integer {u} out of range for {}", stringify!($t)))),
                    None => type_err("unsigned integer", v),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map_or_else(|| type_err("number", v), Ok)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 → f64 widening is exact, so shortest-form printing round-trips.
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map_or_else(|| type_err("number", v), |f| Ok(f as f32))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // Only `&'static str` fields exist in this workspace (dataset names);
        // leaking the handful of short strings involved is acceptable.
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => type_err("string", other),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $n => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => type_err(concat!("array of length ", $n), other),
                }
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

// `Value` round-trips through itself, so callers can parse untyped JSON
// (e.g. to inspect a schema-version field before committing to a typed
// decode) with the same `from_str`/`to_string` entry points.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[doc(hidden)]
pub mod __private {
    //! Helpers used by the code generated in `serde_derive`.

    use super::{Deserialize, Error, Value};

    static NULL: Value = Value::Null;

    /// Deserializes struct field `name`; missing keys deserialize from
    /// `Null` so `Option` fields default to `None`.
    pub fn field<T: Deserialize>(v: &Value, name: &str, ty: &str) -> Result<T, Error> {
        let fv = match v {
            Value::Object(_) => v.get(name).unwrap_or(&NULL),
            other => {
                return Err(Error::custom(format!("expected {ty} object, found {}", other.kind())))
            }
        };
        T::from_value(fv).map_err(|e| Error::custom(format!("{ty}.{name}: {e}")))
    }

    /// Deserializes element `idx` of a tuple struct serialized as an array.
    pub fn tuple_elem<T: Deserialize>(
        v: &Value,
        idx: usize,
        len: usize,
        ty: &str,
    ) -> Result<T, Error> {
        match v {
            Value::Array(items) if items.len() == len => {
                T::from_value(&items[idx]).map_err(|e| Error::custom(format!("{ty}.{idx}: {e}")))
            }
            other => Err(Error::custom(format!(
                "expected {ty} as array of length {len}, found {}",
                other.kind()
            ))),
        }
    }
}
