//! Offline stand-in for `proptest`.
//!
//! Provides the property-testing surface this workspace uses: the
//! [`Strategy`] trait with `prop_map`, numeric range strategies,
//! tuple strategies, [`collection::vec`], `ProptestConfig::with_cases`, the
//! `proptest!` macro, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for an offline stub:
//! no shrinking (failures report the sampled inputs instead of minimal
//! ones), no persisted failure regressions, and sampling is driven by a
//! fixed-seed xoshiro generator so runs are deterministic per test name.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Outcome of one generated test case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assumptions did not hold; try another sample.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection (filtered case).
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG driving test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from a test name, so each test gets a distinct
    /// but reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next 64 random bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn uniform(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128) * span) >> 64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Samples one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.uniform(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + rng.uniform(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy generating `Vec`s of `elem` with a length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u128;
            let len = self.size.min + rng.uniform(span) as usize;
            (0..len).map(|_| self.elem.gen_value(rng)).collect()
        }
    }
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __a,
                __b
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+),
                __a
            )));
        }
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(16).max(16);
            while __passed < __config.cases {
                if __attempts >= __max_attempts {
                    panic!(
                        "proptest: too many rejected cases ({} passed of {} wanted after {} attempts)",
                        __passed, __config.cases, __attempts
                    );
                }
                __attempts += 1;
                $(let $arg = $crate::Strategy::gen_value(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!("proptest case failed: {}\n  inputs: {}", __msg, __inputs);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f64..=2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..=2.0).contains(&y));
        }

        #[test]
        fn vec_and_map_compose(
            v in crate::collection::vec(0u32..100, 1..20).prop_map(|mut v| { v.sort_unstable(); v })
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn assume_filters(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
