//! Offline stand-in for `criterion` 0.5.
//!
//! A minimal wall-clock measurement harness exposing the criterion API this
//! workspace's benches use: `criterion_group!`/`criterion_main!`,
//! `Criterion::{bench_function, benchmark_group}`, `BenchmarkGroup::
//! {throughput, bench_function, bench_with_input, finish}`, `Bencher::iter`,
//! `Throughput`, `BenchmarkId`, and `black_box`.
//!
//! Measurement model: a short warm-up, then timed batches until ~0.25 s or
//! 10k iterations, reporting mean time per iteration (and per-element
//! throughput when declared). No statistics, plots, or baselines — the point
//! is that `cargo bench` runs offline and prints comparable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared work per benchmark iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Id carrying just the parameter (group name supplies the rest).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, running it repeatedly: brief warm-up, then measured
    /// batches until the time/iteration budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
        let budget = Duration::from_millis(250);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget && iters < 10_000 {
            black_box(f());
            iters += 1;
        }
        self.total = start.elapsed();
        self.iters = iters.max(1);
    }
}

fn report(id: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let per_iter = bencher.total.as_secs_f64() / bencher.iters as f64;
    let mut line = format!("{id:<40} {:>12.3} µs/iter", per_iter * 1e6);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / per_iter;
            line.push_str(&format!("  {:>12.0} elem/s", rate));
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / per_iter;
            line.push_str(&format!("  {:>12.0} B/s", rate));
        }
        None => {}
    }
    println!("{line}");
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Accepted for API compatibility; this harness sizes runs by a fixed
    /// time/iteration budget instead of a sample count.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { total: Duration::ZERO, iters: 1 };
        f(&mut b);
        report(id, &b, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.to_string(), throughput: None }
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work done per iteration for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { total: Duration::ZERO, iters: 1 };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { total: Duration::ZERO, iters: 1 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
