//! Application-level integration (Sec. 5): direction discovery, direction
//! quantification feeding link prediction, and bidirectionality analysis,
//! all running on one fitted model.

use dd_bench::BenchEnv;
use dd_datasets::{epinions, livejournal};
use dd_eval::linkpred::build_instance;
use deepdirect::apps::bidir::bidirectionality_scores;
use deepdirect::apps::discovery::discover_directions;
use deepdirect::apps::quantify::DirectionalityAdjacency;
use deepdirect::{DeepDirect, DeepDirectConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fast_cfg(seed: u64) -> DeepDirectConfig {
    DeepDirectConfig {
        dim: 32,
        max_iterations: Some(800_000),
        threads: 2,
        seed,
        ..Default::default()
    }
}

#[test]
fn one_model_serves_all_applications() {
    let env = BenchEnv { scale: 300, seed: 21, n_seeds: 1, out_dir: "/tmp".into() };
    let hidden = env.hidden_split(&livejournal(), 0.5, 21);
    let g = &hidden.network;
    let model = DeepDirect::new(fast_cfg(21)).fit(g);
    let d = |u, v| model.score(u, v).unwrap_or(0.5);

    // Discovery covers every undirected tie.
    let preds = discover_directions(g, d);
    assert_eq!(preds.len(), g.counts().undirected);

    // Quantification replaces exactly the bidirectional cells.
    let adj = DirectionalityAdjacency::quantified(g, d);
    let mut changed = 0usize;
    for (_, u, v) in g.bidirectional_pairs() {
        let a = adj.get(u, v);
        let b = adj.get(v, u);
        assert!((0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&b));
        if (a - 1.0).abs() > 1e-9 || (b - 1.0).abs() > 1e-9 {
            changed += 1;
        }
    }
    assert!(changed > 0, "directionality values must differ from the raw 1s");
    for (_, u, v) in g.directed_ties().take(20) {
        assert_eq!(adj.get(u, v), 1.0, "directed cells keep weight 1");
    }

    // Bidirectionality analysis covers every undirected tie and stays in
    // range.
    let scores = bidirectionality_scores(g, d);
    assert_eq!(scores.len(), g.counts().undirected);
    for s in &scores {
        assert!((0.0..=1.0).contains(&s.score));
        let hm =
            if s.d_uv + s.d_vu > 0.0 { 2.0 * s.d_uv * s.d_vu / (s.d_uv + s.d_vu) } else { 0.0 };
        assert!((s.score - hm).abs() < 1e-12);
    }
}

#[test]
fn quantified_adjacency_feeds_link_prediction() {
    let g = epinions().generate(300, 22).network;
    let mut rng = StdRng::seed_from_u64(22);
    let inst = build_instance(&g, 0.8, 50_000, &mut rng);
    assert!(inst.positive_rate() > 0.0);

    let model = DeepDirect::new(fast_cfg(22)).fit(&inst.train);
    let raw = inst.auc_unweighted();
    let weighted = inst.auc_quantified(|u, v| model.score(u, v).unwrap_or(0.5));
    assert!((0.0..=1.0).contains(&raw));
    assert!((0.0..=1.0).contains(&weighted));
    // The Fig. 8 claim at integration scale: quantification should not be
    // materially worse than the raw matrix, and usually improves it.
    assert!(
        weighted > raw - 0.05,
        "directionality matrix should hold up: raw {raw}, weighted {weighted}"
    );
}

#[test]
fn discovery_is_antisymmetric_in_the_scorer() {
    // Flipping the scorer must flip every predicted direction.
    let env = BenchEnv { scale: 400, seed: 23, n_seeds: 1, out_dir: "/tmp".into() };
    let hidden = env.hidden_split(&livejournal(), 0.5, 23);
    let g = &hidden.network;
    let fwd = discover_directions(g, |u, v| if u < v { 0.9 } else { 0.1 });
    let rev = discover_directions(g, |u, v| if u < v { 0.1 } else { 0.9 });
    assert_eq!(fwd.len(), rev.len());
    for (a, b) in fwd.iter().zip(&rev) {
        assert_eq!((a.src, a.dst), (b.dst, b.src));
    }
}
