//! Cross-method integration: all five methods of the paper's comparison run
//! on the same split through the shared harness, produce valid
//! probabilities, and beat chance on a pattern-bearing network.

use dd_baselines::{HfConfig, LineConfig, RedirectNConfig, RedirectTConfig};
use dd_bench::BenchEnv;
use dd_datasets::twitter;
use dd_eval::runner::{direction_discovery_accuracy, scorer_accuracy, Method};
use deepdirect::DeepDirectConfig;

fn split(seed: u64) -> dd_graph::sampling::HiddenDirections {
    let env = BenchEnv { scale: 300, seed, n_seeds: 1, out_dir: "/tmp".into() };
    env.hidden_split(&twitter(), 0.5, seed)
}

fn fast_suite(seed: u64) -> Vec<Method> {
    vec![
        Method::DeepDirect(DeepDirectConfig {
            dim: 32,
            max_iterations: Some(600_000),
            seed,
            ..Default::default()
        }),
        Method::Hf(HfConfig::default()),
        Method::Line(LineConfig {
            dim: 16,
            max_iterations: Some(300_000),
            seed,
            ..Default::default()
        }),
        Method::RedirectN(RedirectNConfig { dim: 16, epochs: 30, seed, ..Default::default() }),
        Method::RedirectT(RedirectTConfig { max_sweeps: 20, ..Default::default() }),
    ]
}

#[test]
fn all_methods_beat_chance_on_status_network() {
    let hidden = split(1);
    for method in fast_suite(1) {
        let acc = direction_discovery_accuracy(&method, &hidden);
        assert!(
            acc > 0.55,
            "{} accuracy {acc} should beat chance on a pattern-bearing network",
            method.name()
        );
    }
}

#[test]
fn scores_are_valid_probabilities() {
    let hidden = split(2);
    for method in fast_suite(2) {
        let scorer = method.fit(&hidden.network);
        for (_, t) in hidden.network.iter_ties().take(50) {
            let d = scorer.score(t.src, t.dst);
            assert!(
                (0.0..=1.0).contains(&d),
                "{}: d({}, {}) = {d} out of range",
                method.name(),
                t.src,
                t.dst
            );
        }
    }
}

#[test]
fn fitted_scorers_are_reusable() {
    // scorer_accuracy must agree with direction_discovery_accuracy when
    // reusing the same fitted scorer.
    let hidden = split(3);
    let method = &fast_suite(3)[1]; // HF is deterministic given config
    let scorer = method.fit(&hidden.network);
    let a1 = scorer_accuracy(scorer.as_ref(), &hidden);
    let a2 = scorer_accuracy(scorer.as_ref(), &hidden);
    assert_eq!(a1, a2, "re-scoring must be deterministic");
    let via_protocol = direction_discovery_accuracy(method, &hidden);
    assert!((a1 - via_protocol).abs() < 1e-12);
}

#[test]
fn deepdirect_leads_or_ties_the_suite_on_average() {
    // The Fig. 3 headline shape, at integration-test scale: averaged over
    // seeds, DeepDirect must be within noise of the best method (and is
    // usually the best). A strict per-seed ordering would be flaky at this
    // network size, so allow a small tolerance.
    let mut totals: Vec<(String, f64)> = Vec::new();
    for seed in [11u64, 12, 13] {
        let hidden = split(seed);
        for method in fast_suite(seed) {
            let acc = direction_discovery_accuracy(&method, &hidden);
            match totals.iter_mut().find(|(n, _)| n == method.name()) {
                Some((_, sum)) => *sum += acc,
                None => totals.push((method.name().to_string(), acc)),
            }
        }
    }
    let dd = totals.iter().find(|(n, _)| n == "DeepDirect").unwrap().1;
    let best = totals.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max);
    assert!(dd + 0.06 * 3.0 >= best, "DeepDirect mean accuracy should be competitive: {totals:?}");
}
