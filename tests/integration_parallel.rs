//! Cross-crate determinism contract test (DESIGN.md §7.9): every parallel
//! stage built on `dd-runtime` must produce bit-identical results at any
//! thread count, because chunk structure and reduction order depend only on
//! the input size — never on how many workers happen to run the chunks.
//!
//! Covered stages: exact and sampled centrality (dd-graph), the HF feature
//! matrix (dd-baselines), tie-universe construction (deepdirect), and the
//! α/β validation grid (dd-eval). The one *documented* exemption is the
//! Hogwild E-Step itself (racy by design, Sec. 5.2): every grid cell below
//! therefore runs its fit with `threads == 1` while the cells themselves
//! fan out across workers.

use dd_baselines::hf::{training_matrix, HfConfig, NodeStats};
use dd_datasets::all_datasets;
use dd_eval::grid::grid_search_alpha_beta;
use dd_graph::centrality::{
    betweenness_all_threads, betweenness_sampled_threads, closeness_all_threads,
    closeness_sampled_threads,
};
use dd_graph::MixedSocialNetwork;
use dd_linalg::rng::Pcg32;
use dd_runtime::{Pool, Threads};
use deepdirect::{DeepDirectConfig, TieUniverse};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Thread counts the contract is exercised at (serial, small, oversubscribed).
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn fixture() -> MixedSocialNetwork {
    let spec = all_datasets().into_iter().find(|s| s.name.to_lowercase() == "twitter").unwrap();
    spec.generate(300, 0x9a11).network
}

fn assert_bits_eq(name: &str, threads: usize, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{name}: length mismatch at {threads} threads");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{name}[{i}] differs at {threads} threads: {x} vs {y}"
        );
    }
}

#[test]
fn centrality_is_bit_identical_across_thread_counts() {
    let g = fixture();
    let bet1 = betweenness_all_threads(&g, Threads::serial());
    let clo1 = closeness_all_threads(&g, Threads::serial());
    let mut rng = StdRng::seed_from_u64(3);
    let bets1 = betweenness_sampled_threads(&g, 32, &mut rng, Threads::serial());
    let clos1 = closeness_sampled_threads(&g, 32, &mut rng, Threads::serial());
    for n in THREAD_COUNTS {
        let t = Threads::new(n).unwrap();
        assert_bits_eq("betweenness", n, &bet1, &betweenness_all_threads(&g, t));
        assert_bits_eq("closeness", n, &clo1, &closeness_all_threads(&g, t));
        // Pivot draws are serial and happen before the parallel BFS passes,
        // so replaying the same RNG sequence must reproduce the estimates.
        let mut rng = StdRng::seed_from_u64(3);
        assert_bits_eq(
            "betweenness_sampled",
            n,
            &bets1,
            &betweenness_sampled_threads(&g, 32, &mut rng, t),
        );
        assert_bits_eq(
            "closeness_sampled",
            n,
            &clos1,
            &closeness_sampled_threads(&g, 32, &mut rng, t),
        );
    }
}

#[test]
fn hf_feature_matrix_is_bit_identical_across_thread_counts() {
    let g = fixture();
    let stats = NodeStats::compute(&g, &HfConfig::default());
    let (x1, y1) = training_matrix(&g, &stats, &Pool::new("test.hf", Threads::serial()));
    for n in THREAD_COUNTS {
        let pool = Pool::new("test.hf", Threads::new(n).unwrap());
        let (xn, yn) = training_matrix(&g, &stats, &pool);
        assert_eq!(x1, xn, "feature rows differ at {n} threads");
        assert_eq!(y1, yn, "labels differ at {n} threads");
    }
}

#[test]
fn tie_universe_build_is_bit_identical_across_thread_counts() {
    let g = fixture();
    let build = |n: usize| {
        let mut rng = Pcg32::seed_from_u64(0xdeed);
        TieUniverse::build_with_threads(&g, 6, &mut rng, Threads::new(n).unwrap())
    };
    let u1 = build(1);
    for n in THREAD_COUNTS {
        let un = build(n);
        assert_eq!(u1.len(), un.len(), "universe size differs at {n} threads");
        assert_eq!(
            u1.n_connected_pairs(),
            un.n_connected_pairs(),
            "connected-pair count differs at {n} threads"
        );
        assert_bits_eq("tie_degree_weights", n, &u1.tie_degree_weights(), &un.tie_degree_weights());
        for idx in 0..u1.len() {
            assert_eq!(
                u1.triad_samples(idx),
                un.triad_samples(idx),
                "triad samples for tie {idx} differ at {n} threads"
            );
        }
    }
}

#[test]
fn eval_grid_is_bit_identical_across_thread_counts() {
    let g = fixture();
    let alphas = [0.0f32, 5.0];
    let betas = [0.0f32, 0.1];
    // threads == 1 inside each fit: the Hogwild E-Step is the documented
    // exemption from the determinism contract, so grid determinism is only
    // promised for serial per-cell fits.
    let base = DeepDirectConfig {
        dim: 8,
        max_iterations: Some(20_000),
        threads: 1,
        seed: 5,
        ..Default::default()
    };
    let run = |n: usize| {
        let mut rng = StdRng::seed_from_u64(17);
        grid_search_alpha_beta(
            &g,
            &alphas,
            &betas,
            &base,
            0.5,
            2,
            Threads::new(n).unwrap(),
            &mut rng,
        )
    };
    let (a1, b1, table1) = run(1);
    for n in THREAD_COUNTS {
        let (an, bn, tablen) = run(n);
        assert_eq!((a1, b1), (an, bn), "grid winner differs at {n} threads");
        assert_eq!(table1.len(), tablen.len());
        for (p1, pn) in table1.iter().zip(&tablen) {
            assert_eq!((p1.alpha, p1.beta), (pn.alpha, pn.beta));
            assert_eq!(
                p1.accuracy.to_bits(),
                pn.accuracy.to_bits(),
                "cell (α={}, β={}) differs at {n} threads",
                p1.alpha,
                p1.beta
            );
        }
    }
}
