//! End-to-end pipeline test: generate a dataset analog, hide directions,
//! fit DeepDirect, and verify the full TDL loop recovers directions far
//! better than chance — spanning dd-graph, dd-datasets, deepdirect and
//! dd-eval.

use dd_bench::BenchEnv;
use dd_datasets::tencent;
use dd_eval::runner::{direction_discovery_accuracy, Method};
use deepdirect::apps::discovery::{discover_directions, discovery_accuracy};
use deepdirect::{DeepDirect, DeepDirectConfig, DirectionalityModel};

fn fast_cfg(seed: u64) -> DeepDirectConfig {
    DeepDirectConfig {
        dim: 32,
        max_iterations: Some(800_000),
        threads: 2,
        seed,
        ..Default::default()
    }
}

#[test]
fn deepdirect_recovers_directions_end_to_end() {
    let env = BenchEnv { scale: 250, seed: 7, n_seeds: 1, out_dir: "/tmp".into() };
    let hidden = env.hidden_split(&tencent(), 0.5, 7);
    let acc = direction_discovery_accuracy(&Method::DeepDirect(fast_cfg(7)), &hidden);
    assert!(acc > 0.62, "end-to-end accuracy {acc} too low");
}

#[test]
fn model_scores_agree_with_discovery_protocol() {
    let env = BenchEnv { scale: 300, seed: 8, n_seeds: 1, out_dir: "/tmp".into() };
    let hidden = env.hidden_split(&tencent(), 0.5, 8);
    let model = DeepDirect::new(fast_cfg(8)).fit(&hidden.network);
    let preds = discover_directions(&hidden.network, |u, v| model.score(u, v).unwrap_or(0.5));
    assert_eq!(preds.len(), hidden.network.counts().undirected);
    let acc = discovery_accuracy(&preds, &hidden.truth);
    // Every prediction respects Eq. 28: the reported orientation is the
    // higher-scoring one.
    for p in &preds {
        assert!(p.forward >= p.backward);
    }
    assert!(acc > 0.55, "accuracy {acc}");
}

#[test]
fn persisted_model_reproduces_predictions() {
    let env = BenchEnv { scale: 400, seed: 9, n_seeds: 1, out_dir: "/tmp".into() };
    let hidden = env.hidden_split(&tencent(), 0.5, 9);
    let model = DeepDirect::new(fast_cfg(9)).fit(&hidden.network);
    let mut buf = Vec::new();
    model.save(&mut buf).unwrap();
    let loaded = DirectionalityModel::load(buf.as_slice()).unwrap();
    for (_, t) in hidden.network.iter_ties().take(100) {
        assert_eq!(model.score(t.src, t.dst), loaded.score(t.src, t.dst));
    }
}

#[test]
fn alpha_supervision_does_not_hurt_and_labels_help_dstep() {
    // With identical topology, the supervised model (α = 5) must stay in
    // the same accuracy band as the unsupervised E-Step followed by the
    // supervised D-Step; both must beat chance decisively.
    let env = BenchEnv { scale: 300, seed: 10, n_seeds: 1, out_dir: "/tmp".into() };
    let hidden = env.hidden_split(&tencent(), 0.3, 10);
    let sup = direction_discovery_accuracy(&Method::DeepDirect(fast_cfg(10)), &hidden);
    let mut unsup_cfg = fast_cfg(10);
    unsup_cfg.alpha = 0.0;
    unsup_cfg.beta = 0.0;
    let unsup = direction_discovery_accuracy(&Method::DeepDirect(unsup_cfg), &hidden);
    assert!(sup > 0.55 && unsup > 0.55, "sup {sup}, unsup {unsup}");
    assert!(sup + 0.08 > unsup, "supervision should not collapse accuracy: {sup} vs {unsup}");
}
