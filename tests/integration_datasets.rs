//! Dataset-analog integration: the five generators produce networks whose
//! shape matches their Table 2 specification, remain connected, and carry a
//! learnable direction signal.

use dd_datasets::{all_datasets, bidirectional_heavy_datasets, DatasetStats};
use dd_eval::linkpred::is_bidirectional_heavy;
use dd_graph::traversal::connected_components;

#[test]
fn all_specs_generate_consistent_networks() {
    for spec in all_datasets() {
        let g = spec.generate(250, 5);
        let stats = DatasetStats::compute(spec.name, &g.network);
        assert_eq!(stats.nodes, g.network.n_nodes(), "{}", spec.name);
        assert_eq!(
            stats.ties,
            stats.directed + stats.bidirectional + stats.undirected,
            "{}",
            spec.name
        );
        assert_eq!(stats.undirected, 0, "{}: raw datasets have no undirected ties", spec.name);
        assert!(
            (stats.reciprocity - spec.reciprocity).abs() < 0.1,
            "{}: reciprocity {} vs spec {}",
            spec.name,
            stats.reciprocity,
            spec.reciprocity
        );
    }
}

#[test]
fn generated_networks_are_connected() {
    for spec in all_datasets() {
        let g = spec.generate(300, 6);
        let (_, n) = connected_components(&g.network);
        assert_eq!(n, 1, "{} should be connected", spec.name);
    }
}

#[test]
fn bidirectional_heavy_datasets_satisfy_sec63_criterion() {
    for spec in bidirectional_heavy_datasets() {
        let g = spec.generate(250, 7);
        assert!(
            is_bidirectional_heavy(&g.network),
            "{}: over half the ties must be bidirectional",
            spec.name
        );
    }
    // Twitter, by contrast, is follower-dominated.
    let tw = dd_datasets::twitter().generate(250, 7);
    assert!(!is_bidirectional_heavy(&tw.network));
}

#[test]
fn direction_signal_is_present() {
    // The latent status must orient most directed ties (the generator's
    // flip probability is ≤ 0.12 everywhere).
    for spec in all_datasets() {
        let g = spec.generate(250, 8);
        let mut up = 0usize;
        let mut total = 0usize;
        for (_, u, v) in g.network.directed_ties() {
            total += 1;
            if g.status[u.index()] <= g.status[v.index()] {
                up += 1;
            }
        }
        let frac = up as f64 / total as f64;
        assert!(frac > 0.85, "{}: only {frac} of ties follow status", spec.name);
    }
}

#[test]
fn scale_one_config_matches_table2_counts() {
    // We never *generate* at scale 1 in tests (too large), but the spec
    // must request exactly the paper's node counts.
    let expected = [
        ("Twitter", 65_044),
        ("LiveJournal", 80_000),
        ("Epinions", 75_879),
        ("Slashdot", 77_360),
        ("Tencent", 75_000),
    ];
    for (spec, (name, nodes)) in all_datasets().iter().zip(expected) {
        assert_eq!(spec.name, name);
        assert_eq!(spec.config(1).n_nodes, nodes);
    }
}
