//! Direction quantification on bidirectional ties (Sec. 5.2 / 6.3): builds
//! the *directionality adjacency matrix* with a learned directionality
//! function and shows that it improves Jaccard link prediction over the raw
//! adjacency matrix on the Epinions analog.
//!
//! ```text
//! cargo run --release -p deepdirect --example link_prediction
//! ```

use dd_datasets::epinions;
use dd_eval::linkpred::build_instance;
use deepdirect::{DeepDirect, DeepDirectConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let generated = epinions().generate(150, 11); // ~500 nodes
    let network = generated.network;
    let c = network.counts();
    println!(
        "Epinions analog: {} nodes, {} ties — {:.0}% bidirectional",
        network.n_nodes(),
        c.total(),
        100.0 * c.bidirectional as f64 / c.total() as f64,
    );

    // 80% of ties form the training network; candidates are its 2-hop
    // pairs; held-out ties are the positives.
    let mut rng = StdRng::seed_from_u64(11);
    let instance = build_instance(&network, 0.8, 100_000, &mut rng);
    println!(
        "link prediction: {} candidate pairs, positive rate {:.3}",
        instance.candidates.len(),
        instance.positive_rate(),
    );

    // Baseline: raw 0/1 adjacency.
    let raw_auc = instance.auc_unweighted();
    println!("\nAUC with raw adjacency matrix:           {raw_auc:.4}");

    // Learn the directionality function on the training network, then
    // replace each bidirectional cell (u, v) with d(u, v).
    let cfg = DeepDirectConfig {
        dim: 64,
        max_iterations: Some(3_000_000),
        seed: 11,
        ..Default::default()
    };
    let model = DeepDirect::new(cfg).fit(&instance.train);
    let weighted_auc = instance.auc_quantified(|u, v| model.score(u, v).unwrap_or(0.5));
    println!("AUC with directionality adjacency matrix: {weighted_auc:.4}");

    let delta = weighted_auc - raw_auc;
    println!(
        "\nquantifying bidirectional ties {} the ranking by {:+.4} AUC",
        if delta > 0.0 { "improves" } else { "changes" },
        delta,
    );
    println!("(Fig. 8 repeats this on LiveJournal/Epinions/Slashdot for all methods; run");
    println!(" `cargo run --release -p dd-bench --bin fig8_link_prediction` for the full figure.)");
}
