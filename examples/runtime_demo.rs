//! Demonstrates dd-runtime's determinism contract: `par_map_reduce` over a
//! fixed chunk structure, with one split `Pcg32` stream per chunk, produces
//! bit-identical results at any thread count.
//!
//! The workload is a Monte-Carlo estimate of pi: each chunk draws points
//! from its own RNG stream (stream `i` belongs to chunk `i`, regardless of
//! which thread runs it) and counts hits inside the unit circle; the
//! per-chunk counts are reduced sequentially in chunk order.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example runtime_demo -p dd-runtime
//! ```

use dd_linalg::Pcg32;
use dd_runtime::{split_streams, Pool, Threads};

const SAMPLES: usize = 1_000_000;
const CHUNK: usize = 10_000;

fn estimate_pi(threads: Threads) -> f64 {
    // The chunk structure and the RNG stream for each chunk depend only on
    // SAMPLES and the root seed — never on `threads`.
    let n_chunks = SAMPLES.div_ceil(CHUNK);
    let mut root = Pcg32::seed_from_u64(2026);
    let streams = split_streams(&mut root, n_chunks);

    let pool = Pool::new("pi", threads);
    let hits = pool
        .par_map_reduce(
            SAMPLES,
            CHUNK,
            |range| {
                let chunk_index = range.start / CHUNK;
                let mut rng = streams[chunk_index].clone();
                range
                    .filter(|_| {
                        let x = rng.next_f64();
                        let y = rng.next_f64();
                        x * x + y * y < 1.0
                    })
                    .count() as u64
            },
            |a, b| a + b,
        )
        .unwrap_or(0);

    let stats = pool.stats();
    println!(
        "  threads={:<2} chunks={} utilization={:.2}",
        threads.get(),
        stats.chunks,
        stats.utilization()
    );
    4.0 * hits as f64 / SAMPLES as f64
}

fn main() {
    println!("Monte-Carlo pi over {SAMPLES} samples, chunk size {CHUNK}:");
    let serial = estimate_pi(Threads::serial());
    let results: Vec<(usize, f64)> = [2, 4, 8]
        .into_iter()
        .map(|t| (t, estimate_pi(Threads::new(t).expect("non-zero"))))
        .collect();

    println!("\n  pi ~= {serial} (serial)");
    for (t, pi) in results {
        assert_eq!(serial.to_bits(), pi.to_bits(), "determinism contract violated at {t} threads");
        println!("  pi ~= {pi} ({t} threads) -- bit-identical");
    }
    println!("\nEvery thread count produced the same bits, as promised.");
}
