//! Quickstart: build a small mixed social network, learn its directionality
//! function with DeepDirect, and discover the directions of its undirected
//! ties.
//!
//! ```text
//! cargo run --release -p deepdirect --example quickstart
//! ```

use dd_graph::generators::{social_network, SocialNetConfig};
use dd_graph::sampling::hide_directions;
use deepdirect::apps::discovery::{discover_directions, discovery_accuracy};
use deepdirect::{DeepDirect, DeepDirectConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A synthetic social network whose tie directions follow a latent
    //    status hierarchy (standing in for a real crawl).
    let mut rng = StdRng::seed_from_u64(42);
    let gen_cfg = SocialNetConfig { n_nodes: 400, ..Default::default() };
    let generated = social_network(&gen_cfg, &mut rng);
    let network = generated.network;
    println!(
        "network: {} nodes, {} directed ties, {} bidirectional ties",
        network.n_nodes(),
        network.counts().directed,
        network.counts().bidirectional,
    );

    // 2. Hide 60% of the directions — these become the undirected ties
    //    whose orientation we must recover (the TDL problem).
    let hidden = hide_directions(&network, 0.4, &mut rng);
    println!(
        "hidden {} tie directions; {} remain directed (labeled data)",
        hidden.truth.len(),
        hidden.network.counts().directed,
    );

    // 3. Fit DeepDirect: E-Step learns edge embeddings from topology,
    //    labels and directionality patterns; D-Step fits the directionality
    //    function d : E -> [0, 1].
    let cfg = DeepDirectConfig {
        dim: 64,
        max_iterations: Some(2_000_000),
        seed: 42,
        ..Default::default()
    };
    let model = DeepDirect::new(cfg).fit(&hidden.network);
    println!(
        "trained: {} tie embeddings, {} E-Step iterations",
        model.n_ties(),
        model.estep_iterations()
    );

    // 4. Discover directions of the undirected ties (Eq. 28) and score
    //    against the ground truth.
    let predictions = discover_directions(&hidden.network, |u, v| model.score(u, v).unwrap_or(0.5));
    let accuracy = discovery_accuracy(&predictions, &hidden.truth);
    println!("direction discovery accuracy: {accuracy:.3}");

    // 5. Inspect a few predictions with their confidence margins.
    let mut sorted = predictions.clone();
    sorted.sort_by(|a, b| b.margin().partial_cmp(&a.margin()).unwrap());
    println!("\nmost confident predictions:");
    for p in sorted.iter().take(5) {
        println!("  {} -> {}  (d = {:.3} vs {:.3})", p.src, p.dst, p.forward, p.backward);
    }

    // 6. Persist the model; reload and verify scores survive.
    let path = std::env::temp_dir().join("deepdirect_quickstart.json");
    model.save_to_path(&path).expect("save model");
    let loaded = deepdirect::DirectionalityModel::load_from_path(&path).expect("load model");
    let p = sorted[0];
    assert_eq!(model.score(p.src, p.dst), loaded.score(p.src, p.dst));
    println!("\nmodel round-tripped through {}", path.display());
}
