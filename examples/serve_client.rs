//! Minimal `dd serve` client session, using the std-only client from
//! `dd_serve::client`. Run a server first:
//!
//! ```text
//! dd generate twitter --scale 300 --out graph.edges
//! dd train graph.edges --out model.json
//! dd serve model.json --port 8080
//! ```
//!
//! then:
//!
//! ```text
//! cargo run -p dd-serve --example serve_client -- 127.0.0.1:8080 3 17
//! ```

use dd_serve::client;

fn main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, src, dst) = match args.as_slice() {
        [addr, src, dst] => (addr.as_str(), src.as_str(), dst.as_str()),
        _ => return Err("usage: serve_client <host:port> <src> <dst>".to_string()),
    };

    let health = client::get(addr, "/healthz")?;
    println!("healthz  [{}] {}", health.status, health.body.trim());

    let resp = client::get(addr, &format!("/score?src={src}&dst={dst}"))?;
    println!("score    [{}] {}", resp.status, resp.body.trim());

    let batch = format!("{{\"src\":{src},\"dst\":{dst}}}\n{{\"src\":{dst},\"dst\":{src}}}\n");
    let resp = client::post(addr, "/batch", &batch)?;
    println!("batch    [{}]", resp.status);
    for line in resp.body.lines().filter(|l| !l.trim().is_empty()) {
        println!("         {line}");
    }

    let metrics = client::get(addr, "/metrics")?;
    println!("metrics  [{}] {} lines", metrics.status, metrics.body.lines().count());
    for line in metrics.body.lines().filter(|l| l.starts_with("serve.requests.")) {
        println!("         {line}");
    }
    Ok(())
}
