//! Direction discovery on a realistic dataset analog (Sec. 5.1 / 6.2):
//! compares DeepDirect against the handcrafted-feature and ReDirect
//! baselines at several label fractions on the Tencent analog.
//!
//! ```text
//! cargo run --release -p deepdirect --example direction_discovery
//! ```

use dd_baselines::{DirectionalityLearner, HfLearner, RedirectTLearner};
use dd_datasets::tencent;
use dd_graph::sampling::hide_directions;
use deepdirect::apps::discovery::{discover_directions, discovery_accuracy};
use deepdirect::{DeepDirect, DeepDirectConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let spec = tencent();
    let generated = spec.generate(120, 7); // ~625 nodes
    let network = generated.network;
    println!(
        "Tencent analog: {} nodes, {} ties ({} bidirectional)",
        network.n_nodes(),
        network.counts().total(),
        network.counts().bidirectional,
    );
    println!("\n{:<22} {:>8} {:>8} {:>8}", "method \\ % directed", "10%", "30%", "60%");

    let percents = [0.1, 0.3, 0.6];
    let mut table: Vec<(String, Vec<f64>)> = Vec::new();

    // DeepDirect.
    let mut dd_row = Vec::new();
    for &pct in &percents {
        let mut rng = StdRng::seed_from_u64(7);
        let hidden = hide_directions(&network, pct, &mut rng);
        let cfg = DeepDirectConfig {
            dim: 64,
            max_iterations: Some(3_000_000),
            seed: 7,
            ..Default::default()
        };
        let model = DeepDirect::new(cfg).fit(&hidden.network);
        let preds = discover_directions(&hidden.network, |u, v| model.score(u, v).unwrap_or(0.5));
        dd_row.push(discovery_accuracy(&preds, &hidden.truth));
    }
    table.push(("DeepDirect".into(), dd_row));

    // Baselines through the shared learner interface.
    let learners: Vec<Box<dyn DirectionalityLearner>> =
        vec![Box::new(HfLearner::default()), Box::new(RedirectTLearner::default())];
    for learner in &learners {
        let mut row = Vec::new();
        for &pct in &percents {
            let mut rng = StdRng::seed_from_u64(7);
            let hidden = hide_directions(&network, pct, &mut rng);
            let scorer = learner.fit(&hidden.network);
            let preds = discover_directions(&hidden.network, |u, v| scorer.score(u, v));
            row.push(discovery_accuracy(&preds, &hidden.truth));
        }
        table.push((learner.name().into(), row));
    }

    for (name, row) in &table {
        print!("{name:<22}");
        for acc in row {
            print!(" {acc:>8.3}");
        }
        println!();
    }
    println!("\n(The paper's Fig. 3 sweeps five datasets and five methods; run");
    println!(
        " `cargo run --release -p dd-bench --bin fig3_direction_discovery` for the full grid.)"
    );
}
