//! Embedding visualization (Fig. 7): project DeepDirect tie embeddings of
//! hidden-direction ties to 2-D with t-SNE, color by true direction, and
//! measure separability with the silhouette score. Writes a CSV you can
//! plot with any tool.
//!
//! ```text
//! cargo run --release -p deepdirect --example visualize_embeddings
//! ```

use dd_eval::silhouette::silhouette_2d;
use dd_eval::tsne::{tsne_2d, TsneConfig};
use dd_graph::generators::{social_network, SocialNetConfig};
use dd_graph::hash::FxHashSet;
use dd_graph::sampling::hide_directions;
use deepdirect::{DeepDirect, DeepDirectConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A compact, dense network keeps the exact-t-SNE point count small.
    let mut rng = StdRng::seed_from_u64(5);
    let gen_cfg = SocialNetConfig { n_nodes: 250, m_per_node: 8, ..Default::default() };
    let network = social_network(&gen_cfg, &mut rng).network;

    // Hide 90% of directions, as in Fig. 7.
    let hidden = hide_directions(&network, 0.1, &mut rng);
    let truth: FxHashSet<(u32, u32)> = hidden.truth.iter().map(|&(u, v)| (u.0, v.0)).collect();

    let cfg = DeepDirectConfig {
        dim: 64,
        max_iterations: Some(3_000_000),
        seed: 5,
        ..Default::default()
    };
    let model = DeepDirect::new(cfg).fit(&hidden.network);

    // One point per hidden tie (its canonical src < dst instance); the
    // color is whether the canonical source is the true source.
    let mut vectors = Vec::new();
    let mut labels = Vec::new();
    for (_, u, v) in hidden.network.undirected_pairs() {
        vectors.push(model.embedding(u, v).expect("embedded").to_vec());
        labels.push(truth.contains(&(u.0, v.0)));
    }
    println!("projecting {} tie embeddings with t-SNE…", vectors.len());
    let points = tsne_2d(&vectors, &TsneConfig { seed: 5, ..Default::default() });
    let sil = silhouette_2d(&points, &labels);
    println!("silhouette separability by true direction: {sil:.4}");

    let path = std::env::temp_dir().join("deepdirect_tsne.csv");
    let mut csv = String::from("x,y,true_source_is_canonical\n");
    for ((x, y), l) in points.iter().zip(&labels) {
        csv.push_str(&format!("{x:.4},{y:.4},{}\n", *l as u8));
    }
    std::fs::write(&path, csv).expect("write csv");
    println!("wrote {} (plot x,y colored by the third column)", path.display());
    println!("(Fig. 7 also contrasts LINE; run `cargo run --release -p dd-bench --bin fig7_visualization`.)");
}
