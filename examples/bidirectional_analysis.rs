//! Bidirectionality analysis (the paper's future-work extension): score how
//! likely each undirected tie is to be *actually bidirectional*, and
//! quantify which direction dominates existing bidirectional ties.
//!
//! ```text
//! cargo run --release -p deepdirect --example bidirectional_analysis
//! ```

use dd_datasets::livejournal;
use dd_graph::sampling::hide_directions;
use deepdirect::apps::bidir::bidirectionality_scores;
use deepdirect::apps::quantify::DirectionalityAdjacency;
use deepdirect::{DeepDirect, DeepDirectConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let network = livejournal().generate(250, 3).network; // ~320 dense nodes
    let mut rng = StdRng::seed_from_u64(3);
    let hidden = hide_directions(&network, 0.5, &mut rng);
    let g = &hidden.network;
    println!(
        "LiveJournal analog: {} nodes; {} directed / {} bidirectional / {} undirected ties",
        g.n_nodes(),
        g.counts().directed,
        g.counts().bidirectional,
        g.counts().undirected,
    );

    let cfg = DeepDirectConfig {
        dim: 64,
        max_iterations: Some(3_000_000),
        seed: 3,
        ..Default::default()
    };
    let model = DeepDirect::new(cfg).fit(g);
    let d = |u, v| model.score(u, v).unwrap_or(0.5);

    // --- Which undirected ties look bidirectional? ---
    let mut scores = bidirectionality_scores(g, d);
    scores.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
    println!("\nundirected ties most likely to be bidirectional:");
    for s in scores.iter().take(5) {
        println!(
            "  {} -- {}   d(u,v)={:.3} d(v,u)={:.3} score={:.3}",
            s.u, s.v, s.d_uv, s.d_vu, s.score
        );
    }
    println!("undirected ties most likely to be one-way:");
    for s in scores.iter().rev().take(5) {
        let (src, dst) = s.dominant();
        println!("  {src} -> {dst}   score={:.3}", s.score);
    }

    // --- Direction quantification on the explicit bidirectional ties ---
    println!("\nmost asymmetric bidirectional relationships (who dominates?):");
    let mut pairs: Vec<(f64, String)> = g
        .bidirectional_pairs()
        .map(|(_, u, v)| {
            let (duv, dvu) = (d(u, v), d(v, u));
            let asym = (duv - dvu).abs();
            let line = if duv >= dvu {
                format!("  {u} -> {v}   d={duv:.3} vs {dvu:.3}")
            } else {
                format!("  {v} -> {u}   d={dvu:.3} vs {duv:.3}")
            };
            (asym, line)
        })
        .collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    for (_, line) in pairs.iter().take(5) {
        println!("{line}");
    }

    // --- The directionality adjacency matrix those values feed ---
    let adj = DirectionalityAdjacency::quantified(g, d);
    let (_, u, v) = g.bidirectional_pairs().next().expect("has bidirectional ties");
    println!(
        "\ndirectionality adjacency cells for one bidirectional tie: A[{u}][{v}] = {:.3}, A[{v}][{u}] = {:.3}",
        adj.get(u, v),
        adj.get(v, u),
    );
}
