//! The contract rules, their scoping, and the per-file checking engine.
//!
//! Every rule is named, and every violation prints as
//! `file:line: rule: message`. Scoping is path-based (workspace-relative
//! paths decide which crates a rule patrols) plus test-awareness: rules
//! marked `skip_tests` ignore `tests/` files, `#[cfg(test)]` modules and
//! `#[test]` functions.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph;
use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};
use crate::locks::{self, AcquiresDirective, LockEdge, OrderDecl};

/// Crates whose outputs must be bit-identical run-to-run (DESIGN.md §7.9):
/// the `determinism` rule patrols these. `runtime` is included because the
/// substrate's chunk structure is the determinism contract itself — its two
/// wall-clock stats reads carry audited pragmas cross-checked against
/// DESIGN.md (`--check-exemptions`). `datasets` generates the deterministic
/// synthetic inputs, so it is result-affecting by construction.
pub const RESULT_AFFECTING: &[&str] =
    &["core", "graph", "linalg", "baselines", "eval", "runtime", "stream", "datasets"];

/// Crates whose top-level public items the `pub-doc` rule requires docs on.
pub const DOC_REQUIRED: &[&str] =
    &["core", "graph", "linalg", "baselines", "eval", "runtime", "stream", "datasets"];

/// All rule names, in reporting order.
pub const RULE_NAMES: &[&str] = &[
    "thread-confinement",
    "unwind-confinement",
    "binary-io",
    "determinism",
    "trace-hygiene",
    "panic-hygiene",
    "float-eq",
    "pub-doc",
    "guard-scope",
    "blocking-while-locked",
    "lock-order",
    "pragma",
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Violation {
    /// The canonical `file:line: rule: message` rendering.
    pub fn render(&self) -> String {
        format!("{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// One parsed `// dd-lint: allow(<rule>) — <reason>` pragma (the audit
/// trail for every suppressed violation).
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the comment's start.
    pub line: u32,
    /// 1-based line of the comment's end (suppression covers `end_line`
    /// and `end_line + 1`).
    pub end_line: u32,
    /// The rule being allowed.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// Whether the pragma suppressed at least one violation this run.
    pub used: bool,
}

/// Everything the engine found in one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations that were *not* suppressed by a pragma.
    pub violations: Vec<Violation>,
    /// Every well-formed pragma, with its `used` flag settled.
    pub pragmas: Vec<Pragma>,
    /// Lock-acquisition edges observed in this file (see [`crate::locks`]).
    pub edges: Vec<crate::locks::LockEdge>,
}

/// Path-derived scoping facts for one file.
#[derive(Debug, Clone, Copy)]
struct Scope<'a> {
    /// `Some("graph")` for `crates/graph/...`.
    crate_name: Option<&'a str>,
    /// True for files that are entirely test code (`tests/` and `benches/`
    /// directories anywhere in the path).
    test_file: bool,
    /// True for non-test library/binary source under `crates/<c>/src/`.
    crate_src: bool,
}

fn scope(path: &str) -> Scope<'_> {
    let mut crate_name = None;
    let mut crate_src = false;
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some((name, tail)) = rest.split_once('/') {
            crate_name = Some(name);
            crate_src = tail.starts_with("src/");
        }
    }
    let test_file =
        path.split('/').any(|part| part == "tests" || part == "benches" || part == "fixtures");
    Scope { crate_name, test_file, crate_src }
}

/// Phase-A output for one file: everything derivable from that file alone.
/// The lock rules need the *global* helper table and edge set, so lock
/// analysis and pragma settlement happen later, in [`finish`].
pub(crate) struct FileAnalysis {
    /// Workspace-relative path.
    pub path: String,
    /// Pre-suppression violations from the single-file rules.
    pub raw: Vec<Violation>,
    /// Well-formed `allow()` pragmas, `used` not yet settled.
    pub pragmas: Vec<Pragma>,
    /// `order(a < b)` declarations.
    pub orders: Vec<OrderDecl>,
    /// `acquires(x)` call-site directives.
    pub acquires: Vec<AcquiresDirective>,
    /// Guard-returning helpers detected in this file (`fn` → lock name).
    pub helpers: Vec<(String, String)>,
    toks: Vec<Tok>,
    test_mask: Vec<bool>,
}

/// The cross-file result of [`finish`].
pub(crate) struct Finished {
    /// Unsuppressed violations, sorted.
    pub violations: Vec<Violation>,
    /// Every pragma, `used` settled, in file order.
    pub pragmas: Vec<Pragma>,
    /// The acquisition-order graph's edges, sorted and global.
    pub edges: Vec<LockEdge>,
}

/// Phase A: runs every single-file rule and collects the facts the
/// cross-file phase needs. `path` must be workspace-relative with `/`
/// separators — it drives rule scoping, so fixture tests pass synthetic
/// paths like `crates/serve/src/fixture.rs` to opt into a crate's rule set.
/// Pure per-file work: safe to run in parallel across files.
pub(crate) fn analyze_file(path: &str, src: &str) -> FileAnalysis {
    let lexed = lex(src);
    let sc = scope(path);
    let test_tok = test_token_mask(&lexed.toks, sc.test_file);
    let mut pragmas = Vec::new();
    let mut orders = Vec::new();
    let mut acquires = Vec::new();
    let mut raw: Vec<Violation> = Vec::new();

    collect_pragmas(path, &lexed.comments, &mut pragmas, &mut orders, &mut acquires, &mut raw);
    thread_confinement(path, sc, &lexed.toks, &mut raw);
    unwind_confinement(path, sc, &lexed.toks, &mut raw);
    binary_io(path, sc, &lexed.toks, &mut raw);
    determinism(path, sc, &lexed.toks, &test_tok, &mut raw);
    trace_hygiene(path, sc, &lexed.toks, &test_tok, &mut raw);
    panic_hygiene(path, sc, &lexed.toks, &test_tok, &mut raw);
    float_eq(path, sc, &lexed.toks, &test_tok, &mut raw);
    pub_doc(path, sc, &lexed, &test_tok, &mut raw);
    let helpers = locks::detect_helpers(&lexed.toks, &test_tok);

    FileAnalysis {
        path: path.to_string(),
        raw,
        pragmas,
        orders,
        acquires,
        helpers,
        toks: lexed.toks,
        test_mask: test_tok,
    }
}

/// Phase B: the cross-file pass. Unions the guard-returning-helper tables,
/// runs lock analysis per file against the global table, assembles the
/// acquisition-order graph, checks cycles and `order()` declarations, and
/// only then settles pragma suppression (so global `lock-order` findings
/// are suppressible at the site they are attributed to, like any other
/// violation). Serial and deterministic.
pub(crate) fn finish(mut analyses: Vec<FileAnalysis>) -> Finished {
    // Global helper table. A helper name detected with *different* lock
    // names in different places is ambiguous; dropping it loses edges but
    // never invents them.
    let mut table: BTreeMap<String, Option<String>> = BTreeMap::new();
    for a in &analyses {
        for (name, lock) in &a.helpers {
            match table.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(Some(lock.clone()));
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    if e.get().as_deref() != Some(lock.as_str()) {
                        e.insert(None);
                    }
                }
            }
        }
    }
    let helper_table: BTreeMap<String, String> =
        table.into_iter().filter_map(|(k, v)| v.map(|l| (k, l))).collect();

    let mut edges: Vec<LockEdge> = Vec::new();
    let mut nodes: BTreeSet<String> = BTreeSet::new();
    for a in &mut analyses {
        let la =
            locks::analyze(&a.path, &a.toks, &a.test_mask, &helper_table, &a.acquires, &mut a.raw);
        nodes.extend(la.nodes);
        // A stale acquires() directive (not under any live guard) is noise
        // in the audit trail, exactly like an unused allow().
        for d in &a.acquires {
            if !la.used_acquires.contains(&d.end_line) {
                a.raw.push(Violation {
                    file: a.path.clone(),
                    line: d.end_line,
                    rule: "pragma",
                    message: format!(
                        "acquires({}) directive covers line {} but no lock guard is live there; \
                         remove it or move it under the guard",
                        d.lock,
                        d.end_line + 1
                    ),
                });
            }
        }
        edges.extend(la.edges);
    }
    edges.sort();
    edges.dedup();

    // Global graph checks land as violations on real files so the normal
    // pragma/baseline machinery applies.
    let mut global: Vec<Violation> = Vec::new();
    for cycle in graph::lock_cycles(&edges) {
        let set: BTreeSet<&str> = cycle.iter().map(|s| s.as_str()).collect();
        let internal: Vec<&LockEdge> = edges
            .iter()
            .filter(|e| set.contains(e.from.as_str()) && set.contains(e.to.as_str()))
            .collect();
        let Some(site) = internal.iter().min_by_key(|e| (&e.file, e.line)) else { continue };
        let sites: Vec<String> = internal
            .iter()
            .map(|e| format!("{}:{} ({}→{})", e.file, e.line, e.from, e.to))
            .collect();
        global.push(Violation {
            file: site.file.clone(),
            line: site.line,
            rule: "lock-order",
            message: format!(
                "potential deadlock: lock acquisition cycle {{{}}}; acquisition sites: {}",
                cycle.join(" ⇄ "),
                sites.join(", ")
            ),
        });
    }
    let all_orders: Vec<&OrderDecl> = analyses.iter().flat_map(|a| &a.orders).collect();
    for d in &all_orders {
        for name in [&d.first, &d.second] {
            if !nodes.contains(name) {
                global.push(Violation {
                    file: d.file.clone(),
                    line: d.line,
                    rule: "pragma",
                    message: format!(
                        "order({} < {}) names lock `{name}` which is never acquired in the \
                         analyzed files; fix the name or drop the declaration",
                        d.first, d.second
                    ),
                });
            }
        }
        for d2 in &all_orders {
            if d2.first == d.second
                && d2.second == d.first
                && (&d2.file, d2.line) > (&d.file, d.line)
            {
                global.push(Violation {
                    file: d2.file.clone(),
                    line: d2.line,
                    rule: "lock-order",
                    message: format!(
                        "order({} < {}) conflicts with order({} < {}) declared at {}:{}",
                        d2.first, d2.second, d.first, d.second, d.file, d.line
                    ),
                });
            }
        }
        if let Some(path) = graph::find_path(&edges, &d.second, &d.first) {
            let e = path[0];
            let chain: Vec<String> = std::iter::once(d.second.clone())
                .chain(path.iter().map(|e| e.to.clone()))
                .collect();
            global.push(Violation {
                file: e.file.clone(),
                line: e.line,
                rule: "lock-order",
                message: format!(
                    "acquiring `{}` while `{}` is held contradicts order({} < {}) declared at \
                     {}:{} (acquisition path: {})",
                    e.to,
                    e.from,
                    d.first,
                    d.second,
                    d.file,
                    d.line,
                    chain.join(" → ")
                ),
            });
        }
    }
    for v in global {
        if let Some(a) = analyses.iter_mut().find(|a| a.path == v.file) {
            a.raw.push(v);
        }
    }

    // Settle pragmas per file: a pragma covers its own last line and the
    // line after it, for its named rule only.
    let mut violations = Vec::new();
    let mut pragmas = Vec::new();
    for a in &mut analyses {
        for v in std::mem::take(&mut a.raw) {
            let mut suppressed = false;
            if v.rule != "pragma" {
                for p in a.pragmas.iter_mut() {
                    if p.rule == v.rule && (v.line == p.end_line || v.line == p.end_line + 1) {
                        p.used = true;
                        suppressed = true;
                    }
                }
            }
            if !suppressed {
                violations.push(v);
            }
        }
        // An allow() that allows nothing is itself a violation: stale
        // pragmas must not linger as false audit entries.
        for p in &a.pragmas {
            if !p.used {
                violations.push(Violation {
                    file: a.path.clone(),
                    line: p.line,
                    rule: "pragma",
                    message: format!(
                        "unused pragma: allow({}) suppresses nothing on line {} or {}",
                        p.rule,
                        p.end_line,
                        p.end_line + 1
                    ),
                });
            }
        }
        pragmas.append(&mut a.pragmas);
    }
    violations.sort();
    Finished { violations, pragmas, edges }
}

/// Checks one file through the full pipeline (both phases over a singleton
/// set). Cross-file helper resolution degrades gracefully: only helpers
/// defined in this same file are visible. Fixture tests and one-off checks
/// use this; the workspace entry points batch phase A and share phase B.
pub fn check_file(path: &str, src: &str) -> FileReport {
    let fin = finish(vec![analyze_file(path, src)]);
    FileReport { violations: fin.violations, pragmas: fin.pragmas, edges: fin.edges }
}

/// Marks which tokens sit inside test-only code: whole-file test sources,
/// `#[cfg(test)]`-gated items, and `#[test]` functions.
fn test_token_mask(toks: &[Tok], whole_file: bool) -> Vec<bool> {
    let mut mask = vec![whole_file; toks.len()];
    if whole_file {
        return mask;
    }
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text == "#" && i + 1 < toks.len() && toks[i + 1].text == "[" {
            let close = match matching(toks, i + 1, "[", "]") {
                Some(c) => c,
                None => break,
            };
            let gated =
                toks[i + 2..close].iter().any(|t| t.kind == TokKind::Ident && t.text == "test");
            if gated {
                // The attribute governs the next item; mark from the
                // attribute through the item's end.
                let end = item_end(toks, close + 1);
                for m in mask.iter_mut().take(end.min(toks.len())).skip(i) {
                    *m = true;
                }
                i = end;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index just past the item starting at `start`: skips leading attributes,
/// then ends at the first top-level `;` or the matching `}` of the first
/// top-level `{`.
fn item_end(toks: &[Tok], start: usize) -> usize {
    let mut i = start;
    // Skip any further attributes stacked on the same item.
    while i + 1 < toks.len() && toks[i].text == "#" && toks[i + 1].text == "[" {
        match matching(toks, i + 1, "[", "]") {
            Some(c) => i = c + 1,
            None => return toks.len(),
        }
    }
    let mut depth_paren = 0i32;
    let mut depth_bracket = 0i32;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "(" => depth_paren += 1,
            ")" => depth_paren -= 1,
            "[" => depth_bracket += 1,
            "]" => depth_bracket -= 1,
            ";" if depth_paren == 0 && depth_bracket == 0 => return i + 1,
            "{" if depth_paren == 0 && depth_bracket == 0 => {
                return match matching(toks, i, "{", "}") {
                    Some(c) => c + 1,
                    None => toks.len(),
                };
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Index of the token matching the opener at `open` (`toks[open]` must be
/// `open_text`).
fn matching(toks: &[Tok], open: usize, open_text: &str, close_text: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct && t.text == open_text {
            depth += 1;
        } else if t.kind == TokKind::Punct && t.text == close_text {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

fn is_ident(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Ident && t.text == text
}

fn is_punct(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Punct && t.text == text
}

fn push(out: &mut Vec<Violation>, file: &str, line: u32, rule: &'static str, message: String) {
    out.push(Violation { file: file.to_string(), line, rule, message });
}

/// `thread-confinement`: `thread::spawn` / `thread::scope` only inside
/// `crates/runtime` (everything else goes through `Pool`, `WorkerPool`,
/// `spawn_named`, or `dd_runtime::scope`). Applies to test code too —
/// threading discipline is global.
fn thread_confinement(path: &str, _sc: Scope, toks: &[Tok], out: &mut Vec<Violation>) {
    if path.starts_with("crates/runtime/") {
        return;
    }
    for w in toks.windows(3) {
        if is_ident(&w[0], "thread")
            && is_punct(&w[1], "::")
            && (is_ident(&w[2], "spawn") || is_ident(&w[2], "scope"))
        {
            push(
                out,
                path,
                w[2].line,
                "thread-confinement",
                format!(
                    "thread::{} outside crates/runtime; use dd_runtime::{{Pool, WorkerPool, \
                     spawn_named, scope}} (DESIGN.md §7.9)",
                    w[2].text
                ),
            );
        }
    }
}

/// `unwind-confinement`: `catch_unwind` only at the two scheduling
/// boundaries, `crates/serve` and `crates/runtime` (DESIGN.md §7.10).
fn unwind_confinement(path: &str, _sc: Scope, toks: &[Tok], out: &mut Vec<Violation>) {
    if path.starts_with("crates/serve/") || path.starts_with("crates/runtime/") {
        return;
    }
    for t in toks {
        if is_ident(t, "catch_unwind") {
            push(
                out,
                path,
                t.line,
                "unwind-confinement",
                "catch_unwind outside crates/serve and crates/runtime; library code stays \
                 panic-transparent (DESIGN.md §7.10)"
                    .to_string(),
            );
        }
    }
}

/// `binary-io`: the slice-reinterpretation primitives (`from_raw_parts`,
/// `from_raw_parts_mut`, `transmute`) are confined to the one audited
/// byte-cast module, `crates/linalg/src/bytes.rs` (DESIGN.md §7.13). All
/// other code borrows typed slices from `AlignedBuf` through its checked
/// cast helpers; the E-Step's Hogwild raw-pointer writes are a separately
/// audited mechanism that never reinterprets memory, so it does not need
/// these tokens. Applies to test code too — byte-cast discipline is global.
fn binary_io(path: &str, _sc: Scope, toks: &[Tok], out: &mut Vec<Violation>) {
    if path == "crates/linalg/src/bytes.rs" {
        return;
    }
    for t in toks {
        if is_ident(t, "from_raw_parts")
            || is_ident(t, "from_raw_parts_mut")
            || is_ident(t, "transmute")
        {
            push(
                out,
                path,
                t.line,
                "binary-io",
                format!(
                    "{} outside crates/linalg/src/bytes.rs; slice reinterpretation is confined \
                     to the one audited byte-cast module (DESIGN.md §7.13)",
                    t.text
                ),
            );
        }
    }
}

/// `determinism`: no wall-clock reads (`Instant::now`, `SystemTime`) and no
/// randomized-iteration-order collections (bare `HashMap`/`HashSet`) in
/// result-affecting crates. `FxHashMap`/`FxHashSet` (fixed hasher) and
/// `BTreeMap`/`Vec` are the sanctioned alternatives.
fn determinism(path: &str, sc: Scope, toks: &[Tok], test: &[bool], out: &mut Vec<Violation>) {
    if !sc.crate_name.is_some_and(|c| RESULT_AFFECTING.contains(&c)) {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if test[i] {
            continue;
        }
        if is_ident(t, "Instant")
            && toks.get(i + 1).is_some_and(|n| is_punct(n, "::"))
            && toks.get(i + 2).is_some_and(|n| is_ident(n, "now"))
        {
            push(
                out,
                path,
                t.line,
                "determinism",
                "Instant::now in a result-affecting crate; results must not depend on wall \
                 clocks (DESIGN.md §7.9)"
                    .to_string(),
            );
        }
        if is_ident(t, "SystemTime") {
            push(
                out,
                path,
                t.line,
                "determinism",
                "SystemTime in a result-affecting crate; results must not depend on wall clocks \
                 (DESIGN.md §7.9)"
                    .to_string(),
            );
        }
        if is_ident(t, "HashMap") || is_ident(t, "HashSet") {
            push(
                out,
                path,
                t.line,
                "determinism",
                format!(
                    "bare {} in a result-affecting crate; iteration order is not deterministic — \
                     use dd_graph::hash::Fx{} or a sorted collection (DESIGN.md §7.9)",
                    t.text, t.text
                ),
            );
        }
    }
}

/// `trace-hygiene`: raw `Instant::now` reads belong to `crates/telemetry` —
/// spans, the trace epoch, and the observer own the clocks, so timing that
/// matters shows up in the trace instead of vanishing into a local. Non-test
/// code elsewhere must time work through a telemetry span or carry an
/// audited pragma saying why the read is not a lost span (DESIGN.md §7.12).
/// Result-affecting crates are excluded: the stricter `determinism` rule
/// already bans wall clocks there outright, and one audited pragma per
/// exemption is enough.
fn trace_hygiene(path: &str, sc: Scope, toks: &[Tok], test: &[bool], out: &mut Vec<Violation>) {
    if path.starts_with("crates/telemetry/")
        || sc.crate_name.is_some_and(|c| RESULT_AFFECTING.contains(&c))
    {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if test[i] {
            continue;
        }
        if is_ident(t, "Instant")
            && toks.get(i + 1).is_some_and(|n| is_punct(n, "::"))
            && toks.get(i + 2).is_some_and(|n| is_ident(n, "now"))
        {
            push(
                out,
                path,
                t.line,
                "trace-hygiene",
                "raw Instant::now outside crates/telemetry; time the work with a telemetry span \
                 so it appears in the trace, or audit the clock read with an allow pragma \
                 (DESIGN.md §7.12)"
                    .to_string(),
            );
        }
    }
}

/// `panic-hygiene`: no `.unwrap()` / `.expect(` in non-test `crates/serve`
/// and `crates/runtime` source — the serving request path and the runtime
/// workers must degrade, not die. `unwrap_or*` variants are fine.
fn panic_hygiene(path: &str, sc: Scope, toks: &[Tok], test: &[bool], out: &mut Vec<Violation>) {
    let patrolled =
        path.starts_with("crates/serve/src/") || path.starts_with("crates/runtime/src/");
    if !patrolled || !sc.crate_src {
        return;
    }
    for i in 0..toks.len().saturating_sub(2) {
        if test[i] {
            continue;
        }
        let (a, b, c) = (&toks[i], &toks[i + 1], &toks[i + 2]);
        if is_punct(a, ".") && (is_ident(b, "unwrap") || is_ident(b, "expect")) && is_punct(c, "(")
        {
            push(
                out,
                path,
                b.line,
                "panic-hygiene",
                format!(
                    ".{}() in non-test serve/runtime code; use a typed error, a match, or a \
                     documented allow pragma",
                    b.text
                ),
            );
        }
    }
}

/// `float-eq`: `==` / `!=` against a float literal outside tests. Exact
/// float comparison is almost always a determinism or correctness smell;
/// use `total_cmp`, `f64::classify`, an epsilon helper, or bit patterns.
fn float_eq(path: &str, _sc: Scope, toks: &[Tok], test: &[bool], out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if test[i] || !(is_punct(t, "==") || is_punct(t, "!=")) {
            continue;
        }
        let lhs_float = i > 0 && toks[i - 1].kind == TokKind::Float;
        let rhs_float = match toks.get(i + 1) {
            Some(n) if n.kind == TokKind::Float => true,
            // `== -1.0`: unary minus then the literal.
            Some(n) if is_punct(n, "-") => {
                toks.get(i + 2).is_some_and(|m| m.kind == TokKind::Float)
            }
            _ => false,
        };
        if lhs_float || rhs_float {
            push(
                out,
                path,
                t.line,
                "float-eq",
                format!(
                    "`{}` against a float literal; use total_cmp, classify(), or an epsilon \
                     helper (dd_linalg::is_zero)",
                    t.text
                ),
            );
        }
    }
}

/// `pub-doc`: top-level `pub` items in the core crates need an outer doc
/// comment (`///` or `/** */`) or a `#[doc = …]` attribute. Depth-0 only:
/// impl blocks and struct fields are rustdoc's job (`missing_docs` is
/// already `warn` in every library crate); this rule keeps the file-level
/// API surface honest even in crates that forget the attribute.
fn pub_doc(path: &str, sc: Scope, lexed: &Lexed, test: &[bool], out: &mut Vec<Violation>) {
    if !sc.crate_src || !sc.crate_name.is_some_and(|c| DOC_REQUIRED.contains(&c)) {
        return;
    }
    // `mod` is deliberately absent: file modules (`pub mod x;`) carry
    // their documentation as `//!` inner docs in the module file, which a
    // per-file pass cannot see — rustdoc's `missing_docs` covers those.
    const ITEM_KINDS: &[&str] =
        &["fn", "struct", "enum", "trait", "type", "const", "static", "union"];
    let toks = &lexed.toks;
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "{" if t.kind == TokKind::Punct => depth += 1,
            "}" if t.kind == TokKind::Punct => depth -= 1,
            _ => {}
        }
        if depth != 0 || test[i] || !is_ident(t, "pub") {
            continue;
        }
        // `pub(crate)` / `pub(super)` are not public API.
        if toks.get(i + 1).is_some_and(|n| is_punct(n, "(")) {
            continue;
        }
        // The item keyword may sit behind `unsafe`, `async`, `extern "C"`.
        let mut j = i + 1;
        while j < toks.len()
            && (is_ident(&toks[j], "unsafe")
                || is_ident(&toks[j], "async")
                || is_ident(&toks[j], "extern")
                || toks[j].kind == TokKind::Str)
        {
            j += 1;
        }
        let Some(kind_tok) = toks.get(j) else { continue };
        if !ITEM_KINDS.contains(&kind_tok.text.as_str()) {
            continue; // `pub use` re-exports and anything exotic: skip.
        }
        let name = toks.get(j + 1).map(|n| n.text.as_str()).unwrap_or("?");
        if has_doc(lexed, toks, i) {
            continue;
        }
        push(
            out,
            path,
            t.line,
            "pub-doc",
            format!("public {} `{name}` has no doc comment", kind_tok.text),
        );
    }
}

/// Whether the `pub` token at index `i` is documented: walk back over the
/// item's attributes (a `#[doc = …]` counts as documentation), then accept
/// any outer doc comment separated from the item only by comments/blank
/// lines.
fn has_doc(lexed: &Lexed, toks: &[Tok], i: usize) -> bool {
    let mut start = i;
    loop {
        // Attributes lex as `#` `[` … `]`; walk back one group at a time.
        if start >= 2 && is_punct(&toks[start - 1], "]") {
            let mut depth = 0i32;
            let mut j = start - 1;
            loop {
                if is_punct(&toks[j], "]") {
                    depth += 1;
                } else if is_punct(&toks[j], "[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return false;
                }
                j -= 1;
            }
            if j >= 1 && is_punct(&toks[j - 1], "#") {
                if toks[j..start].iter().any(|t| is_ident(t, "doc")) {
                    return true;
                }
                start = j - 1;
                continue;
            }
        }
        break;
    }
    let item_line = toks[start].line;
    // The nearest outer doc comment above the item, with no code tokens in
    // between (doc comments attach across blank lines, like rustdoc).
    let Some(best) =
        lexed.comments.iter().filter(|c| c.doc && c.end_line < item_line).map(|c| c.end_line).max()
    else {
        return false;
    };
    !toks.iter().any(|t| t.line > best && t.line < item_line)
}

/// Parses every `dd-lint:` directive out of the comment list: `allow()`
/// suppression pragmas, `order(a < b)` lock-order declarations, and
/// `acquires(x)` call-site hints. Malformed ones (unknown rule, missing
/// reason, bad lock names) become `pragma` violations.
fn collect_pragmas(
    path: &str,
    comments: &[Comment],
    pragmas: &mut Vec<Pragma>,
    orders: &mut Vec<OrderDecl>,
    acquires: &mut Vec<AcquiresDirective>,
    out: &mut Vec<Violation>,
) {
    for (ci, c) in comments.iter().enumerate() {
        // Pragmas live in plain comments only; doc comments (either
        // direction) may *describe* the syntax without being parsed.
        if c.any_doc {
            continue;
        }
        let Some(at) = c.text.find("dd-lint:") else { continue };
        let rest = c.text[at + "dd-lint:".len()..].trim_start();
        if let Some(args) = rest.strip_prefix("order(") {
            collect_order(path, c, args, orders, out);
            continue;
        }
        if let Some(args) = rest.strip_prefix("acquires(") {
            collect_acquires(path, c, args, &comments[ci + 1..], acquires, out);
            continue;
        }
        let Some(args) = rest.strip_prefix("allow(") else {
            push(
                out,
                path,
                c.line,
                "pragma",
                format!(
                    "malformed dd-lint pragma (expected `dd-lint: allow(<rule>) — <reason>`, \
                     `dd-lint: order(<lock> < <lock>) — <reason>`, or `dd-lint: acquires(<lock>) \
                     — <reason>`): {rest}"
                ),
            );
            continue;
        };
        let Some((rule, tail)) = args.split_once(')') else {
            push(out, path, c.line, "pragma", "unterminated allow(<rule>)".to_string());
            continue;
        };
        let rule = rule.trim();
        if !RULE_NAMES.contains(&rule) || rule == "pragma" {
            push(out, path, c.line, "pragma", format!("allow() names unknown rule '{rule}'"));
            continue;
        }
        let reason = tail.trim_start_matches([' ', '\t', '—', '–', '-', ':']).trim();
        if reason.is_empty() {
            push(
                out,
                path,
                c.line,
                "pragma",
                format!("allow({rule}) without a reason; every suppression is audited"),
            );
            continue;
        }
        // A reason often wraps onto following `//` lines, and a pragma for
        // an item sits above the item's `///` docs; treat the contiguous
        // run of line comments as one pragma comment so the suppression
        // still lands on the line of code below it. Plain continuation
        // lines also extend the recorded reason (the audit trail).
        let mut end_line = c.end_line;
        let mut reason = reason.to_string();
        let mut in_plain_run = true;
        for next in &comments[ci + 1..] {
            if next.line != next.end_line || next.line != end_line + 1 {
                break;
            }
            end_line = next.line;
            in_plain_run &= !next.any_doc && !next.text.contains("dd-lint:");
            if in_plain_run {
                reason.push(' ');
                reason.push_str(next.text.trim());
            }
        }
        pragmas.push(Pragma {
            file: path.to_string(),
            line: c.line,
            end_line,
            rule: rule.to_string(),
            reason,
            used: false,
        });
    }
}

/// Parses `order(a < b) — reason` into an [`OrderDecl`].
fn collect_order(
    path: &str,
    c: &Comment,
    args: &str,
    orders: &mut Vec<OrderDecl>,
    out: &mut Vec<Violation>,
) {
    let Some((body, tail)) = args.split_once(')') else {
        push(out, path, c.line, "pragma", "unterminated order(<lock> < <lock>)".to_string());
        return;
    };
    let Some((first, second)) = body.split_once('<') else {
        push(
            out,
            path,
            c.line,
            "pragma",
            format!("malformed order() declaration (expected `order(<lock> < <lock>)`): {body}"),
        );
        return;
    };
    let (first, second) = (first.trim(), second.trim());
    if !is_lock_name(first) || !is_lock_name(second) || first == second {
        push(
            out,
            path,
            c.line,
            "pragma",
            format!("order() needs two distinct lock identifiers, got `{first}` and `{second}`"),
        );
        return;
    }
    let reason = tail.trim_start_matches([' ', '\t', '—', '–', '-', ':']).trim();
    if reason.is_empty() {
        push(
            out,
            path,
            c.line,
            "pragma",
            format!("order({first} < {second}) without a reason; every declaration is audited"),
        );
        return;
    }
    orders.push(OrderDecl {
        first: first.to_string(),
        second: second.to_string(),
        file: path.to_string(),
        line: c.line,
        reason: reason.to_string(),
    });
}

/// Parses `acquires(x) — reason` into an [`AcquiresDirective`]. Like
/// `allow()` pragmas, a directive whose reason wraps onto following `//`
/// lines covers the code line after the whole comment run.
fn collect_acquires(
    path: &str,
    c: &Comment,
    args: &str,
    following: &[Comment],
    acquires: &mut Vec<AcquiresDirective>,
    out: &mut Vec<Violation>,
) {
    let Some((lock, tail)) = args.split_once(')') else {
        push(out, path, c.line, "pragma", "unterminated acquires(<lock>)".to_string());
        return;
    };
    let lock = lock.trim();
    if !is_lock_name(lock) {
        push(
            out,
            path,
            c.line,
            "pragma",
            format!("acquires() needs a lock identifier, got `{lock}`"),
        );
        return;
    }
    let reason = tail.trim_start_matches([' ', '\t', '—', '–', '-', ':']).trim();
    if reason.is_empty() {
        push(
            out,
            path,
            c.line,
            "pragma",
            format!("acquires({lock}) without a reason; every directive is audited"),
        );
        return;
    }
    let mut end_line = c.end_line;
    for next in following {
        if next.line != next.end_line || next.line != end_line + 1 {
            break;
        }
        end_line = next.line;
    }
    acquires.push(AcquiresDirective { end_line, lock: lock.to_string() });
}

/// Lock names are plain Rust identifiers (they name receiver fields or
/// variables).
fn is_lock_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Aggregates violations to `(file, rule) → count`, the unit the baseline
/// ratchet compares.
pub fn tally(violations: &[Violation]) -> BTreeMap<(String, String), usize> {
    let mut counts = BTreeMap::new();
    for v in violations {
        *counts.entry((v.file.clone(), v.rule.to_string())).or_insert(0) += 1;
    }
    counts
}
