//! `dd-lint` — the workspace contract analyzer CLI.
//!
//! ```text
//! dd-lint --workspace [--root DIR]         lint the whole workspace
//! dd-lint PATH...                          lint explicit files/dirs
//!   --json                                 JSONL output (one object per finding)
//!   --baseline FILE                        ratchet file (default: <root>/lint-baseline.txt)
//!   --no-baseline                          report every violation, ignore the ratchet
//!   --write-baseline                       regenerate the ratchet from current violations
//!   --check-exemptions FILE                require DESIGN.md notes for runtime determinism pragmas
//!   --list-pragmas                         print the suppression audit trail
//!   --threads N                            parallel per-file analysis (default: DD_THREADS, then 1)
//!   --lock-graph FILE                      write the lock-acquisition graph as Graphviz DOT
//! ```
//!
//! Exit codes: `0` clean, `1` contract violations / stale baseline /
//! missing exemptions, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use dd_lint::{
    baseline, check_exemptions, check_paths_with, check_workspace_with, json_escape,
    render_lock_graph, Report,
};
use dd_runtime::Threads;

struct Options {
    workspace: bool,
    root: PathBuf,
    paths: Vec<PathBuf>,
    json: bool,
    baseline_path: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: bool,
    check_exemptions: Option<PathBuf>,
    list_pragmas: bool,
    threads: Threads,
    lock_graph: Option<PathBuf>,
}

fn usage() -> String {
    "usage: dd-lint (--workspace | PATH...) [--root DIR] [--json] [--baseline FILE] \
     [--no-baseline] [--write-baseline] [--check-exemptions FILE] [--list-pragmas] \
     [--threads N] [--lock-graph FILE]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        root: PathBuf::from("."),
        paths: Vec::new(),
        json: false,
        baseline_path: None,
        no_baseline: false,
        write_baseline: false,
        check_exemptions: None,
        list_pragmas: false,
        threads: Threads::serial(),
        lock_graph: None,
    };
    let mut threads_flag: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => opts.workspace = true,
            "--json" => opts.json = true,
            "--no-baseline" => opts.no_baseline = true,
            "--write-baseline" => opts.write_baseline = true,
            "--list-pragmas" => opts.list_pragmas = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a directory")?;
                opts.root = PathBuf::from(v);
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a file path")?;
                opts.baseline_path = Some(PathBuf::from(v));
            }
            "--check-exemptions" => {
                let v = it.next().ok_or("--check-exemptions needs a file path")?;
                opts.check_exemptions = Some(PathBuf::from(v));
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a count")?;
                threads_flag =
                    Some(v.parse::<usize>().map_err(|_| format!("--threads: bad count {v:?}"))?);
            }
            "--lock-graph" => {
                let v = it.next().ok_or("--lock-graph needs a file path")?;
                opts.lock_graph = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(usage()),
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag}\n{}", usage()))
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if !opts.workspace && opts.paths.is_empty() {
        return Err(usage());
    }
    if opts.workspace && !opts.paths.is_empty() {
        return Err(format!("--workspace and explicit paths are mutually exclusive\n{}", usage()));
    }
    opts.threads = Threads::resolve(threads_flag)?;
    Ok(opts)
}

/// Expands explicit path arguments: files stay as-is, directories are
/// walked for `*.rs` (without the workspace `fixtures/` filter — an
/// explicitly named path is always checked).
fn expand_paths(paths: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            let mut stack = vec![p.clone()];
            while let Some(dir) = stack.pop() {
                let entries = std::fs::read_dir(&dir)
                    .map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
                for entry in entries {
                    let entry = entry.map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
                    let path = entry.path();
                    if path.is_dir() {
                        stack.push(path);
                    } else if path.to_string_lossy().ends_with(".rs") {
                        files.push(path);
                    }
                }
            }
        } else if p.is_file() {
            files.push(p.clone());
        } else {
            return Err(format!("no such file or directory: {}", p.display()));
        }
    }
    files.sort();
    Ok(files)
}

/// Prints one finding line. A closed stdout (`dd-lint --json | head`)
/// means the consumer has read all it wants — finish quietly instead of
/// panicking like a bare `println!` would.
fn out(line: std::fmt::Arguments) {
    use std::io::Write;
    let mut stdout = std::io::stdout().lock();
    if stdout.write_fmt(line).and_then(|()| stdout.write_all(b"\n")).is_err() {
        std::process::exit(0);
    }
}

fn emit_violation(v: &dd_lint::Violation, baselined: bool, json: bool) {
    if json {
        out(format_args!(
            "{{\"kind\":\"violation\",\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\",\"baselined\":{}}}",
            json_escape(&v.file),
            v.line,
            json_escape(v.rule),
            json_escape(&v.message),
            baselined
        ));
    } else {
        let suffix = if baselined { " [baselined]" } else { "" };
        out(format_args!("{}{suffix}", v.render()));
    }
}

fn emit_pragma(p: &dd_lint::Pragma, json: bool) {
    if json {
        out(format_args!(
            "{{\"kind\":\"pragma\",\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"reason\":\"{}\"}}",
            json_escape(&p.file),
            p.line,
            json_escape(&p.rule),
            json_escape(&p.reason),
        ));
    } else {
        out(format_args!("{}:{}: allow({}): {}", p.file, p.line, p.rule, p.reason));
    }
}

fn run(opts: &Options) -> Result<bool, String> {
    // dd-lint: allow(trace-hygiene) — lint wall time is reported in the
    // run's own --json summary line, not a telemetry trace; the lint binary
    // has no telemetry dependency by design
    let start = Instant::now();
    let report: Report = if opts.workspace {
        check_workspace_with(&opts.root, opts.threads)?
    } else {
        let files = expand_paths(&opts.paths)?;
        check_paths_with(&opts.root, &files, opts.threads)?
    };
    let wall_seconds = start.elapsed().as_secs_f64();

    if let Some(graph_path) = &opts.lock_graph {
        let dot = render_lock_graph(&report.edges);
        if let Some(parent) = graph_path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("creating {}: {e}", parent.display()))?;
            }
        }
        std::fs::write(graph_path, &dot)
            .map_err(|e| format!("writing {}: {e}", graph_path.display()))?;
        eprintln!("dd-lint: wrote {} ({} edges)", graph_path.display(), report.edges.len());
    }

    let baseline_path =
        opts.baseline_path.clone().unwrap_or_else(|| opts.root.join("lint-baseline.txt"));

    if opts.write_baseline {
        let text = baseline::render(&report.violations);
        std::fs::write(&baseline_path, &text)
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        eprintln!(
            "dd-lint: wrote {} ({} violations across {} files)",
            baseline_path.display(),
            report.violations.len(),
            report.files
        );
        return Ok(true);
    }

    let base =
        if opts.no_baseline { baseline::Baseline::new() } else { baseline::load(&baseline_path)? };

    let mut failed = false;
    let drift = baseline::compare(&report.violations, &base);
    if opts.no_baseline {
        for v in &report.violations {
            emit_violation(v, false, opts.json);
        }
        failed = !report.violations.is_empty();
    } else {
        for d in &drift {
            match d {
                baseline::Drift::New(offenders) => {
                    for v in offenders {
                        emit_violation(v, false, opts.json);
                    }
                    failed = true;
                }
                baseline::Drift::Stale { file, rule, baselined, found } => {
                    eprintln!(
                        "dd-lint: stale baseline: {file} / {rule}: baselined {baselined}, found \
                         {found} — regenerate with --write-baseline so the ratchet tightens"
                    );
                    failed = true;
                }
            }
        }
        // Baselined (legacy) violations are visible in --json output so CI
        // artifacts carry the full picture, but they do not fail the run.
        if opts.json {
            let new_set: std::collections::BTreeSet<_> = drift
                .iter()
                .filter_map(|d| match d {
                    baseline::Drift::New(offs) => Some(offs.iter().collect::<Vec<_>>()),
                    _ => None,
                })
                .flatten()
                .map(|v| (v.file.clone(), v.line, v.rule))
                .collect();
            for v in &report.violations {
                if !new_set.contains(&(v.file.clone(), v.line, v.rule)) {
                    emit_violation(v, true, opts.json);
                }
            }
        }
    }

    // JSON mode always carries the suppression audit trail, so the CI
    // artifact is the complete picture even on a clean tree.
    if opts.list_pragmas || opts.json {
        for p in &report.pragmas {
            emit_pragma(p, opts.json);
        }
    }
    if opts.json {
        // The lock-acquisition graph rides along in the artifact too:
        // cycles found at review time are cheaper than deadlocks found in
        // production.
        for e in &report.edges {
            out(format_args!(
                "{{\"kind\":\"lock-edge\",\"from\":\"{}\",\"to\":\"{}\",\"file\":\"{}\",\"line\":{}}}",
                json_escape(&e.from),
                json_escape(&e.to),
                json_escape(&e.file),
                e.line
            ));
        }
        out(format_args!(
            "{{\"kind\":\"summary\",\"files\":{},\"violations\":{},\"pragmas\":{},\"lock_edges\":{},\"threads\":{},\"wall_seconds\":{wall_seconds:.3}}}",
            report.files,
            report.violations.len(),
            report.pragmas.len(),
            report.edges.len(),
            opts.threads.get()
        ));
    }

    if let Some(doc_path) = &opts.check_exemptions {
        let doc = std::fs::read_to_string(opts.root.join(doc_path))
            .or_else(|_| std::fs::read_to_string(doc_path))
            .map_err(|e| format!("reading {}: {e}", doc_path.display()))?;
        for failure in check_exemptions(&report.pragmas, &doc) {
            eprintln!("dd-lint: {failure}");
            failed = true;
        }
    }

    if !failed && !opts.json {
        eprintln!(
            "dd-lint: {} files clean ({} pragmas, {} baselined violations, {} lock edges, \
             {:.3}s on {} thread{})",
            report.files,
            report.pragmas.len(),
            report.violations.len(),
            report.edges.len(),
            wall_seconds,
            opts.threads.get(),
            if opts.threads.is_serial() { "" } else { "s" }
        );
    }
    Ok(!failed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("dd-lint: {e}");
            ExitCode::from(2)
        }
    }
}
