//! The baseline ratchet: legacy debt is checked in, new debt is rejected.
//!
//! `lint-baseline.txt` holds one `path<TAB>rule<TAB>count` line per
//! `(file, rule)` pair with known violations. A lint run fails on any *new*
//! violation (count above baseline) **and** on a stale baseline (count
//! below baseline, or a file/rule pair that no longer violates) — debt may
//! only shrink by regenerating the file with `--write-baseline`, so the
//! checked-in number is always exact and reviews see the ratchet move.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::rules::{tally, Violation};

/// Header written at the top of a generated baseline.
const HEADER: &str = "# dd-lint baseline: one `path<TAB>rule<TAB>count` per line.\n\
                      # Regenerate with: cargo run -p dd-lint -- --workspace --write-baseline\n";

/// Parsed baseline: `(file, rule) → count`.
pub type Baseline = BTreeMap<(String, String), usize>;

/// Parses baseline text. Unparseable lines are errors — a corrupt ratchet
/// must not silently admit new debt.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut map = Baseline::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let entry = (|| {
            let file = parts.next()?;
            let rule = parts.next()?;
            let count: usize = parts.next()?.parse().ok()?;
            Some(((file.to_string(), rule.to_string()), count))
        })();
        match entry {
            Some((key, count)) if count > 0 => {
                map.insert(key, count);
            }
            _ => return Err(format!("lint-baseline.txt:{}: unparseable line: {line}", i + 1)),
        }
    }
    Ok(map)
}

/// Loads the baseline from `path`; a missing file is an empty baseline.
pub fn load(path: &Path) -> Result<Baseline, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::new()),
        Err(e) => Err(format!("reading {}: {e}", path.display())),
    }
}

/// Renders `violations` as baseline text (sorted, tab-separated).
pub fn render(violations: &[Violation]) -> String {
    let mut out = String::from(HEADER);
    for ((file, rule), count) in tally(violations) {
        let _ = writeln!(out, "{file}\t{rule}\t{count}");
    }
    out
}

/// The ratchet verdict for one `(file, rule)` pair.
#[derive(Debug, PartialEq, Eq)]
pub enum Drift {
    /// More violations than the baseline admits — the offending
    /// [`Violation`]s are attached.
    New(Vec<Violation>),
    /// Fewer violations than baselined (including zero): the baseline is
    /// stale and must be regenerated so the ratchet tightens.
    Stale {
        /// The affected file.
        file: String,
        /// The affected rule.
        rule: String,
        /// Count recorded in the baseline.
        baselined: usize,
        /// Count actually found.
        found: usize,
    },
}

/// Compares current violations against the baseline. Empty result = pass.
pub fn compare(violations: &[Violation], baseline: &Baseline) -> Vec<Drift> {
    let counts = tally(violations);
    let mut drift = Vec::new();
    for (key, &found) in &counts {
        let allowed = baseline.get(key).copied().unwrap_or(0);
        if found > allowed {
            let offenders =
                violations.iter().filter(|v| v.file == key.0 && v.rule == key.1).cloned().collect();
            drift.push(Drift::New(offenders));
        } else if found < allowed {
            drift.push(Drift::Stale {
                file: key.0.clone(),
                rule: key.1.clone(),
                baselined: allowed,
                found,
            });
        }
    }
    for (key, &allowed) in baseline {
        if !counts.contains_key(key) {
            drift.push(Drift::Stale {
                file: key.0.clone(),
                rule: key.1.clone(),
                baselined: allowed,
                found: 0,
            });
        }
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(file: &str, rule: &'static str, line: u32) -> Violation {
        Violation { file: file.into(), line, rule, message: "m".into() }
    }

    #[test]
    fn round_trip_render_parse() {
        let vs = vec![v("a.rs", "float-eq", 3), v("a.rs", "float-eq", 9), v("b.rs", "pub-doc", 1)];
        let text = render(&vs);
        let parsed = parse(&text).expect("generated baseline must parse");
        assert_eq!(parsed.get(&("a.rs".into(), "float-eq".into())), Some(&2));
        assert_eq!(parsed.get(&("b.rs".into(), "pub-doc".into())), Some(&1));
        assert!(compare(&vs, &parsed).is_empty(), "freshly written baseline is clean");
    }

    #[test]
    fn new_violation_is_rejected() {
        let baseline = parse("a.rs\tfloat-eq\t1\n").expect("parses");
        let vs = vec![v("a.rs", "float-eq", 3), v("a.rs", "float-eq", 9)];
        let drift = compare(&vs, &baseline);
        assert_eq!(drift.len(), 1);
        assert!(matches!(&drift[0], Drift::New(offs) if offs.len() == 2));
    }

    #[test]
    fn shrunk_debt_without_regeneration_is_rejected() {
        let baseline = parse("a.rs\tfloat-eq\t2\nb.rs\tpub-doc\t1\n").expect("parses");
        let vs = vec![v("a.rs", "float-eq", 3)];
        let drift = compare(&vs, &baseline);
        assert_eq!(drift.len(), 2, "both the shrunk pair and the vanished pair are stale");
        assert!(drift.iter().all(|d| matches!(d, Drift::Stale { .. })));
    }

    #[test]
    fn corrupt_lines_are_errors() {
        assert!(parse("a.rs\tfloat-eq\n").is_err(), "missing count");
        assert!(parse("a.rs\tfloat-eq\tzero\n").is_err(), "non-numeric count");
        assert!(
            parse("a.rs\tfloat-eq\t0\n").is_err(),
            "zero-count entries are stale by definition"
        );
        assert!(parse("# comment\n\n").expect("comments fine").is_empty());
    }

    #[test]
    fn missing_file_is_empty_baseline() {
        let b = load(Path::new("/nonexistent/lint-baseline.txt")).expect("missing file is ok");
        assert!(b.is_empty());
    }
}
