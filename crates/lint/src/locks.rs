//! Lock-discipline analysis: guard lifetimes, blocking calls under locks,
//! and the cross-file acquisition-order graph (DESIGN.md §7.16).
//!
//! The two worst bugs this repo ever shipped were lock-scope/lock-order
//! defects caught only by human review: PR 3's `while let` scrutinee kept a
//! `MutexGuard` alive across every chunk body (serializing the whole pool),
//! and PR 9's engine-lock vs cache-insert ordering could lose `/ingest`
//! invalidations forever. This module makes both machine-checked.
//!
//! It is a *lightweight intra-function semantic pass* over the flat token
//! stream: a brace tree + function table give block structure, guard
//! bindings get live ranges (including the temporary-guard scrutinee
//! extension in `while let` / `if let` / `match`), and three rules run on
//! top:
//!
//! - **`guard-scope`** — a temporary guard in a scrutinee position lives
//!   across the whole body/arms (the PR 3 bug), or a bound guard is held
//!   across a loop that never touches it (gratuitous serialization).
//! - **`blocking-while-locked`** — a known blocking call (`recv`, `send`,
//!   `sleep`, `wait*`, `read_to_end`, `write_all`, `flush`, `accept`,
//!   `connect`, …) runs inside a guard's live range. Condvar waits that
//!   *take the guard as an argument* are exempt: parking releases the lock
//!   by contract.
//! - **`lock-order`** — nested acquisitions feed a cross-file
//!   acquisition-order graph (edge `a → b` = "b acquired while a held");
//!   cycles are potential deadlocks, and declarative
//!   `// dd-lint: order(a < b) — reason` annotations are checked against
//!   graph reachability.
//!
//! Two visibility mechanisms make the repo's idiom analyzable. First,
//! *guard-returning helpers* (`fn read_engine(&self) -> Guard { self
//! .engine.read().unwrap_or_else(…) }`) are auto-detected per file and
//! unioned into a workspace table, so a call to `read_engine()` counts as
//! acquiring `engine`. Second, guard-*consuming* methods (a call that locks
//! and unlocks internally, like `ScoreCache::insert`) are declared at the
//! call site with `// dd-lint: acquires(shard) — reason`, which records an
//! acquisition of `shard` on the next line. Locks are named by the
//! receiver field/variable (`self.engine.read()` → `engine`), which is
//! also what the annotations use; names merge globally, which is the point
//! — the graph is cross-file.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, TokKind};
use crate::rules::Violation;

/// One directed acquisition-order edge: while a guard of `from` was live,
/// code acquired `to`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Lock already held.
    pub from: String,
    /// Lock acquired under it.
    pub to: String,
    /// Workspace-relative file of the inner acquisition.
    pub file: String,
    /// 1-based line of the inner acquisition.
    pub line: u32,
}

/// One `// dd-lint: order(first < second) — reason` declaration: `first`
/// must always be acquired before `second`.
#[derive(Debug, Clone)]
pub struct OrderDecl {
    /// The lock that must be taken first.
    pub first: String,
    /// The lock that may only be taken while `first` is (or after it).
    pub second: String,
    /// Declaring file.
    pub file: String,
    /// 1-based line of the declaration comment.
    pub line: u32,
    /// The mandatory justification.
    pub reason: String,
}

/// One `// dd-lint: acquires(lock) — reason` call-site directive: the next
/// line calls something that acquires and releases `lock` internally.
#[derive(Debug, Clone)]
pub(crate) struct AcquiresDirective {
    /// 1-based line of the directive comment's end; the directive covers
    /// `end_line + 1`.
    pub end_line: u32,
    /// The lock the covered call acquires.
    pub lock: String,
}

/// Methods that block the calling thread: I/O, channels, sleeps, waits.
const BLOCKING: &[&str] = &[
    "read_to_end",
    "read_to_string",
    "read_exact",
    "write_all",
    "flush",
    "send",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "sleep",
    "wait",
    "wait_timeout",
    "wait_timeout_while",
    "wait_while",
    "connect",
    "accept",
    "park",
    "park_timeout",
];

/// Guard-preserving adapters: a chain that only passes through these still
/// carries the guard (so `m.lock().unwrap_or_else(…)` binds a guard, while
/// `m.lock().unwrap().pop()` extracts a value through a hidden temporary).
const ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else", "ok"];

/// Receivers that make `.lock()` *not* a mutex acquisition (`stdin().lock()`
/// returns a buffered handle, not a guard).
const STDIO: &[&str] = &["stdin", "stdout", "stderr"];

/// Keywords that terminate a backward receiver walk — they introduce the
/// expression (`match x.lock()…`) rather than belonging to the chain.
const KEYWORDS: &[&str] = &[
    "as", "await", "break", "else", "for", "if", "in", "let", "loop", "match", "move", "return",
    "while",
];

fn is_ident(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Ident && t.text == text
}

fn is_punct(t: &Tok, text: &str) -> bool {
    t.kind == TokKind::Punct && t.text == text
}

/// Precomputed block structure: brace matching and per-token brace depth.
struct BlockTree {
    /// `close[i]` is the index of the `}` matching an opening `{` at `i`.
    close: BTreeMap<usize, usize>,
    /// Brace depth *at* each token (an opener carries its outer depth, its
    /// contents carry depth + 1).
    depth: Vec<u32>,
}

impl BlockTree {
    fn build(toks: &[Tok]) -> Self {
        let mut close = BTreeMap::new();
        let mut depth = Vec::with_capacity(toks.len());
        let mut stack = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if is_punct(t, "{") {
                depth.push(stack.len() as u32);
                stack.push(i);
            } else if is_punct(t, "}") {
                if let Some(open) = stack.pop() {
                    close.insert(open, i);
                }
                depth.push(stack.len() as u32);
            } else {
                depth.push(stack.len() as u32);
            }
        }
        BlockTree { close, depth }
    }

    /// Index of the `}` closing the innermost block containing token `i`
    /// (or `toks.len() - 1` at the top level).
    fn enclosing_close(&self, i: usize, len: usize) -> usize {
        let mut best = len.saturating_sub(1);
        for (&open, &cl) in &self.close {
            if open < i && i < cl && cl < best {
                best = cl;
            }
        }
        best
    }
}

/// One `fn` item: its name and body token range.
struct FnItem {
    name: String,
    body_open: usize,
    body_close: usize,
}

/// Scans the token stream for `fn name … { … }` items (trait-declaration
/// bodies ending in `;` are skipped — nothing to analyze).
fn fn_table(toks: &[Tok], tree: &BlockTree) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_ident(&toks[i], "fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let name = toks[i + 1].text.clone();
            // Walk the signature: the body is the first `{` outside any
            // paren/bracket group; a `;` first means a bodiless item.
            let mut j = i + 2;
            let mut paren = 0i32;
            let mut found = None;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "(" | "[" if toks[j].kind == TokKind::Punct => paren += 1,
                    ")" | "]" if toks[j].kind == TokKind::Punct => paren -= 1,
                    "{" if paren == 0 && toks[j].kind == TokKind::Punct => {
                        found = Some(j);
                        break;
                    }
                    ";" if paren == 0 && toks[j].kind == TokKind::Punct => break,
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = found {
                let close = tree.close.get(&open).copied().unwrap_or(toks.len() - 1);
                fns.push(FnItem { name, body_open: open, body_close: close });
                // Nested fns are rare; scanning on from the signature keeps
                // them visible.
                i = open + 1;
                continue;
            }
        }
        i += 1;
    }
    fns
}

/// How an acquisition expression is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteKind {
    /// `let g = m.lock()…;` (adapters only) — a named guard with a live
    /// range to the end of its block.
    Bound,
    /// The chain extracts a value (`m.lock().unwrap().pop()`): the guard is
    /// an expression temporary confined to its statement.
    Temp,
    /// Scrutinee of `while let` / `if let` / `match` with a value-extracting
    /// chain: the hidden temporary lives across the whole body — the PR 3
    /// bug shape.
    ScrutineeTemp,
    /// Scrutinee whose pattern binds the guard itself (`if let Ok(g) =
    /// m.lock()`): deliberate, guard live across the body.
    ScrutineeBound,
    /// Tail/return position: the guard escapes to the caller (the
    /// guard-returning-helper shape). Not analyzed at this site.
    Escaping,
}

/// One detected acquisition.
struct Site {
    /// Token index of the receiver chain's start (for range anchoring).
    start: usize,
    /// Token index just past the adapter/extraction chain.
    chain_end: usize,
    /// 1-based line of the `.lock()/.read()/.write()`/helper-call token.
    line: u32,
    /// The lock's name (receiver field/variable, or the helper's target).
    lock: String,
    kind: SiteKind,
    /// Non-adapter method names extracted through the chain (candidate
    /// blocking calls on the hidden temporary), with their lines.
    chain_methods: Vec<(String, u32)>,
    /// For `Bound`/`ScrutineeBound`: the guard's binding name, if one ident
    /// names it.
    binding: Option<String>,
    /// For `Bound`: token range of the live guard (post-statement to block
    /// close, truncated at a same-depth `drop(name)`). For `Scrutinee*`:
    /// the construct's body range.
    range: Option<(usize, usize)>,
}

/// The per-file output of [`analyze`].
pub(crate) struct LockAnalysis {
    /// Acquisition-order edges found in this file.
    pub edges: Vec<LockEdge>,
    /// Every lock name acquired in this file (graph nodes even when no edge
    /// touches them — `order()` declarations validate against this set).
    pub nodes: BTreeSet<String>,
    /// `end_line`s of `acquires()` directives that landed inside a live
    /// guard range (the rest are stale and get flagged by the caller).
    pub used_acquires: BTreeSet<u32>,
}

/// Per-file lock analysis. `helper_table` maps guard-returning helper fn
/// names to the lock they acquire (unioned across the workspace before this
/// runs). Returns the acquisition-order edges and node set; violations for
/// `guard-scope` and `blocking-while-locked` are pushed into `out`.
pub(crate) fn analyze(
    path: &str,
    toks: &[Tok],
    test_mask: &[bool],
    helper_table: &BTreeMap<String, String>,
    acquires: &[AcquiresDirective],
    out: &mut Vec<Violation>,
) -> LockAnalysis {
    let tree = BlockTree::build(toks);
    let fns = fn_table(toks, &tree);
    let sites = collect_sites(toks, test_mask, helper_table, &tree, &fns);

    let mut result = LockAnalysis {
        edges: Vec::new(),
        nodes: sites.iter().map(|s| s.lock.clone()).collect(),
        used_acquires: BTreeSet::new(),
    };
    result.nodes.extend(acquires.iter().map(|a| a.lock.clone()));
    for site in &sites {
        match site.kind {
            SiteKind::ScrutineeTemp => {
                out.push(Violation {
                    file: path.to_string(),
                    line: site.line,
                    rule: "guard-scope",
                    message: format!(
                        "temporary `{}` guard in a scrutinee lives across the whole body (the \
                         PR 3 pool-serialization bug); bind the value through a `let` inside the \
                         block, or wrap the scrutinee in braces so the guard drops first",
                        site.lock
                    ),
                });
            }
            SiteKind::Bound => {
                if let Some((lo, hi)) = site.range {
                    check_loop_hold(path, toks, test_mask, site, lo, hi, out);
                }
            }
            _ => {}
        }
        // Blocking calls reached through the hidden temporary's own chain
        // (`rx.lock().unwrap().recv()` blocks with the lock held).
        for (m, line) in &site.chain_methods {
            if BLOCKING.contains(&m.as_str()) {
                out.push(Violation {
                    file: path.to_string(),
                    line: *line,
                    rule: "blocking-while-locked",
                    message: format!(
                        "`{m}` blocks while the `{}` guard is live in the same expression; \
                         extract the value first so the guard drops, or audit with an allow \
                         pragma",
                        site.lock
                    ),
                });
            }
        }
        // Live-range scan: blocking calls and nested acquisitions.
        let (lo, hi) = match (site.kind, site.range) {
            (SiteKind::Bound | SiteKind::ScrutineeBound | SiteKind::ScrutineeTemp, Some(r)) => r,
            _ => continue,
        };
        scan_range(path, toks, test_mask, site, lo, hi, &sites, acquires, out, &mut result);
    }
    result
}

/// Detects guard-returning helpers in one file: a `fn` whose tail (or
/// `return`) expression is an adapters-only acquisition chain. Returns
/// `(fn_name, lock_name)` pairs.
pub(crate) fn detect_helpers(toks: &[Tok], test_mask: &[bool]) -> Vec<(String, String)> {
    let tree = BlockTree::build(toks);
    let fns = fn_table(toks, &tree);
    let empty = BTreeMap::new();
    let sites = collect_sites(toks, test_mask, &empty, &tree, &fns);
    let mut helpers: BTreeMap<String, Option<String>> = BTreeMap::new();
    for site in sites.iter().filter(|s| s.kind == SiteKind::Escaping) {
        let Some(f) = fns.iter().find(|f| f.body_open < site.start && site.start < f.body_close)
        else {
            continue;
        };
        match helpers.entry(f.name.clone()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(Some(site.lock.clone()));
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                // Two escaping acquisitions of different locks from one fn:
                // ambiguous, drop the helper rather than guess.
                if e.get().as_deref() != Some(site.lock.as_str()) {
                    e.insert(None);
                }
            }
        }
    }
    helpers.into_iter().filter_map(|(name, lock)| lock.map(|l| (name, l))).collect()
}

/// Finds every acquisition site in the file and classifies it.
fn collect_sites(
    toks: &[Tok],
    test_mask: &[bool],
    helper_table: &BTreeMap<String, String>,
    tree: &BlockTree,
    fns: &[FnItem],
) -> Vec<Site> {
    let mut sites = Vec::new();
    for i in 0..toks.len() {
        if test_mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        // Raw acquisition: `.lock()` / `.read()` / `.write()` with empty
        // parens (RwLock/Mutex take no arguments; `Read::read(buf)` does).
        let raw = is_punct(&toks[i], ".")
            && toks.get(i + 1).is_some_and(|t| {
                is_ident(t, "lock") || is_ident(t, "read") || is_ident(t, "write")
            })
            && toks.get(i + 2).is_some_and(|t| is_punct(t, "("))
            && toks.get(i + 3).is_some_and(|t| is_punct(t, ")"));
        // Helper call: a known guard-returning fn name followed by `(`.
        let helper = !raw
            && toks[i].kind == TokKind::Ident
            && helper_table.contains_key(&toks[i].text)
            && toks.get(i + 1).is_some_and(|t| is_punct(t, "("))
            && (i == 0 || !is_ident(&toks[i - 1], "fn"));
        if !raw && !helper {
            continue;
        }
        let (lock, name_tok, call_close, start) = if raw {
            let Some((lock, start)) = receiver_name(toks, i) else { continue };
            (lock, i + 1, i + 3, start)
        } else {
            let Some(close) = matching_paren(toks, i + 1) else { continue };
            let start = receiver_name(toks, i).map(|(_, s)| s).unwrap_or(i);
            (helper_table[&toks[i].text].clone(), i, close, start)
        };
        let (chain_end, extended, chain_methods) = walk_chain(toks, call_close + 1);
        let site = classify(
            toks,
            tree,
            fns,
            Site {
                start,
                chain_end,
                line: toks[name_tok].line,
                lock,
                kind: if extended { SiteKind::Temp } else { SiteKind::Bound },
                chain_methods,
                binding: None,
                range: None,
            },
            extended,
        );
        sites.push(site);
    }
    sites
}

/// Walks backward from the `.` (or helper-call ident) at `dot` to name the
/// receiver: the nearest field/variable ident that isn't `self`. Returns
/// `(name, chain_start_index)`, or `None` for stdio pseudo-locks.
fn receiver_name(toks: &[Tok], dot: usize) -> Option<(String, usize)> {
    let mut j = dot;
    let mut name: Option<String> = None;
    let mut start = dot;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if is_punct(t, ")") {
            // Skip a call/paren group backward.
            let mut depth = 0i32;
            loop {
                if is_punct(&toks[j], ")") {
                    depth += 1;
                } else if is_punct(&toks[j], "(") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            start = j;
            continue;
        }
        if t.kind == TokKind::Ident {
            // Keywords (`match expr.lock()…`, `return x.lock()…`) start the
            // expression, they are not part of the receiver chain.
            if KEYWORDS.contains(&t.text.as_str()) {
                break;
            }
            if STDIO.contains(&t.text.as_str()) {
                return None;
            }
            if name.is_none() && t.text != "self" {
                name = Some(t.text.clone());
            }
            start = j;
            continue;
        }
        if is_punct(t, ".") || is_punct(t, "::") {
            start = j;
            continue;
        }
        break;
    }
    name.map(|n| (n, start))
}

/// Follows the method chain starting at `pos` (just past the acquisition's
/// closing paren). Returns `(chain_end, extended, non_adapter_methods)`.
fn walk_chain(toks: &[Tok], mut pos: usize) -> (usize, bool, Vec<(String, u32)>) {
    let mut extended = false;
    let mut methods = Vec::new();
    loop {
        if toks.get(pos).is_some_and(|t| is_punct(t, "?")) {
            pos += 1;
            continue;
        }
        let dot = toks.get(pos).is_some_and(|t| is_punct(t, "."));
        let ident = toks.get(pos + 1).filter(|t| t.kind == TokKind::Ident);
        if let (true, Some(m)) = (dot, ident) {
            if toks.get(pos + 2).is_some_and(|t| is_punct(t, "(")) {
                let Some(close) = matching_paren(toks, pos + 2) else {
                    return (pos, extended, methods);
                };
                if !ADAPTERS.contains(&m.text.as_str()) {
                    extended = true;
                    methods.push((m.text.clone(), m.line));
                }
                pos = close + 1;
                continue;
            }
            // Field access / tuple index through the guard: extraction.
            extended = true;
            pos += 2;
            continue;
        }
        if dot && toks.get(pos + 1).is_some_and(|t| t.kind == TokKind::Int) {
            extended = true;
            pos += 2;
            continue;
        }
        return (pos, extended, methods);
    }
}

fn matching_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if is_punct(t, "(") {
            depth += 1;
        } else if is_punct(t, ")") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Settles a site's kind, binding, and live range from its statement
/// context.
fn classify(
    toks: &[Tok],
    tree: &BlockTree,
    fns: &[FnItem],
    mut site: Site,
    extended: bool,
) -> Site {
    let len = toks.len();
    // Statement start: just past the previous `;`, `{`, or `}`.
    let mut stmt_start = 0;
    for j in (0..site.start).rev() {
        let t = &toks[j];
        if is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}") {
            stmt_start = j + 1;
            break;
        }
    }
    let prefix = &toks[stmt_start..site.start];

    // Scrutinee detection: `match EXPR {`, `while let PAT = EXPR {`,
    // `if let PAT = EXPR {` with the site inside EXPR (before the body's
    // depth-0 `{`). A brace-wrapped scrutinee block drops its temporaries
    // early and is handled naturally: the site's own statement then starts
    // at the wrapping `{`, so no `match`/`let` shows in the prefix.
    let mut head = None;
    for (k, t) in prefix.iter().enumerate() {
        if is_ident(t, "match") {
            head = Some((stmt_start + k, false));
            break;
        }
        if (is_ident(t, "while") || is_ident(t, "if"))
            && prefix.get(k + 1).is_some_and(|n| is_ident(n, "let"))
        {
            head = Some((stmt_start + k, true));
            break;
        }
    }
    if let Some((head_idx, is_let_form)) = head {
        // Anchor: the `=` for let-forms, the `match` keyword itself.
        let anchor = if is_let_form {
            (head_idx..site.start).find(|&j| is_punct(&toks[j], "=")).unwrap_or(head_idx)
        } else {
            head_idx
        };
        if anchor < site.start {
            if let Some(body_open) = depth0_brace_after(toks, anchor + 1) {
                if site.start > anchor && site.chain_end <= body_open {
                    let body_close = tree.close.get(&body_open).copied().unwrap_or(len - 1);
                    site.range = Some((body_open, body_close));
                    if extended {
                        site.kind = SiteKind::ScrutineeTemp;
                    } else {
                        site.kind = SiteKind::ScrutineeBound;
                        site.binding = if is_let_form {
                            pattern_binding(&toks[head_idx..anchor])
                        } else {
                            None
                        };
                    }
                    return site;
                }
            }
        }
    }

    if extended {
        site.kind = SiteKind::Temp;
        return site;
    }

    // `return`-position or tail-position adapters-only chains escape.
    if prefix.iter().any(|t| is_ident(t, "return"))
        || toks.get(site.chain_end).is_some_and(|t| is_punct(t, "}"))
    {
        site.kind = SiteKind::Escaping;
        return site;
    }

    // `let g = …;` binds the guard; live range runs from the statement's end
    // to the close of the enclosing block (clamped to the enclosing fn and
    // truncated at a same-depth `drop(g)`).
    if let Some(let_idx) = prefix.iter().position(|t| is_ident(t, "let")) {
        let eq = (stmt_start + let_idx..site.start).find(|&j| is_punct(&toks[j], "="));
        site.binding = pattern_binding(&toks[stmt_start + let_idx..eq.unwrap_or(site.start)]);
        let stmt_end = (site.chain_end..len)
            .find(|&j| is_punct(&toks[j], ";"))
            .unwrap_or(len.saturating_sub(1));
        let mut hi = tree.enclosing_close(site.start, len);
        if let Some(f) = fns.iter().find(|f| f.body_open < site.start && site.start < f.body_close)
        {
            hi = hi.min(f.body_close);
        }
        if let Some(name) = &site.binding {
            let depth = tree.depth[site.start];
            for j in stmt_end..hi {
                if tree.depth[j] == depth
                    && is_ident(&toks[j], "drop")
                    && toks.get(j + 1).is_some_and(|t| is_punct(t, "("))
                    && toks.get(j + 2).is_some_and(|t| is_ident(t, name))
                    && toks.get(j + 3).is_some_and(|t| is_punct(t, ")"))
                {
                    hi = j;
                    break;
                }
            }
        }
        site.kind = SiteKind::Bound;
        site.range = Some((stmt_end, hi));
        return site;
    }

    // Bare statement temporary (`m.lock().unwrap();`): confined, inert.
    site.kind = SiteKind::Temp;
    site
}

/// First `{` after `from` outside any paren/bracket group (the body opener
/// of a `match`/`while let`/`if let` whose scrutinee starts at `from`).
fn depth0_brace_after(toks: &[Tok], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(from) {
        match t.text.as_str() {
            "(" | "[" if t.kind == TokKind::Punct => depth += 1,
            ")" | "]" if t.kind == TokKind::Punct => depth -= 1,
            "{" if depth == 0 && t.kind == TokKind::Punct => return Some(j),
            ";" if depth == 0 && t.kind == TokKind::Punct => return None,
            _ => {}
        }
    }
    None
}

/// The guard-binding ident in a `let` pattern: the last plain ident that
/// isn't a binding-mode keyword or an enum constructor (`Ok(mut g)` → `g`).
fn pattern_binding(pattern: &[Tok]) -> Option<String> {
    pattern
        .iter()
        .rev()
        .find(|t| {
            t.kind == TokKind::Ident
                && !matches!(t.text.as_str(), "let" | "mut" | "ref" | "Ok" | "Err" | "Some")
        })
        .map(|t| t.text.clone())
}

/// `guard-scope` half two: a bound guard held across a loop whose head and
/// body never touch it — pure serialization with no data dependency (the
/// PR 3 essence). Loops that *use* the guard are presumed intentional
/// (batch-under-one-lock is a documented §7.15 pattern).
fn check_loop_hold(
    path: &str,
    toks: &[Tok],
    test_mask: &[bool],
    site: &Site,
    lo: usize,
    hi: usize,
    out: &mut Vec<Violation>,
) {
    let Some(binding) = &site.binding else { return };
    let mut j = lo;
    while j < hi {
        if test_mask.get(j).copied().unwrap_or(false) {
            j += 1;
            continue;
        }
        let t = &toks[j];
        let is_loop = is_ident(t, "for") || is_ident(t, "while") || is_ident(t, "loop");
        if !is_loop {
            j += 1;
            continue;
        }
        // The loop's extent: keyword through its body's closing brace.
        let Some(body_open) = depth0_brace_after(toks, j + 1) else {
            j += 1;
            continue;
        };
        let body_close = matching_brace(toks, body_open).unwrap_or(hi);
        if body_close > hi {
            j = body_open + 1;
            continue;
        }
        let mentions_guard = toks[j..=body_close].iter().any(|t| is_ident(t, binding));
        if !mentions_guard {
            out.push(Violation {
                file: path.to_string(),
                line: t.line,
                rule: "guard-scope",
                message: format!(
                    "`{binding}` ({} guard, bound line {}) is held across this loop but never \
                     used in it; drop or scope the guard before looping, or audit an intentional \
                     hold with an allow pragma",
                    site.lock, site.line
                ),
            });
        }
        j = body_close + 1;
    }
}

fn matching_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if is_punct(t, "{") {
            depth += 1;
        } else if is_punct(t, "}") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Scans one guard's live range for blocking calls and nested acquisitions.
#[allow(clippy::too_many_arguments)]
fn scan_range(
    path: &str,
    toks: &[Tok],
    test_mask: &[bool],
    holder: &Site,
    lo: usize,
    hi: usize,
    sites: &[Site],
    acquires: &[AcquiresDirective],
    out: &mut Vec<Violation>,
    result: &mut LockAnalysis,
) {
    for j in lo..hi {
        if test_mask.get(j).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[j];
        if t.kind != TokKind::Ident
            || !BLOCKING.contains(&t.text.as_str())
            || !toks.get(j + 1).is_some_and(|n| is_punct(n, "("))
        {
            continue;
        }
        // Condvar exemption: `cv.wait(guard)` / `cv.wait_timeout(guard, d)`
        // releases the lock while parked — that's the API contract, not a
        // block-while-locked.
        if matches!(t.text.as_str(), "wait" | "wait_timeout" | "wait_timeout_while" | "wait_while")
        {
            if let (Some(name), Some(close)) = (&holder.binding, matching_paren(toks, j + 1)) {
                if toks[j + 2..close].iter().any(|a| is_ident(a, name)) {
                    continue;
                }
            }
        }
        out.push(Violation {
            file: path.to_string(),
            line: t.line,
            rule: "blocking-while-locked",
            message: format!(
                "`{}` blocks while the `{}` guard (acquired line {}) is held; move the blocking \
                 call outside the lock, or audit with an allow pragma",
                t.text, holder.lock, holder.line
            ),
        });
    }
    // Nested acquisitions inside the range feed the acquisition-order
    // graph: edge holder → inner. (Nesting itself is not a violation —
    // cycles and order() contradictions are, checked globally.)
    for inner in sites {
        let anchor = inner.start;
        if anchor <= lo || anchor >= hi || inner.kind == SiteKind::Escaping {
            continue;
        }
        if std::ptr::eq(inner, holder) {
            continue;
        }
        result.edges.push(LockEdge {
            from: holder.lock.clone(),
            to: inner.lock.clone(),
            file: path.to_string(),
            line: inner.line,
        });
    }
    for d in acquires {
        let covered = d.end_line + 1;
        let lo_line = toks[lo].line;
        let hi_line = toks[hi.min(toks.len() - 1)].line;
        if covered >= lo_line && covered <= hi_line {
            result.used_acquires.insert(d.end_line);
            result.edges.push(LockEdge {
                from: holder.lock.clone(),
                to: d.lock.clone(),
                file: path.to_string(),
                line: covered,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> (Vec<Violation>, Vec<LockEdge>) {
        let lexed = lex(src);
        let mask = vec![false; lexed.toks.len()];
        let helpers: BTreeMap<String, String> =
            detect_helpers(&lexed.toks, &mask).into_iter().collect();
        let mut out = Vec::new();
        let la = analyze("t.rs", &lexed.toks, &mask, &helpers, &[], &mut out);
        (out, la.edges)
    }

    #[test]
    fn while_let_scrutinee_temp_guard_fires() {
        let src = "fn f(q: &Mutex<Vec<u32>>) {\n    while let Some(t) = q.lock().unwrap().pop() {\n        work(t);\n    }\n}\n";
        let (v, _) = run(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "guard-scope");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn match_scrutinee_temp_guard_fires() {
        // The backward receiver walk must stop at the `match` keyword, or
        // the prefix scan never sees the scrutinee head.
        let src = "fn f(s: &Mutex<u32>) {\n    match s.lock().unwrap().checked_add(1) {\n        Some(v) => work(v),\n        None => {}\n    }\n}\n";
        let (v, _) = run(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "guard-scope");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn brace_wrapped_scrutinee_is_clean() {
        let src = "fn f(q: &Mutex<Vec<u32>>) {\n    while let Some(t) = { q.lock().unwrap().pop() } {\n        work(t);\n    }\n}\n";
        let (v, _) = run(src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn pattern_bound_guard_in_if_let_is_clean() {
        let src = "fn f(m: &Mutex<u32>) {\n    if let Ok(g) = m.lock() {\n        use_it(&g);\n    }\n}\n";
        let (v, _) = run(src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn recv_through_temporary_guard_fires() {
        let src = "fn f(rx: &Mutex<Receiver<u32>>) -> Option<u32> {\n    rx.lock().unwrap().recv().ok()\n}\n";
        let (v, _) = run(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "blocking-while-locked");
    }

    #[test]
    fn blocking_call_in_bound_guard_range_fires_and_drop_truncates() {
        let src = "fn f(m: &Mutex<u32>) {\n    let g = m.lock().unwrap();\n    sleep(D);\n    drop(g);\n    sleep(D);\n}\n";
        let (v, _) = run(src);
        assert_eq!(v.len(), 1, "only the pre-drop sleep fires: {v:?}");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn condvar_wait_taking_the_guard_is_exempt() {
        let src = "fn f(m: &Mutex<usize>, cv: &Condvar) {\n    let mut g = m.lock().unwrap();\n    while *g > 0 {\n        g = cv.wait(g).unwrap();\n    }\n}\n";
        let (v, _) = run(src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn guard_held_across_unrelated_loop_fires() {
        let src = "fn f(m: &Mutex<u64>, xs: &[u32]) -> u64 {\n    let g = m.lock().unwrap();\n    for x in xs {\n        work(*x);\n    }\n    *g\n}\n";
        let (v, _) = run(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "guard-scope");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn loop_using_the_guard_is_clean() {
        let src = "fn f(m: &Mutex<Vec<u64>>) -> u64 {\n    let g = m.lock().unwrap();\n    let mut s = 0;\n    for x in g.iter() {\n        s += *x;\n    }\n    s\n}\n";
        let (v, _) = run(src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn nested_locks_produce_an_edge_not_a_violation() {
        let src = "fn f(a: &Mutex<u32>, b: &Mutex<u32>) {\n    let ga = a.lock().unwrap();\n    let gb = b.lock().unwrap();\n    use_both(&ga, &gb);\n}\n";
        let (v, e) = run(src);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(e.len(), 1, "{e:?}");
        assert_eq!((e[0].from.as_str(), e[0].to.as_str()), ("a", "b"));
    }

    #[test]
    fn helper_detection_and_helper_call_ranges() {
        let src = "fn read_engine(s: &State) -> Guard {\n    s.engine.read().unwrap_or_else(|p| p.into_inner())\n}\nfn g(s: &State, m: &Mutex<u32>) {\n    let eng = read_engine(s);\n    let inner = m.lock().unwrap();\n    use_both(&eng, &inner);\n}\n";
        let lexed = lex(src);
        let mask = vec![false; lexed.toks.len()];
        let helpers = detect_helpers(&lexed.toks, &mask);
        assert_eq!(helpers, vec![("read_engine".to_string(), "engine".to_string())]);
        let (v, e) = run(src);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(e.len(), 1, "{e:?}");
        assert_eq!((e[0].from.as_str(), e[0].to.as_str()), ("engine", "m"));
    }

    #[test]
    fn stdio_locks_are_not_mutexes() {
        let src = "fn f() {\n    let mut out = std::io::stdout().lock();\n    writeln!(out, \"x\").ok();\n}\n";
        let (v, e) = run(src);
        assert!(v.is_empty(), "{v:?}");
        assert!(e.is_empty());
    }
}
