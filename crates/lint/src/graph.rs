//! The cross-file lock-acquisition-order graph: cycle detection (potential
//! deadlocks), `order()` declaration checking, and Graphviz DOT rendering
//! (DESIGN.md §7.16).
//!
//! Nodes are lock names (receiver fields/variables, merged globally — that
//! merging is the point: `engine` in `server.rs` and `engine` reached
//! through a helper in another file are the same lock). Edges come from
//! [`crate::locks::analyze`]: `a → b` means "b was acquired while a guard
//! of a was live". A cycle means two threads can interleave the
//! acquisitions and deadlock; an `order(first < second)` declaration is
//! contradicted by any path `second → … → first`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::locks::LockEdge;

/// Finds acquisition cycles: every strongly connected component with more
/// than one lock (or a self-edge) is a potential deadlock. Returns each
/// cycle as a sorted list of lock names, deterministically ordered.
pub fn lock_cycles(edges: &[LockEdge]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().insert(&e.to);
        adj.entry(&e.to).or_default();
    }
    // Kosaraju: order by finish time, then collect SCCs on the transpose.
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut finish = Vec::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for &n in &nodes {
        if seen.contains(n) {
            continue;
        }
        // Iterative DFS with an explicit post-visit marker.
        let mut stack = vec![(n, false)];
        while let Some((u, post)) = stack.pop() {
            if post {
                finish.push(u);
                continue;
            }
            if !seen.insert(u) {
                continue;
            }
            stack.push((u, true));
            if let Some(next) = adj.get(u) {
                for &v in next.iter().rev() {
                    if !seen.contains(v) {
                        stack.push((v, false));
                    }
                }
            }
        }
    }
    let mut radj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        radj.entry(&e.to).or_default().insert(&e.from);
    }
    let mut assigned: BTreeSet<&str> = BTreeSet::new();
    let mut cycles = Vec::new();
    for &n in finish.iter().rev() {
        if assigned.contains(n) {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![n];
        while let Some(u) = stack.pop() {
            if !assigned.insert(u) {
                continue;
            }
            comp.push(u.to_string());
            if let Some(prev) = radj.get(u) {
                for &v in prev {
                    if !assigned.contains(v) {
                        stack.push(v);
                    }
                }
            }
        }
        comp.sort();
        let self_loop =
            comp.len() == 1 && edges.iter().any(|e| e.from == comp[0] && e.to == comp[0]);
        if comp.len() > 1 || self_loop {
            cycles.push(comp);
        }
    }
    cycles.sort();
    cycles
}

/// Shortest path `from → … → to` over the edge set, as the edges along it.
/// Used to attribute an `order()` contradiction to real acquisition sites.
pub fn find_path<'a>(edges: &'a [LockEdge], from: &str, to: &str) -> Option<Vec<&'a LockEdge>> {
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().push(e);
    }
    let mut prev: BTreeMap<&str, &LockEdge> = BTreeMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(from);
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    seen.insert(from);
    while let Some(u) = queue.pop_front() {
        if u == to {
            if from == to {
                // A self-path needs at least one edge; fall through to the
                // neighbor scan below (`seen` already blocks re-entry, so a
                // genuine self-loop edge is the only way back).
                if let Some(e) = edges.iter().find(|e| e.from == from && e.to == to) {
                    return Some(vec![e]);
                }
            } else {
                let mut path = Vec::new();
                let mut cur = to;
                while cur != from {
                    let e = prev[cur];
                    path.push(e);
                    cur = &e.from;
                }
                path.reverse();
                return Some(path);
            }
        }
        for &e in adj.get(u).into_iter().flatten() {
            if seen.insert(&e.to) {
                prev.insert(&e.to, e);
                queue.push_back(&e.to);
            }
        }
    }
    None
}

/// Renders the acquisition-order graph as Graphviz DOT (one edge per
/// distinct `(from, to)` pair, labeled with its first site and
/// multiplicity).
pub fn render_lock_graph(edges: &[LockEdge]) -> String {
    let mut grouped: BTreeMap<(&str, &str), Vec<&LockEdge>> = BTreeMap::new();
    for e in edges {
        grouped.entry((&e.from, &e.to)).or_default().push(e);
    }
    let mut out = String::from(
        "// dd-lint acquisition-order graph: edge a -> b means \"b was acquired\n\
         // while a guard of a was live\". Cycles here are potential deadlocks\n\
         // (DESIGN.md 7.16). Regenerate with:\n\
         //   cargo run -p dd-lint -- --workspace --lock-graph results/lock-graph.dot\n\
         digraph lock_order {\n    rankdir=LR;\n    node [shape=box, fontname=\"monospace\"];\n",
    );
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for e in edges {
        nodes.insert(&e.from);
        nodes.insert(&e.to);
    }
    for n in nodes {
        out.push_str(&format!("    \"{n}\";\n"));
    }
    for ((from, to), sites) in grouped {
        let first = sites[0];
        let label = if sites.len() > 1 {
            format!("{}:{} (+{})", first.file, first.line, sites.len() - 1)
        } else {
            format!("{}:{}", first.file, first.line)
        };
        out.push_str(&format!("    \"{from}\" -> \"{to}\" [label=\"{label}\"];\n"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(from: &str, to: &str, line: u32) -> LockEdge {
        LockEdge { from: from.into(), to: to.into(), file: "x.rs".into(), line }
    }

    #[test]
    fn cycles_detected_and_rendered() {
        let edges = vec![edge("a", "b", 1), edge("b", "a", 9), edge("a", "c", 2)];
        let cycles = lock_cycles(&edges);
        assert_eq!(cycles, vec![vec!["a".to_string(), "b".to_string()]]);
        let dot = render_lock_graph(&edges);
        assert!(dot.contains("\"a\" -> \"b\""));
        assert!(dot.contains("x.rs:1"));
        let path = find_path(&edges, "b", "c").expect("b reaches c through a");
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn acyclic_graph_has_no_cycles() {
        let edges = vec![edge("a", "b", 1), edge("b", "c", 2)];
        assert!(lock_cycles(&edges).is_empty());
        assert!(find_path(&edges, "c", "a").is_none());
    }

    #[test]
    fn self_loop_is_a_cycle_and_a_path() {
        let edges = vec![edge("a", "a", 4)];
        assert_eq!(lock_cycles(&edges), vec![vec!["a".to_string()]]);
        let path = find_path(&edges, "a", "a").expect("self-loop path");
        assert_eq!(path.len(), 1);
    }

    #[test]
    fn dot_groups_parallel_edges() {
        let edges = vec![edge("a", "b", 1), edge("a", "b", 7)];
        let dot = render_lock_graph(&edges);
        assert_eq!(dot.matches("\"a\" -> \"b\"").count(), 1);
        assert!(dot.contains("(+1)"));
    }
}
