//! A hand-rolled Rust lexer, just deep enough for contract linting.
//!
//! The point of lexing (rather than grepping) is that string literals, char
//! literals, comments, doc comments, and raw strings are classified
//! correctly: `"thread::spawn"` inside a test fixture string or a doc
//! comment mentioning `.unwrap()` must never trip a rule. The lexer is not
//! a parser — it produces a flat token stream plus a side list of comments
//! — and it is deliberately forgiving: on input it cannot classify it
//! degrades to single-character punctuation instead of failing, so a lint
//! run never aborts on exotic-but-valid Rust.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`thread`, `pub`, `r#type`).
    Ident,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `1e-3`, `2f64`, `1.`).
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Character literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`) — distinct from [`TokKind::Char`].
    Lifetime,
    /// Punctuation, maximally munched (`::`, `==`, `!=`, `->`, single chars).
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token class.
    pub kind: TokKind,
    /// The token text (for `Str`/`Char` only the delimiters' content class
    /// matters to rules, but the text is kept for diagnostics).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// One comment, with doc-comment classification for the `pub-doc` rule and
/// raw text for `dd-lint:` pragma parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equals `line` for `//` comments).
    pub end_line: u32,
    /// Comment text without the `//`/`/*` markers.
    pub text: String,
    /// True for *outer* doc comments (`///`, `/** */`) — the kind that
    /// documents the following item. Inner docs (`//!`) are not `doc`.
    pub doc: bool,
    /// True for doc comments of either direction (`///`, `//!`, `/** */`,
    /// `/*! */`). Pragmas are only honored in plain comments, so prose
    /// *describing* the pragma syntax can live in docs without firing.
    pub any_doc: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order (not interleaved into `toks`).
    pub comments: Vec<Comment>,
}

/// Multi-character punctuation, longest first (maximal munch).
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Lexes `src` into tokens and comments. Never fails: unclassifiable bytes
/// become single-character punctuation.
pub fn lex(src: &str) -> Lexed {
    Lexer { b: src.as_bytes(), i: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' | b'c' => {
                    if let Some((hashes, skip)) = self.string_prefix_len() {
                        self.raw_or_prefixed_string(hashes, skip);
                    } else if c == b'r'
                        && self.peek(1) == Some(b'#')
                        && self.ident_start_at(self.i + 2)
                    {
                        self.i += 2; // raw identifier r#type
                        self.ident();
                    } else {
                        self.ident();
                    }
                }
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                _ if c.is_ascii_digit() => self.number(),
                _ if is_ident_start(c) => self.ident(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn ident_start_at(&self, at: usize) -> bool {
        self.b.get(at).is_some_and(|&c| is_ident_start(c))
    }

    fn bump_line_for(&mut self, byte: u8) {
        if byte == b'\n' {
            self.line += 1;
        }
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.toks.push(Tok { kind, text, line });
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        let rest = &self.b[self.i..];
        // `///` is an outer doc comment, but `////…` is ordinary.
        let doc = rest.starts_with(b"///") && !rest.starts_with(b"////");
        let inner = rest.starts_with(b"//!");
        let mut j = self.i + 2;
        while j < self.b.len() && self.b[j] != b'\n' {
            j += 1;
        }
        let text = String::from_utf8_lossy(&self.b[self.i + 2..j]).into_owned();
        self.i = j;
        self.out.comments.push(Comment {
            line: start_line,
            end_line: start_line,
            text,
            doc,
            any_doc: doc || inner,
        });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let rest = &self.b[self.i..];
        // `/**` is an outer doc comment, except `/**/` (empty) and `/***`.
        let doc =
            rest.starts_with(b"/**") && !rest.starts_with(b"/**/") && !rest.starts_with(b"/***");
        let inner = rest.starts_with(b"/*!");
        let body_start = self.i + 2;
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            if self.b[self.i..].starts_with(b"/*") {
                depth += 1;
                self.i += 2;
            } else if self.b[self.i..].starts_with(b"*/") {
                depth -= 1;
                self.i += 2;
            } else {
                self.bump_line_for(self.b[self.i]);
                self.i += 1;
            }
        }
        let body_end = self.i.saturating_sub(2).max(body_start);
        let text = String::from_utf8_lossy(&self.b[body_start..body_end]).into_owned();
        self.out.comments.push(Comment {
            line: start_line,
            end_line: self.line,
            text,
            doc,
            any_doc: doc || inner,
        });
    }

    /// If the cursor sits on a string prefix (`r"`, `r#"`, `b"`, `br#"`,
    /// `c"`, `cr##"`, …), returns `(hashes, prefix_len)` where `hashes` is
    /// the raw-string hash count, or `usize::MAX` for non-raw (escaped)
    /// prefixed strings.
    fn string_prefix_len(&self) -> Option<(usize, usize)> {
        let rest = &self.b[self.i..];
        let (is_raw, mut p) = match rest {
            [b'r', ..] => (true, 1),
            [b'b', b'r', ..] | [b'c', b'r', ..] => (true, 2),
            [b'b', ..] | [b'c', ..] => (false, 1),
            _ => return None,
        };
        if is_raw {
            let mut hashes = 0;
            while rest.get(p) == Some(&b'#') {
                hashes += 1;
                p += 1;
            }
            if rest.get(p) == Some(&b'"') {
                return Some((hashes, p + 1));
            }
            return None;
        }
        if rest.get(p) == Some(&b'"') {
            return Some((usize::MAX, p + 1));
        }
        None
    }

    fn raw_or_prefixed_string(&mut self, hashes: usize, skip: usize) {
        let line = self.line;
        self.i += skip;
        if hashes == usize::MAX {
            self.consume_escaped_string_body();
        } else {
            // Raw string: ends at `"` followed by `hashes` hash marks.
            while self.i < self.b.len() {
                if self.b[self.i] == b'"' {
                    let tail = &self.b[self.i + 1..];
                    if tail.len() >= hashes && tail[..hashes].iter().all(|&h| h == b'#') {
                        self.i += 1 + hashes;
                        break;
                    }
                }
                self.bump_line_for(self.b[self.i]);
                self.i += 1;
            }
        }
        self.push(TokKind::Str, String::new(), line);
    }

    fn string(&mut self) {
        let line = self.line;
        self.i += 1; // opening quote
        self.consume_escaped_string_body();
        self.push(TokKind::Str, String::new(), line);
    }

    /// Consumes up to and including the closing `"`, honoring backslash
    /// escapes and counting newlines (multi-line strings are valid Rust).
    fn consume_escaped_string_body(&mut self) {
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'"' => {
                    self.i += 1;
                    return;
                }
                c => {
                    self.bump_line_for(c);
                    self.i += 1;
                }
            }
        }
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let start = self.i;
        self.i += 1; // the quote
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: skip the escape, then scan to `'`.
                self.i += 2;
                while self.i < self.b.len() && self.b[self.i] != b'\'' {
                    self.i += 1;
                }
                self.i += 1;
                self.push(TokKind::Char, String::new(), line);
            }
            Some(c) if is_ident_start(c) => {
                let mut j = self.i + 1;
                while j < self.b.len() && is_ident_continue(self.b[j]) {
                    j += 1;
                }
                if self.b.get(j) == Some(&b'\'') {
                    // 'a' — a char literal.
                    self.i = j + 1;
                    self.push(TokKind::Char, String::new(), line);
                } else {
                    // 'a (no closing quote) — a lifetime.
                    let text = String::from_utf8_lossy(&self.b[start..j]).into_owned();
                    self.i = j;
                    self.push(TokKind::Lifetime, text, line);
                }
            }
            Some(_) => {
                // Punctuation char literal like '(' or '"'.
                self.i += 1;
                if self.peek(0) == Some(b'\'') {
                    self.i += 1;
                }
                self.push(TokKind::Char, String::new(), line);
            }
            None => self.push(TokKind::Punct, "'".to_string(), line),
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.i;
        let mut float = false;
        if self.b[self.i] == b'0'
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.i += 2;
            while self.i < self.b.len()
                && (self.b[self.i].is_ascii_alphanumeric() || self.b[self.i] == b'_')
            {
                self.i += 1;
            }
            let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
            self.push(TokKind::Int, text, line);
            return;
        }
        self.digits();
        // A `.` continues the number only when it is not a range (`1..2`),
        // a method call (`1.max(2)`), or a field access.
        if self.peek(0) == Some(b'.') {
            match self.peek(1) {
                Some(d) if d.is_ascii_digit() => {
                    self.i += 1;
                    self.digits();
                    float = true;
                }
                Some(b'.') => {}
                Some(c) if is_ident_start(c) => {}
                _ => {
                    self.i += 1; // trailing-dot float `1.`
                    float = true;
                }
            }
        }
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let (sign, digit) = (self.peek(1), self.peek(2));
            let exp = match (sign, digit) {
                (Some(d), _) if d.is_ascii_digit() => true,
                (Some(b'+') | Some(b'-'), Some(d)) if d.is_ascii_digit() => true,
                _ => false,
            };
            if exp {
                self.i += if matches!(sign, Some(b'+') | Some(b'-')) { 2 } else { 1 };
                self.digits();
                float = true;
            }
        }
        // Type suffix (`u32`, `f64`, …) — an `f32`/`f64` suffix makes it a
        // float regardless of the spelling before it.
        let suffix_start = self.i;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        let suffix = &self.b[suffix_start..self.i];
        if suffix == b"f32" || suffix == b"f64" {
            float = true;
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.push(if float { TokKind::Float } else { TokKind::Int }, text, line);
    }

    fn digits(&mut self) {
        while self.i < self.b.len() && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_') {
            self.i += 1;
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.i;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.push(TokKind::Ident, text, line);
    }

    fn punct(&mut self) {
        let line = self.line;
        let rest = &self.b[self.i..];
        for p in PUNCTS {
            if rest.starts_with(p.as_bytes()) {
                self.i += p.len();
                self.push(TokKind::Punct, (*p).to_string(), line);
                return;
            }
        }
        // Single byte — degrade gracefully on non-UTF-8-boundary bytes.
        let text = String::from_utf8_lossy(&rest[..1]).into_owned();
        self.i += 1;
        self.push(TokKind::Punct, text, line);
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_paths() {
        let toks = kinds("thread::spawn(x)");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "thread".into()),
                (TokKind::Punct, "::".into()),
                (TokKind::Ident, "spawn".into()),
                (TokKind::Punct, "(".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, ")".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let lexed = lex(r#"let s = "thread::spawn .unwrap()";"#);
        assert!(lexed.toks.iter().all(|t| t.text != "spawn" && t.text != "unwrap"));
        assert_eq!(lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_and_prefixed_strings() {
        for src in [
            r##"let s = r"no \ escapes";"##,
            r###"let s = r#"with "quotes" inside"#;"###,
            r#"let s = b"bytes";"#,
            r##"let s = br#"raw bytes"#;"##,
            r#"let s = c"cstr";"#,
        ] {
            let lexed = lex(src);
            assert_eq!(
                lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count(),
                1,
                "source: {src}"
            );
            let semis = lexed.toks.iter().filter(|t| t.text == ";").count();
            assert_eq!(semis, 1, "string body leaked into tokens: {src}");
        }
    }

    #[test]
    fn r_prefix_without_quote_is_an_ident() {
        let toks = kinds("railway r#type");
        assert_eq!(toks[0], (TokKind::Ident, "railway".into()));
        assert_eq!(toks[1], (TokKind::Ident, "type".into()));
    }

    #[test]
    fn chars_versus_lifetimes() {
        let toks = kinds("let c = 'a'; fn f<'a>(x: &'a str) { let q = '\\''; }");
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        assert_eq!(chars, 2);
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn numbers_classify_int_versus_float() {
        let toks = kinds("1 1.0 1. 1e5 1.5e-3 2f64 3f32 0xFF 1_000u64 1..2 x.0");
        let floats: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokKind::Float).map(|(_, t)| t.as_str()).collect();
        assert_eq!(floats, vec!["1.0", "1.", "1e5", "1.5e-3", "2f64", "3f32"]);
        // `1..2` stays two ints around a range; `x.0` is a tuple index.
        assert!(toks.contains(&(TokKind::Punct, "..".into())));
    }

    #[test]
    fn method_call_on_int_does_not_eat_the_dot() {
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokKind::Int, "1".into()));
        assert_eq!(toks[1], (TokKind::Punct, ".".into()));
        assert_eq!(toks[2], (TokKind::Ident, "max".into()));
    }

    #[test]
    fn comments_collected_with_doc_flags() {
        let src = "/// outer doc\n//! inner doc\n// plain\n//// not doc\n/** block doc */\n/*** not doc */\nfn f() {}\n";
        let lexed = lex(src);
        let docs: Vec<bool> = lexed.comments.iter().map(|c| c.doc).collect();
        assert_eq!(docs, vec![true, false, false, false, true, false]);
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let src = "/* a /* nested */ still comment */ fn f() {}\n// after\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.toks[0].text, "fn", "nested comment must close correctly");
    }

    #[test]
    fn multiline_string_advances_line_numbers() {
        let src = "let s = \"line\nbreak\";\nfn f() {}\n";
        let lexed = lex(src);
        let f = lexed.toks.iter().find(|t| t.text == "fn").map(|t| t.line);
        assert_eq!(f, Some(3));
    }
}
