//! # dd-lint — token-aware workspace analyzer for repo contracts
//!
//! The reproduction's core guarantee — bit-identical training and scoring
//! at any thread count (DESIGN.md §7.9) — and its serving hygiene
//! (DESIGN.md §7.10) used to be enforced by two `grep` lints and
//! convention. dd-lint replaces both with a real static-analysis pass: a
//! hand-rolled lexer (strings, char literals, comments, attributes handled
//! correctly, so a doc comment mentioning `.unwrap()` never fires) feeding
//! named rules over every workspace source file.
//!
//! | rule | scope | contract |
//! |------|-------|----------|
//! | `thread-confinement` | everywhere but `crates/runtime` | no `thread::spawn`/`thread::scope`; use the dd-runtime substrate |
//! | `unwind-confinement` | everywhere but `crates/serve`, `crates/runtime` | no `catch_unwind`; library code stays panic-transparent |
//! | `determinism` | non-test code in core, graph, linalg, baselines, eval, runtime, stream, datasets | no `Instant::now`/`SystemTime`, no bare `HashMap`/`HashSet` |
//! | `trace-hygiene` | non-test code outside `crates/telemetry` and the determinism crates | no raw `Instant::now`; time work through telemetry spans |
//! | `panic-hygiene` | non-test `crates/serve/src`, `crates/runtime/src` | no `.unwrap()`/`.expect(` on the request path or in workers |
//! | `float-eq` | all non-test code | no `==`/`!=` against float literals |
//! | `pub-doc` | non-test src of the core crates | top-level `pub` items need doc comments |
//! | `guard-scope` | all non-test code | no temporary lock guard in a scrutinee, no guard held across an unrelated loop |
//! | `blocking-while-locked` | all non-test code | no blocking call (I/O, channels, sleeps, waits) under a live lock guard |
//! | `lock-order` | whole-workspace graph | no acquisition cycles; `order()` declarations hold |
//! | `pragma` | everywhere | `allow()`/`order()`/`acquires()` directives must be well-formed, reasoned, and live |
//!
//! Violations print as `file:line: rule: message` (JSONL with `--json`).
//! Suppression is explicit and audited: `// dd-lint: allow(<rule>) — <reason>`
//! on the violating line or the line above. Legacy debt lives in
//! `lint-baseline.txt`, a ratchet that fails CI on any new violation *and*
//! on silently shrunk debt (regenerate with `--write-baseline`).
//!
//! The three lock rules come from the [`locks`] intra-function semantic
//! pass (guard live ranges over a brace-aware block tree) and the
//! [`graph`] cross-file acquisition-order graph; `--lock-graph FILE`
//! renders the graph as Graphviz DOT. See DESIGN.md §7.16 for the model
//! and annotation syntax.
//!
//! ## Adding a rule
//!
//! 1. Pick a kebab-case name and add it to [`rules::RULE_NAMES`].
//! 2. Write a `fn my_rule(path, scope, toks, test_mask, out)` in
//!    `rules.rs`: iterate the token stream ([`lexer::Tok`]), skip indices
//!    where `test_mask[i]` is true if the rule should ignore tests, and
//!    push [`rules::Violation`]s with a message that names the fix.
//!    Scoping is path-based — reuse `Scope` or prefix checks. Rules that
//!    need block structure or guard ranges build on [`locks`] instead.
//! 3. Call it from `rules::analyze_file` (per-file phase A) or, for
//!    cross-file checks, from `rules::finish` (serial phase B). Pragmas
//!    and the baseline work automatically for any pushed violation.
//! 4. Add two fixtures under `tests/fixtures/<rule>/` — `bad.rs` (expected
//!    hits) and `clean.rs` (look-alikes that must not fire: the string /
//!    doc-comment / `#[cfg(test)]` traps) — and wire them up in
//!    `tests/rule_fixtures.rs`.
//! 5. Document the rule row in DESIGN.md §7.11 and run
//!    `cargo run -p dd-lint -- --workspace --write-baseline` if it lands
//!    with legacy debt.
//!
//! The crate depends only on std and dd-runtime (phase A fans out over the
//! deterministic `Pool`); the CI lint job builds and runs it before
//! anything heavier compiles.

#![warn(missing_docs)]

pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod locks;
pub mod rules;

use std::path::{Path, PathBuf};

use dd_runtime::{Pool, Threads};

pub use graph::{find_path, lock_cycles, render_lock_graph};
pub use locks::{LockEdge, OrderDecl};
pub use rules::{check_file, FileReport, Pragma, Violation};

/// Directories scanned relative to the workspace root (mirrors what the old
/// grep lints covered).
const SCAN_ROOTS: &[&str] = &["crates", "tests", "examples"];

/// The combined result of analyzing a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed violations, sorted by file, line, rule.
    pub violations: Vec<Violation>,
    /// Every pragma encountered (the suppression audit trail).
    pub pragmas: Vec<Pragma>,
    /// The lock-acquisition-order graph's edges, sorted and deduplicated
    /// (render with [`render_lock_graph`], check with [`lock_cycles`]).
    pub edges: Vec<LockEdge>,
    /// Number of files analyzed.
    pub files: usize,
}

/// Analyzes the whole workspace rooted at `root`, serially.
///
/// Walks `crates/`, `tests/`, and `examples/` for `*.rs` files, skipping
/// `target/`, `vendor/`,
/// and `fixtures/` directories (lint fixtures contain deliberate
/// violations). Paths are reported workspace-relative with `/` separators,
/// and files are visited in sorted order so output and baselines are
/// deterministic.
pub fn check_workspace(root: &Path) -> Result<Report, String> {
    check_workspace_with(root, Threads::serial())
}

/// [`check_workspace`] with an explicit thread count for the per-file
/// analysis phase. Output is bit-identical at any thread count: phase A is
/// pure per-file work reduced in path order, and the cross-file phase is
/// always serial.
pub fn check_workspace_with(root: &Path, threads: Threads) -> Result<Report, String> {
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    check_paths_with(root, &files, threads)
}

/// Analyzes an explicit set of files (absolute or root-relative),
/// serially. Unlike [`check_workspace`], no `fixtures/` filtering is
/// applied — an explicitly named path is always checked (the CI lint-smoke
/// step relies on this to point dd-lint at a known-bad fixture).
pub fn check_paths(root: &Path, files: &[PathBuf]) -> Result<Report, String> {
    check_paths_with(root, files, Threads::serial())
}

/// [`check_paths`] with an explicit thread count. Sources are read up
/// front, phase A (lexing + single-file rules) fans out over
/// `dd_runtime::Pool::par_map` — whose results come back in index order,
/// so findings are deterministic — and the cross-file phase B (helper
/// table, lock graph, pragma settlement) runs serially on the ordered
/// results.
pub fn check_paths_with(
    root: &Path,
    files: &[PathBuf],
    threads: Threads,
) -> Result<Report, String> {
    let mut sources = Vec::with_capacity(files.len());
    for file in files {
        let rel = match file.strip_prefix(root) {
            Ok(rel) => rel.to_path_buf(),
            Err(_) => file.clone(),
        };
        let rel = rel.to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        sources.push((rel, src));
    }
    let analyses = if threads.is_serial() || sources.len() < 2 {
        sources.iter().map(|(rel, src)| rules::analyze_file(rel, src)).collect()
    } else {
        let pool = Pool::new("lint", threads);
        pool.par_map(sources.len(), |i| rules::analyze_file(&sources[i].0, &sources[i].1))
    };
    let fin = rules::finish(analyses);
    Ok(Report {
        violations: fin.violations,
        pragmas: fin.pragmas,
        edges: fin.edges,
        files: sources.len(),
    })
}

/// Recursively collects `*.rs` files under `dir`, skipping directories that
/// must never be linted.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures/` holds deliberate violations for dd-lint's own
            // tests; `vendor/` is third-party-shaped stub code; `target/`
            // is build output.
            if name == "target" || name == "vendor" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `--check-exemptions`: every `allow(determinism)` pragma inside
/// `crates/runtime` must have a matching exemption note in the design doc —
/// the doc must mention the file's workspace-relative path (DESIGN.md
/// §7.11 keeps the list). Returns human-readable failures.
pub fn check_exemptions(pragmas: &[Pragma], design_doc_text: &str) -> Vec<String> {
    let mut failures = Vec::new();
    for p in pragmas {
        if p.rule != "determinism" || !p.file.starts_with("crates/runtime/") {
            continue;
        }
        if !design_doc_text.contains(&p.file) {
            failures.push(format!(
                "{}:{}: allow(determinism) pragma has no exemption note naming `{}` in the \
                 design doc (add one under DESIGN.md §7.11)",
                p.file, p.line, p.file
            ));
        }
    }
    failures
}

/// Minimal JSON string escaping for the `--json` output (std-only crate —
/// no serde here).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exemption_check_requires_design_mention() {
        let pragma = Pragma {
            file: "crates/runtime/src/pool.rs".into(),
            line: 10,
            end_line: 10,
            rule: "determinism".into(),
            reason: "stats only".into(),
            used: true,
        };
        let ok = check_exemptions(
            std::slice::from_ref(&pragma),
            "exemptions: `crates/runtime/src/pool.rs` wall-clock stats",
        );
        assert!(ok.is_empty());
        let bad = check_exemptions(std::slice::from_ref(&pragma), "no mention here");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("pool.rs"));
    }

    #[test]
    fn exemption_check_ignores_other_rules_and_crates() {
        let mk = |file: &str, rule: &str| Pragma {
            file: file.into(),
            line: 1,
            end_line: 1,
            rule: rule.into(),
            reason: "r".into(),
            used: true,
        };
        let pragmas = vec![
            mk("crates/runtime/src/pool.rs", "panic-hygiene"),
            mk("crates/core/src/estep.rs", "determinism"),
        ];
        assert!(check_exemptions(&pragmas, "").is_empty());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
