//! Self-hosting check: dd-lint run over this workspace must agree exactly
//! with the checked-in `lint-baseline.txt` — no new violations, no stale
//! (silently shrunk) entries. This is the same comparison CI performs, so
//! a red test here means a red lint job there.

use std::path::Path;

use dd_lint::baseline;

#[test]
fn workspace_matches_checked_in_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = dd_lint::check_workspace(&root).expect("workspace scan");
    assert!(report.files > 50, "suspiciously few files scanned: {}", report.files);

    let baseline_path = root.join("lint-baseline.txt");
    let baselined = baseline::load(&baseline_path).expect("parse lint-baseline.txt");
    let drift = baseline::compare(&report.violations, &baselined);
    assert!(
        drift.is_empty(),
        "workspace drifted from lint-baseline.txt (run \
         `cargo run -p dd-lint -- --workspace --write-baseline` if intended):\n{drift:#?}"
    );
}

#[test]
fn panic_hygiene_and_float_eq_baselines_are_empty() {
    // The contract this PR establishes: zero tolerated debt for these two
    // rules. A baseline entry for either means the ratchet slipped.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let baselined =
        baseline::load(&root.join("lint-baseline.txt")).expect("parse lint-baseline.txt");
    for ((file, rule), count) in &baselined {
        assert!(
            rule != "panic-hygiene" && rule != "float-eq",
            "{file} carries {count} baselined {rule} violation(s); this debt was burned down \
             and must not return"
        );
    }
}

#[test]
fn workspace_lock_graph_is_acyclic() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = dd_lint::check_workspace(&root).expect("workspace scan");
    let cycles = dd_lint::lock_cycles(&report.edges);
    assert!(
        cycles.is_empty(),
        "lock-acquisition-order graph has cycles (potential deadlocks): {cycles:?}"
    );
    // Pin the two §7.15 ordering edges so a silent detection regression
    // (edges vanishing, graph trivially acyclic) also fails this test.
    for (from, to) in [("engine", "shard"), ("engine", "current")] {
        assert!(
            report.edges.iter().any(|e| e.from == from && e.to == to),
            "expected {from}→{to} edge missing from the workspace lock graph: {:?}",
            report.edges
        );
    }
}

#[test]
fn runtime_determinism_pragmas_have_design_exemptions() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = dd_lint::check_workspace(&root).expect("workspace scan");
    let design = std::fs::read_to_string(root.join("DESIGN.md")).expect("read DESIGN.md");
    let failures = dd_lint::check_exemptions(&report.pragmas, &design);
    assert!(failures.is_empty(), "unexempted determinism pragmas:\n{}", failures.join("\n"));
}
