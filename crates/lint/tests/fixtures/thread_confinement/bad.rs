//! Deliberate violations: spawns outside crates/runtime.

use std::thread;

/// Spawns directly instead of going through the dd-runtime substrate.
pub fn naive_parallel() -> u32 {
    let h = thread::spawn(|| 2 + 2);
    thread::scope(|s| {
        s.spawn(|| ());
    });
    h.join().unwrap_or(0)
}
