//! Look-alikes that must not fire — this rule applies even in test code,
//! so the traps are prose and strings, not `#[cfg(test)]`.

/// Explains that `thread::scope` is banned outside dd-runtime; a doc
/// comment mentioning `thread::spawn` is not a spawn.
pub fn helper() -> &'static str {
    "error: replace thread::spawn(f) with dd_runtime::spawn_named"
}

#[cfg(test)]
mod tests {
    // A string in test code is still just a string.
    const HINT: &str = "thread::scope";
}
