//! A correctly audited suppression.

/// Docs may describe the `// dd-lint: allow(<rule>) — <reason>` syntax
/// without being parsed as a pragma.
pub fn audited(a: f64) -> bool {
    // dd-lint: allow(float-eq) — sentinel comparison; -1.0 is never a score
    a == -1.0
}
