//! Deliberate pragma misuse: every audited-suppression failure mode.

// dd-lint: allow(determinism) — nothing below actually violates it
/// Valid pragma above, but nothing to suppress.
pub fn unused_suppression() {}

// dd-lint: allow(not-a-rule) — names a rule that does not exist
/// The pragma above names an unknown rule.
pub fn unknown_rule() {}

// dd-lint: allow(float-eq)
/// The pragma above has no reason, so it suppresses nothing.
pub fn missing_reason(a: f64) -> bool {
    a == 0.0
}

// dd-lint: allowed(float-eq) — wrong keyword, not the allow() form
/// The comment above is malformed.
pub fn malformed() {}
