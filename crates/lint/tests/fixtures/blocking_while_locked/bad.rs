//! Deliberate blocking-under-lock violations (never compiled): channel
//! waits, sleeps, and socket I/O all while a guard is live.

use std::io::Read;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Mutex;
use std::time::Duration;

fn recv_through_temporary(rx: &Mutex<Receiver<u32>>) -> Option<u32> {
    rx.lock().unwrap().recv().ok()
}

fn sleep_under_guard(counter: &Mutex<u64>) {
    let guard = counter.lock().unwrap();
    std::thread::sleep(Duration::from_millis(1));
    run(*guard as u32);
}

fn io_under_guard(log: &Mutex<Vec<u8>>, mut stream: std::net::TcpStream) {
    let guard = log.lock().unwrap();
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).ok();
    run(guard.len() as u32);
}

fn send_under_guard(tx: &Sender<u32>, state: &Mutex<u32>) {
    let guard = state.lock().unwrap();
    tx.send(*guard).ok();
}

fn run(_v: u32) {}
