//! Blocking-while-locked look-alikes that must not fire: condvar waits
//! (which release the lock by contract), drop-then-block, non-blocking
//! extraction, and the string / doc-comment / `#[cfg(test)]` traps.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Condvar, Mutex};

fn condvar_wait_releases(lock: &Mutex<usize>, cv: &Condvar) {
    let mut pending = lock.lock().unwrap();
    while *pending > 0 {
        pending = cv.wait(pending).unwrap();
    }
}

fn drop_then_block(tx: &Sender<u32>, state: &Mutex<u32>) {
    let guard = state.lock().unwrap();
    let value = *guard;
    drop(guard);
    tx.send(value).ok();
}

fn extract_then_block(rx: &Mutex<Receiver<u32>>, tx: &Sender<u32>) {
    let value = { rx.lock().unwrap().try_recv().ok() };
    if let Some(v) = value {
        tx.send(v).ok();
    }
}

fn stdout_is_not_a_mutex() {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    out.flush().ok();
}

/// Prose mentioning `rx.lock().unwrap().recv()` never fires from a doc
/// comment.
fn prose() {
    let text = "guard.lock().unwrap().recv() blocks the pool";
    run(text.len() as u32);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_in_tests_is_exempt() {
        let state = Mutex::new(0u32);
        let guard = state.lock().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(1));
        drop(guard);
    }
}

fn run(_v: u32) {}
