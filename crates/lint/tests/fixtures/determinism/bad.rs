//! Deliberate violations: wall clocks and randomized iteration order.

/// Reads wall clocks and iterates randomized collections.
pub fn unstable() -> usize {
    let started = std::time::Instant::now();
    let clock = std::time::SystemTime::now();
    let map = std::collections::HashMap::<u32, u32>::new();
    let set = std::collections::HashSet::<u32>::new();
    let _ = (clock, set.len());
    map.len() + started.elapsed().as_secs() as usize
}
