//! Sanctioned alternatives plus the three traps that must not fire:
//! a string literal, a doc comment, and a `#[cfg(test)]` module.

use std::collections::BTreeMap;

/// Explains why `SystemTime` and a bare `HashMap` are banned — doc
/// mentions of `Instant::now` are not clock reads.
pub fn stable() -> usize {
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    let hint = "HashMap, HashSet, and Instant::now() inside a string";
    m.len() + hint.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_is_fine_in_tests() {
        let t = std::time::Instant::now();
        let mut m = std::collections::HashMap::new();
        m.insert(1u32, t.elapsed().as_nanos());
        assert_eq!(m.len(), 1);
    }
}
