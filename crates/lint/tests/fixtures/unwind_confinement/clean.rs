//! `catch_unwind` in prose and strings only.

/// The serve worker loop uses `catch_unwind`; this crate must not.
pub fn doc_only() -> &'static str {
    "catch_unwind belongs in crates/serve and crates/runtime"
}
