//! Deliberate violations: panic capture outside the scheduling boundaries.

use std::panic::catch_unwind;

/// Captures a panic in library code instead of staying transparent.
pub fn swallow() -> bool {
    catch_unwind(|| ()).is_ok()
}
