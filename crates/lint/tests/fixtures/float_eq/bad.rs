//! Deliberate violations: exact comparison against float literals.

/// Compares floats against literals three different ways.
pub fn brittle(a: f64, b: f32) -> bool {
    let zeroish = a == 0.0;
    let negcheck = a == -1.0;
    let lhs = 0.5 != (b as f64);
    zeroish || negcheck || lhs
}
