//! Comparisons that must not fire.

/// Doc prose: `x == 0.0` is banned outside tests.
pub fn careful(a: f64, b: f64, n: usize) -> bool {
    let ints = n == 0;
    let vars = a == b;
    let range = (0.0..1.0).contains(&a);
    let hint = "a == 0.0 inside a string";
    ints || vars || range || hint.is_empty()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_values_are_fine_in_tests() {
        assert!(super::careful(0.0, 0.0, 0) || 1.0 == 1.0);
    }
}
