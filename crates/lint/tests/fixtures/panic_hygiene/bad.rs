//! Deliberate violations: panics on the request path.

/// Panics whenever its inputs are absent.
pub fn fragile(x: Option<u32>, y: Result<u32, String>) -> u32 {
    x.unwrap() + y.expect("must be set")
}
