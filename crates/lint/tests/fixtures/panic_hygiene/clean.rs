//! Panic-free handling plus the traps that must not fire.

/// Doc prose saying `.unwrap()` is banned is not a call.
pub fn sturdy(x: Option<u32>) -> u32 {
    let hint = ".unwrap() and .expect( inside a string";
    x.unwrap_or_else(|| hint.len() as u32)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(Some(3).unwrap(), 3);
        let r: Result<u32, ()> = Ok(1);
        assert_eq!(r.expect("test code may panic"), 1);
    }
}
