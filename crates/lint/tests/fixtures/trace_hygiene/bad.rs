//! Deliberate violations: raw clock reads that never reach the trace.

/// Times work into a local instead of a telemetry span.
pub fn untraced_timing() -> f64 {
    let start = std::time::Instant::now();
    expensive();
    let also = std::time::Instant::now();
    let _ = also;
    start.elapsed().as_secs_f64()
}

fn expensive() {}
