//! Look-alikes that must not fire: a string literal, a doc comment, a
//! `#[cfg(test)]` module, and a pragma-audited read.

/// Explains that `Instant::now` in prose is not a clock read.
pub fn documented() -> usize {
    let hint = "Instant::now() inside a string literal";
    hint.len()
}

/// An audited read: the pragma names the rule and carries a reason.
pub fn audited() -> f64 {
    // dd-lint: allow(trace-hygiene) — fixture: an audited clock read.
    let start = std::time::Instant::now();
    start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_is_fine_in_tests() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_secs() < 1);
    }
}
