//! Deliberate guard-scope violations (never compiled). The first shape is
//! the PR 3 pool-serialization bug verbatim: the `while let` scrutinee's
//! temporary guard lives across every iteration of the body.

use std::sync::Mutex;

fn pr3_shape(queue: &Mutex<Vec<u32>>) {
    while let Some(task) = queue.lock().unwrap().pop() {
        run(task);
    }
}

fn if_let_extraction(slots: &Mutex<Vec<u32>>) {
    if let Some(first) = slots.lock().unwrap().first().copied() {
        run(first);
    }
}

fn match_extraction(state: &Mutex<u32>) {
    match state.lock().unwrap().checked_add(1) {
        Some(v) => run(v),
        None => {}
    }
}

fn held_across_unrelated_loop(stats: &Mutex<u64>, items: &[u32]) -> u64 {
    let guard = stats.lock().unwrap();
    for item in items {
        run(*item);
    }
    *guard
}

fn run(_v: u32) {}
