//! Guard-scope look-alikes that must not fire: the PR 3 *fix* shapes
//! (brace-wrapped scrutinee, let-inside-loop), deliberate guard use, and
//! the string / doc-comment / `#[cfg(test)]` traps.

use std::sync::Mutex;

fn block_wrapped_scrutinee(queue: &Mutex<Vec<u32>>) {
    while let Some(task) = { queue.lock().unwrap().pop() } {
        run(task);
    }
}

fn let_inside_loop(queue: &Mutex<Vec<u32>>) {
    loop {
        let task = { queue.lock().unwrap().pop() };
        match task {
            Some(t) => run(t),
            None => break,
        }
    }
}

fn guard_used_in_loop(totals: &Mutex<Vec<u64>>) -> u64 {
    let guard = totals.lock().unwrap();
    let mut sum = 0;
    for value in guard.iter() {
        sum += *value;
    }
    sum
}

fn pattern_bound_guard(state: &Mutex<u32>) {
    if let Ok(guard) = state.lock() {
        run(*guard);
    }
}

fn dropped_before_loop(stats: &Mutex<u64>, items: &[u32]) {
    let guard = stats.lock().unwrap();
    run(*guard as u32);
    drop(guard);
    for item in items {
        run(*item);
    }
}

/// Prose describing `queue.lock().unwrap().pop()` inside a `while let`
/// scrutinee never fires from a doc comment.
fn prose() {
    let text = "while let Some(t) = q.lock().unwrap().pop() { serialize() }";
    run(text.len() as u32);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_shapes_are_exempt() {
        let queue = Mutex::new(vec![1u32]);
        while let Some(task) = queue.lock().unwrap().pop() {
            run(task);
        }
    }
}

fn run(_v: u32) {}
