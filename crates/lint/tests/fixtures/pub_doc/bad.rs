//! Deliberate violations: undocumented public API.

pub fn naked() {}

pub struct Bare {
    pub field: u32,
}

pub const LIMIT: usize = 8;
