//! Documented public API and items that are out of scope.

/// A documented function.
pub fn documented() {}

/// Documented even though an attribute sits between docs and item.
#[inline]
pub fn attributed() -> u32 {
    7
}

/// A documented struct; field docs are rustdoc's business, not this
/// rule's (fields sit inside braces).
pub struct Covered {
    pub field: u32,
}

pub(crate) fn internal_items_need_no_docs() {}

#[cfg(test)]
mod tests {
    pub fn helpers_in_test_modules_are_fine() {}
}
