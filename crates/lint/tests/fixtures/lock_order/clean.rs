//! Lock-order shapes that must not fire: nesting consistent with the
//! declared order, a guard-returning helper feeding the graph, and the
//! doc-comment / `#[cfg(test)]` traps.

// dd-lint: order(engine < shard) — cache shards nest inside the engine read lock

use std::sync::{Mutex, MutexGuard, RwLock};

fn consistent_nesting(engine: &RwLock<u32>, shard: &Mutex<Vec<u32>>) {
    let model = engine.read().unwrap();
    let cache = shard.lock().unwrap();
    run(*model + cache.len() as u32);
}

fn slot_guard(slot: &Mutex<u32>) -> MutexGuard<'_, u32> {
    slot.lock().unwrap()
}

fn helper_feeds_graph(engine: &RwLock<u32>, slot: &Mutex<u32>) {
    let model = engine.read().unwrap();
    let current = slot_guard(slot);
    run(*model + *current);
}

/// Prose mentioning `order(shard < engine)` in a doc comment declares
/// nothing.
fn prose() {
    let text = "order(shard < engine) would deadlock against score_cached";
    run(text.len() as u32);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversed_order_in_tests_is_exempt() {
        let shard = Mutex::new(vec![1u32]);
        let engine = RwLock::new(2u32);
        let cache = shard.lock().unwrap();
        let model = engine.read().unwrap();
        run(cache.len() as u32 + *model);
    }
}

fn run(_v: u32) {}
