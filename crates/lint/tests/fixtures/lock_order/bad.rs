//! Deliberate lock-order violations (never compiled). `pr9_shape` encodes
//! the PR 9 engine/cache bug: a declared `order(engine < shard)` contract
//! contradicted by a path that takes `shard` first. The second pair of
//! functions forms a two-lock cycle without any declaration.

// dd-lint: order(engine < shard) — cache shards nest inside the engine read lock

use std::sync::{Mutex, RwLock};

fn pr9_shape(shard: &Mutex<Vec<u32>>, engine: &RwLock<u32>) {
    let cache = shard.lock().unwrap();
    let model = engine.read().unwrap();
    run(cache.len() as u32 + *model);
}

fn cycle_left(alpha: &Mutex<u32>, beta: &Mutex<u32>) {
    let a = alpha.lock().unwrap();
    let b = beta.lock().unwrap();
    run(*a + *b);
}

fn cycle_right(alpha: &Mutex<u32>, beta: &Mutex<u32>) {
    let b = beta.lock().unwrap();
    let a = alpha.lock().unwrap();
    run(*a + *b);
}

fn run(_v: u32) {}
