//! Deliberate violations: slice reinterpretation outside the audited module.

/// Reinterprets a byte buffer as floats without the checked helpers.
pub fn cast(bytes: &[u8]) -> &[f32] {
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f32>(), bytes.len() / 4) }
}

/// Launders a slice through transmute.
pub fn launder(x: &[u8]) -> &[u8] {
    unsafe { std::mem::transmute(x) }
}
