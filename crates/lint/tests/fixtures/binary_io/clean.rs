//! `from_raw_parts` and `transmute` in prose, strings, and look-alikes only.

/// The audited casts live in `crates/linalg/src/bytes.rs`; a doc comment
/// mentioning `from_raw_parts` or `transmute` must never fire.
pub fn doc_only() -> &'static str {
    "from_raw_parts and transmute belong in dd-linalg's bytes module"
}

/// A look-alike identifier is not the primitive.
pub fn from_raw_parts_checked(n: usize) -> usize {
    n
}
