//! Fixture-driven rule coverage: every rule gets a violating fixture and a
//! clean fixture full of look-alike traps — an occurrence inside a string
//! literal, inside a doc comment, and inside a `#[cfg(test)]` module must
//! never fire.
//!
//! Fixtures live under `tests/fixtures/<rule>/`; the path each one is
//! checked *as* is synthetic, because every rule scopes by the reported
//! path, not the on-disk location.

use dd_lint::{check_file, FileReport};

/// `(line, rule)` pairs of unsuppressed violations, sorted.
fn hits(report: &FileReport) -> Vec<(u32, String)> {
    let mut v: Vec<(u32, String)> =
        report.violations.iter().map(|v| (v.line, v.rule.to_string())).collect();
    v.sort();
    v
}

fn assert_clean(report: &FileReport, context: &str) {
    assert!(
        report.violations.is_empty(),
        "{context}: expected no violations, got:\n{}",
        report.violations.iter().map(dd_lint::Violation::render).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn thread_confinement_fires_on_spawn_and_scope() {
    let report = check_file(
        "crates/graph/src/fixture.rs",
        include_str!("fixtures/thread_confinement/bad.rs"),
    );
    let expected =
        vec![(7, "thread-confinement".to_string()), (8, "thread-confinement".to_string())];
    assert_eq!(hits(&report), expected);
}

#[test]
fn thread_confinement_allows_runtime_and_ignores_prose() {
    // The very same spawning code is legal inside crates/runtime.
    let report = check_file(
        "crates/runtime/src/fixture.rs",
        include_str!("fixtures/thread_confinement/bad.rs"),
    );
    assert_clean(&report, "bad.rs checked as crates/runtime");
    // Strings and doc comments mentioning spawns never fire, and the rule
    // patrols test code too — the clean fixture proves the traps hold there.
    let report = check_file(
        "crates/graph/src/fixture.rs",
        include_str!("fixtures/thread_confinement/clean.rs"),
    );
    assert_clean(&report, "thread_confinement/clean.rs");
}

#[test]
fn binary_io_fires_outside_the_audited_module() {
    let report =
        check_file("crates/core/src/fixture.rs", include_str!("fixtures/binary_io/bad.rs"));
    let expected = vec![(5, "binary-io".to_string()), (10, "binary-io".to_string())];
    assert_eq!(hits(&report), expected);
    // The rule patrols test files too — byte-cast discipline is global.
    let report =
        check_file("crates/core/tests/fixture.rs", include_str!("fixtures/binary_io/bad.rs"));
    assert_eq!(hits(&report), expected);
}

#[test]
fn binary_io_allows_bytes_module_and_ignores_prose() {
    // The very same casts are legal inside the one audited module.
    let report =
        check_file("crates/linalg/src/bytes.rs", include_str!("fixtures/binary_io/bad.rs"));
    assert_clean(&report, "bad.rs checked as crates/linalg/src/bytes.rs");
    let report =
        check_file("crates/core/src/fixture.rs", include_str!("fixtures/binary_io/clean.rs"));
    assert_clean(&report, "binary_io/clean.rs");
}

#[test]
fn unwind_confinement_fires_outside_boundaries() {
    let report = check_file(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/unwind_confinement/bad.rs"),
    );
    let expected =
        vec![(3, "unwind-confinement".to_string()), (7, "unwind-confinement".to_string())];
    assert_eq!(hits(&report), expected);
}

#[test]
fn unwind_confinement_allows_serve_runtime_and_ignores_prose() {
    for path in ["crates/serve/src/fixture.rs", "crates/runtime/src/fixture.rs"] {
        let report = check_file(path, include_str!("fixtures/unwind_confinement/bad.rs"));
        assert_clean(&report, path);
    }
    let report = check_file(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/unwind_confinement/clean.rs"),
    );
    assert_clean(&report, "unwind_confinement/clean.rs");
}

#[test]
fn determinism_fires_on_clocks_and_bare_hash_collections() {
    let report =
        check_file("crates/core/src/fixture.rs", include_str!("fixtures/determinism/bad.rs"));
    let expected = vec![
        (5, "determinism".to_string()),
        (6, "determinism".to_string()),
        (7, "determinism".to_string()),
        (8, "determinism".to_string()),
    ];
    assert_eq!(hits(&report), expected);
}

#[test]
fn determinism_skips_non_result_crates_and_all_three_traps() {
    // dd-serve is not result-affecting: determinism stays silent there (the
    // fixture's raw clock read still answers to trace-hygiene, so filter).
    let report =
        check_file("crates/serve/src/fixture.rs", include_str!("fixtures/determinism/bad.rs"));
    assert!(
        report.violations.iter().all(|v| v.rule != "determinism"),
        "bad.rs checked as crates/serve should raise no determinism hits:\n{}",
        report.violations.iter().map(dd_lint::Violation::render).collect::<Vec<_>>().join("\n")
    );
    // String literal, doc comment, and #[cfg(test)] module must not fire.
    let report =
        check_file("crates/core/src/fixture.rs", include_str!("fixtures/determinism/clean.rs"));
    assert_clean(&report, "determinism/clean.rs");
}

#[test]
fn trace_hygiene_fires_on_raw_clock_reads() {
    let report =
        check_file("crates/serve/src/fixture.rs", include_str!("fixtures/trace_hygiene/bad.rs"));
    let expected = vec![(5, "trace-hygiene".to_string()), (7, "trace-hygiene".to_string())];
    assert_eq!(hits(&report), expected);
}

#[test]
fn trace_hygiene_exempts_telemetry_and_result_crates_and_traps() {
    // crates/telemetry owns the clocks: the same code is legal there.
    let report = check_file(
        "crates/telemetry/src/fixture.rs",
        include_str!("fixtures/trace_hygiene/bad.rs"),
    );
    assert_clean(&report, "bad.rs checked as crates/telemetry");
    // Result-affecting crates answer to the stricter `determinism` rule
    // instead — trace-hygiene must not double-report the same line.
    let report =
        check_file("crates/core/src/fixture.rs", include_str!("fixtures/trace_hygiene/bad.rs"));
    assert!(
        report.violations.iter().all(|v| v.rule == "determinism"),
        "bad.rs checked as crates/core should only raise determinism hits:\n{}",
        report.violations.iter().map(dd_lint::Violation::render).collect::<Vec<_>>().join("\n")
    );
    // String literal, doc comment, #[cfg(test)] module, and an audited
    // pragma must not fire.
    let report =
        check_file("crates/serve/src/fixture.rs", include_str!("fixtures/trace_hygiene/clean.rs"));
    assert_clean(&report, "trace_hygiene/clean.rs");
}

#[test]
fn panic_hygiene_fires_on_unwrap_and_expect() {
    let report =
        check_file("crates/serve/src/fixture.rs", include_str!("fixtures/panic_hygiene/bad.rs"));
    let expected = vec![(5, "panic-hygiene".to_string()), (5, "panic-hygiene".to_string())];
    assert_eq!(hits(&report), expected);
}

#[test]
fn panic_hygiene_skips_other_crates_and_all_three_traps() {
    // Outside the patrolled crates the same code is legal.
    let report =
        check_file("crates/eval/src/fixture.rs", include_str!("fixtures/panic_hygiene/bad.rs"));
    assert_clean(&report, "bad.rs checked as crates/eval");
    // String literal, doc comment, and #[cfg(test)] module must not fire.
    let report = check_file(
        "crates/runtime/src/fixture.rs",
        include_str!("fixtures/panic_hygiene/clean.rs"),
    );
    assert_clean(&report, "panic_hygiene/clean.rs");
}

#[test]
fn float_eq_fires_on_literal_comparisons() {
    let report =
        check_file("crates/graph/src/fixture.rs", include_str!("fixtures/float_eq/bad.rs"));
    let expected =
        vec![(5, "float-eq".to_string()), (6, "float-eq".to_string()), (7, "float-eq".to_string())];
    assert_eq!(hits(&report), expected);
}

#[test]
fn float_eq_ignores_ints_ranges_vars_and_all_three_traps() {
    let report =
        check_file("crates/graph/src/fixture.rs", include_str!("fixtures/float_eq/clean.rs"));
    assert_clean(&report, "float_eq/clean.rs");
}

#[test]
fn pub_doc_fires_on_undocumented_top_level_items() {
    let report = check_file("crates/core/src/fixture.rs", include_str!("fixtures/pub_doc/bad.rs"));
    let expected =
        vec![(3, "pub-doc".to_string()), (5, "pub-doc".to_string()), (9, "pub-doc".to_string())];
    assert_eq!(hits(&report), expected);
}

#[test]
fn pub_doc_accepts_docs_and_skips_non_api_items() {
    let report =
        check_file("crates/core/src/fixture.rs", include_str!("fixtures/pub_doc/clean.rs"));
    assert_clean(&report, "pub_doc/clean.rs");
    // Crates outside the doc-required list are exempt entirely.
    let report = check_file("crates/serve/src/fixture.rs", include_str!("fixtures/pub_doc/bad.rs"));
    assert_clean(&report, "bad.rs checked as crates/serve");
}

#[test]
fn guard_scope_fires_on_scrutinee_temps_and_loop_holds() {
    let report =
        check_file("crates/cli/src/fixture.rs", include_str!("fixtures/guard_scope/bad.rs"));
    let expected = vec![
        (8, "guard-scope".to_string()), // PR 3 shape: while-let scrutinee temp
        (14, "guard-scope".to_string()), // if-let scrutinee temp
        (20, "guard-scope".to_string()), // match scrutinee temp
        (28, "guard-scope".to_string()), // bound guard held across unrelated loop
    ];
    assert_eq!(hits(&report), expected);
}

#[test]
fn guard_scope_allows_fixed_shapes_and_all_three_traps() {
    let report =
        check_file("crates/cli/src/fixture.rs", include_str!("fixtures/guard_scope/clean.rs"));
    assert_clean(&report, "guard_scope/clean.rs");
}

#[test]
fn blocking_while_locked_fires_under_live_guards() {
    let report = check_file(
        "crates/cli/src/fixture.rs",
        include_str!("fixtures/blocking_while_locked/bad.rs"),
    );
    let expected = vec![
        (10, "blocking-while-locked".to_string()), // recv through a temporary guard
        (15, "blocking-while-locked".to_string()), // sleep under a bound guard
        (22, "blocking-while-locked".to_string()), // socket read under a bound guard
        (28, "blocking-while-locked".to_string()), // channel send under a bound guard
    ];
    assert_eq!(hits(&report), expected);
}

#[test]
fn blocking_while_locked_exempts_condvar_drop_and_traps() {
    let report = check_file(
        "crates/cli/src/fixture.rs",
        include_str!("fixtures/blocking_while_locked/clean.rs"),
    );
    assert_clean(&report, "blocking_while_locked/clean.rs");
}

#[test]
fn lock_order_fires_on_contradictions_and_cycles() {
    let report =
        check_file("crates/cli/src/fixture.rs", include_str!("fixtures/lock_order/bad.rs"));
    let expected = vec![
        (12, "lock-order".to_string()), // PR 9 shape: shard-then-engine against order(engine < shard)
        (18, "lock-order".to_string()), // alpha/beta cycle, reported at its first edge
    ];
    assert_eq!(hits(&report), expected);
    // The acquisition-order graph itself is part of the report.
    assert!(
        report.edges.iter().any(|e| e.from == "shard" && e.to == "engine"),
        "shard→engine edge missing from {:?}",
        report.edges
    );
}

#[test]
fn lock_order_allows_consistent_nesting_helpers_and_traps() {
    let report =
        check_file("crates/cli/src/fixture.rs", include_str!("fixtures/lock_order/clean.rs"));
    assert_clean(&report, "lock_order/clean.rs");
    // The guard-returning helper must feed the graph: engine→slot.
    assert!(
        report.edges.iter().any(|e| e.from == "engine" && e.to == "slot"),
        "helper-produced engine→slot edge missing from {:?}",
        report.edges
    );
}

#[test]
fn pragma_misuse_is_itself_a_violation() {
    let report = check_file("crates/graph/src/fixture.rs", include_str!("fixtures/pragma/bad.rs"));
    let expected = vec![
        (3, "pragma".to_string()),    // valid but unused
        (7, "pragma".to_string()),    // unknown rule name
        (11, "pragma".to_string()),   // missing reason
        (14, "float-eq".to_string()), // the reasonless pragma suppresses nothing
        (17, "pragma".to_string()),   // malformed keyword
    ];
    assert_eq!(hits(&report), expected);
}

#[test]
fn pragma_with_reason_suppresses_and_records_audit_trail() {
    let report =
        check_file("crates/graph/src/fixture.rs", include_str!("fixtures/pragma/clean.rs"));
    assert_clean(&report, "pragma/clean.rs");
    assert_eq!(report.pragmas.len(), 1, "doc-comment mention must not parse as a pragma");
    let p = &report.pragmas[0];
    assert_eq!(p.rule, "float-eq");
    assert!(p.used, "the suppressing pragma must be marked used");
    assert!(p.reason.contains("sentinel"));
}
