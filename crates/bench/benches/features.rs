//! Handcrafted-feature extraction cost (Sec. 3.1): per-node statistics,
//! per-tie feature assembly, and the triad census.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dd_baselines::hf::{tie_features, HfConfig, NodeStats};
use dd_graph::generators::{social_network, SocialNetConfig};
use dd_graph::triads::triad_counts;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn feature_benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let g =
        social_network(&SocialNetConfig { n_nodes: 800, ..Default::default() }, &mut rng).network;
    let cfg = HfConfig::default();

    c.bench_function("node_stats_800_nodes_sampled64", |b| b.iter(|| NodeStats::compute(&g, &cfg)));

    let stats = NodeStats::compute(&g, &cfg);
    let ties: Vec<_> = g.iter_ties().map(|(_, t)| (t.src, t.dst)).collect();
    let mut group = c.benchmark_group("per_tie");
    group.throughput(Throughput::Elements(ties.len() as u64));
    group.bench_function("tie_features_all", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for &(u, v) in &ties {
                acc += tie_features(&g, &stats, u, v)[0];
            }
            acc
        })
    });
    group.bench_function("triad_census_all", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &(u, v) in &ties {
                acc += triad_counts(&g, u, v)[0];
            }
            acc
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = feature_benches
}
criterion_main!(benches);
