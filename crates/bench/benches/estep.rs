//! E-Step throughput: per-iteration cost as a function of `l` and `λ`,
//! validating the `O(λ · l)` per-iteration analysis of Sec. 4.6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dd_graph::generators::{social_network, SocialNetConfig};
use dd_graph::sampling::hide_directions;
use dd_linalg::rng::Pcg32;
use deepdirect::{estep, DeepDirectConfig, TieUniverse};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_universe() -> TieUniverse {
    let mut rng = StdRng::seed_from_u64(1);
    let g =
        social_network(&SocialNetConfig { n_nodes: 500, ..Default::default() }, &mut rng).network;
    let hidden = hide_directions(&g, 0.5, &mut rng).network;
    let mut prng = Pcg32::seed_from_u64(1);
    TieUniverse::build(&hidden, 10, &mut prng)
}

fn estep_iterations(c: &mut Criterion) {
    let universe = bench_universe();
    const ITERS: u64 = 50_000;

    let mut group = c.benchmark_group("estep_dim");
    for dim in [16usize, 32, 64, 128] {
        group.throughput(Throughput::Elements(ITERS));
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, &dim| {
            let cfg = DeepDirectConfig {
                dim,
                max_iterations: Some(ITERS),
                ..DeepDirectConfig::default()
            };
            b.iter(|| estep::train(&universe, &cfg));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("estep_negatives");
    for lambda in [1usize, 3, 5, 10] {
        group.throughput(Throughput::Elements(ITERS));
        group.bench_with_input(BenchmarkId::from_parameter(lambda), &lambda, |b, &lambda| {
            let cfg = DeepDirectConfig {
                dim: 64,
                negatives: lambda,
                max_iterations: Some(ITERS),
                ..DeepDirectConfig::default()
            };
            b.iter(|| estep::train(&universe, &cfg));
        });
    }
    group.finish();
}

fn universe_build(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let g =
        social_network(&SocialNetConfig { n_nodes: 1000, ..Default::default() }, &mut rng).network;
    let hidden = hide_directions(&g, 0.5, &mut rng).network;
    c.bench_function("universe_build_1k_nodes", |b| {
        b.iter(|| {
            let mut prng = Pcg32::seed_from_u64(3);
            TieUniverse::build(&hidden, 10, &mut prng)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = estep_iterations, universe_build
}
criterion_main!(benches);
