//! Graph-primitive costs: network construction, BFS, alias sampling, and
//! connected-tie sampling — the operations dominating the E-Step's setup
//! and inner loop.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dd_graph::generators::{social_network, SocialNetConfig};
use dd_graph::ties::all_tie_degrees;
use dd_graph::traversal::bfs_distances;
use dd_graph::NodeId;
use dd_linalg::alias::AliasTable;
use dd_linalg::rng::Pcg32;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn graph_benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let cfg = SocialNetConfig { n_nodes: 2000, ..Default::default() };

    c.bench_function("generate_2k_node_network", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(2);
            social_network(&cfg, &mut r)
        })
    });

    let g = social_network(&cfg, &mut rng).network;

    c.bench_function("bfs_distances_2k", |b| b.iter(|| bfs_distances(&g, NodeId(0))));

    c.bench_function("all_tie_degrees_2k", |b| b.iter(|| all_tie_degrees(&g)));

    let weights: Vec<f64> = all_tie_degrees(&g).iter().map(|&d| d as f64).collect();
    c.bench_function("alias_table_build", |b| b.iter(|| AliasTable::new(&weights)));

    let table = AliasTable::new(&weights);
    let mut group = c.benchmark_group("sampling");
    const DRAWS: u64 = 100_000;
    group.throughput(Throughput::Elements(DRAWS));
    group.bench_function("alias_draws", |b| {
        b.iter(|| {
            let mut prng = Pcg32::seed_from_u64(3);
            let mut acc = 0usize;
            for _ in 0..DRAWS {
                acc ^= table.sample(&mut prng);
            }
            acc
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = graph_benches
}
criterion_main!(benches);
