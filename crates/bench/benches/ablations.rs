//! Cost-side ablations supporting the design arguments of Sec. 4:
//!
//! * the line-graph blow-up (`|V_L| = |E|`, `|E_L| = Σ d_in·d_out`) that
//!   makes "node-embed the line graph" unattractive, vs the direct
//!   connected-tie sampling DeepDirect uses;
//! * Hogwild parallel E-Step vs sequential (the scalability extension).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dd_graph::generators::{social_network, SocialNetConfig};
use dd_graph::linegraph::LineGraph;
use dd_graph::sampling::hide_directions;
use dd_linalg::rng::Pcg32;
use deepdirect::{estep, DeepDirectConfig, TieUniverse};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn line_graph_blowup(c: &mut Criterion) {
    let mut group = c.benchmark_group("line_graph_build");
    for n in [500usize, 1000, 2000] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g =
            social_network(&SocialNetConfig { n_nodes: n, ..Default::default() }, &mut rng).network;
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| LineGraph::new(g, false))
        });
        let lg = LineGraph::new(&g, false);
        let stats = lg.stats(&g);
        eprintln!(
            "line graph at n={n}: {} tie-nodes, {} edges (expansion {:.1}x)",
            stats.orig_ties, stats.line_edges, stats.expansion
        );
    }
    group.finish();
}

fn hogwild_speedup(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let g =
        social_network(&SocialNetConfig { n_nodes: 600, ..Default::default() }, &mut rng).network;
    let hidden = hide_directions(&g, 0.5, &mut rng).network;
    let mut prng = Pcg32::seed_from_u64(9);
    let universe = TieUniverse::build(&hidden, 10, &mut prng);
    let mut group = c.benchmark_group("estep_threads");
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            let cfg = DeepDirectConfig {
                dim: 64,
                threads,
                max_iterations: Some(200_000),
                ..DeepDirectConfig::default()
            };
            b.iter(|| estep::train(&universe, &cfg));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = line_graph_blowup, hogwild_speedup
}
criterion_main!(benches);
