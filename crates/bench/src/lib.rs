//! # dd-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (Sec. 6):
//!
//! | target | regenerates |
//! |---|---|
//! | `table2_datasets` | Table 2 — dataset statistics |
//! | `fig3_direction_discovery` | Fig. 3 — accuracy of all five methods |
//! | `fig4_label_effect` | Fig. 4 — effect of `α` (labeled data) |
//! | `fig5_pattern_effect` | Fig. 5 — effect of `β` (patterns) |
//! | `fig6a_dimensions` | Fig. 6(a) — sensitivity to `l` |
//! | `fig6b_negatives` | Fig. 6(b) — sensitivity to `λ` |
//! | `fig7_visualization` | Fig. 7 — t-SNE of DeepDirect vs LINE |
//! | `fig8_link_prediction` | Fig. 8 — link-prediction AUC |
//! | `fig9_scalability` | Fig. 9 — runtime vs `\|E\|` |
//! | `ablation_study` | extra — design-choice ablations (DESIGN.md §5) |
//!
//! Environment knobs shared by every binary:
//!
//! * `DD_SCALE` — dataset scale divisor (default 150; `1` = paper scale),
//! * `DD_SEED` — base RNG seed (default 7),
//! * `DD_SEEDS` — number of seeds to average (default 1),
//! * `DD_OUT` — results directory (default `results/`).
//!
//! Criterion micro-benchmarks (`cargo bench -p dd-bench`) cover the
//! performance claims: E-Step iteration cost vs `l` and `λ` (the `O(λ·l)`
//! per-iteration analysis of Sec. 4.6), feature extraction, graph
//! primitives, and the line-graph blow-up of Sec. 4.

use dd_datasets::DatasetSpec;
use dd_eval::runner::Method;
use dd_graph::sampling::{hide_directions, HiddenDirections};
use dd_telemetry::{JsonlSink, ObserverHandle};
use deepdirect::DeepDirectConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Shared experiment environment read from `DD_*` variables.
#[derive(Debug, Clone)]
pub struct BenchEnv {
    /// Dataset scale divisor.
    pub scale: usize,
    /// Base seed.
    pub seed: u64,
    /// Seeds averaged per measurement.
    pub n_seeds: u64,
    /// Output directory for JSONL rows and CSVs.
    pub out_dir: String,
}

impl BenchEnv {
    /// Reads the environment (with defaults).
    pub fn from_env() -> Self {
        let get = |k: &str| std::env::var(k).ok();
        BenchEnv {
            scale: get("DD_SCALE").and_then(|v| v.parse().ok()).unwrap_or(150),
            seed: get("DD_SEED").and_then(|v| v.parse().ok()).unwrap_or(7),
            n_seeds: get("DD_SEEDS").and_then(|v| v.parse().ok()).unwrap_or(1),
            out_dir: get("DD_OUT").unwrap_or_else(|| "results".to_string()),
        }
    }

    /// Output path inside the results directory.
    pub fn out_path(&self, file: &str) -> String {
        format!("{}/{}", self.out_dir, file)
    }

    /// Telemetry handle shared by the figure binaries: appends
    /// schema-versioned events to `<out_dir>/telemetry.jsonl`, so every
    /// binary (and `run_all` driving them as subprocesses) contributes to
    /// one unified event log. Returns a disabled handle if the sink cannot
    /// be opened (e.g. a read-only results directory).
    pub fn observer(&self) -> ObserverHandle {
        match JsonlSink::append(self.out_path("telemetry.jsonl")) {
            Ok(sink) => ObserverHandle::new(Arc::new(sink)),
            Err(e) => {
                eprintln!("telemetry disabled: {e}");
                ObserverHandle::none()
            }
        }
    }

    /// Hidden-direction split of a dataset at this environment's scale.
    pub fn hidden_split(
        &self,
        spec: &DatasetSpec,
        keep_directed: f64,
        seed: u64,
    ) -> HiddenDirections {
        self.hidden_split_observed(spec, keep_directed, seed, &ObserverHandle::none())
    }

    /// [`BenchEnv::hidden_split`] with the dataset generation timed under a
    /// `dataset.generate.<name>` span.
    pub fn hidden_split_observed(
        &self,
        spec: &DatasetSpec,
        keep_directed: f64,
        seed: u64,
        obs: &ObserverHandle,
    ) -> HiddenDirections {
        let (g, _) = obs.time(&format!("dataset.generate.{}", spec.name), || {
            spec.generate(self.scale, seed).network
        });
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5011d);
        hide_directions(&g, keep_directed, &mut rng)
    }
}

/// DeepDirect configuration used across the figure binaries: paper
/// hyper-parameters with a wall-clock-bounding iteration cap and Hogwild
/// parallelism (the cap only binds on the densest datasets; `DD_SCALE=1`
/// users should raise it).
pub fn bench_deepdirect_config(dim: usize, seed: u64) -> DeepDirectConfig {
    DeepDirectConfig {
        dim,
        seed,
        max_iterations: Some(4_000_000),
        threads: num_threads(),
        ..Default::default()
    }
}

/// The five-method suite at bench-friendly sizes.
pub fn bench_suite(seed: u64) -> Vec<Method> {
    use dd_baselines::{HfConfig, LineConfig, RedirectNConfig, RedirectTConfig};
    vec![
        Method::DeepDirect(bench_deepdirect_config(64, seed)),
        Method::Hf(HfConfig::default()),
        Method::Line(LineConfig {
            dim: 32,
            seed,
            max_iterations: Some(2_000_000),
            ..Default::default()
        }),
        Method::RedirectN(RedirectNConfig { seed, ..Default::default() }),
        Method::RedirectT(RedirectTConfig::default()),
    ]
}

/// Worker threads for Hogwild E-Steps: physical parallelism minus one,
/// clamped to `[1, 8]`.
pub fn num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).saturating_sub(1).clamp(1, 8)
}

/// Writes a simple CSV file (creating parent directories).
pub fn write_csv(path: &str, header: &str, rows: &[String]) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut out = String::with_capacity(rows.len() * 32 + header.len() + 1);
    out.push_str(header);
    out.push('\n');
    for r in rows {
        out.push_str(r);
        out.push('\n');
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_datasets::twitter;

    #[test]
    fn env_defaults() {
        let env = BenchEnv::from_env();
        assert!(env.scale >= 1);
        assert!(env.n_seeds >= 1);
        assert!(env.out_path("x.csv").ends_with("/x.csv"));
    }

    #[test]
    fn hidden_split_respects_keep() {
        let env = BenchEnv { scale: 400, seed: 1, n_seeds: 1, out_dir: "/tmp".into() };
        let h = env.hidden_split(&twitter(), 0.3, 1);
        let d = h.network.counts().directed as f64;
        let u = h.network.counts().undirected as f64;
        let frac = d / (d + u);
        assert!((frac - 0.3).abs() < 0.05, "kept fraction {frac}");
    }

    #[test]
    fn observer_appends_to_unified_log() {
        let dir = std::env::temp_dir().join("dd_bench_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out_dir = dir.to_string_lossy().to_string();
        let path = format!("{out_dir}/telemetry.jsonl");
        std::fs::remove_file(&path).ok();
        let env = BenchEnv { scale: 400, seed: 1, n_seeds: 1, out_dir };
        {
            let obs = env.observer();
            assert!(obs.is_enabled());
            let h = env.hidden_split_observed(&twitter(), 0.5, 1, &obs);
            assert!(h.network.n_nodes() > 0);
            obs.flush();
        }
        {
            // A second handle (another figure binary) appends to the same log.
            let obs = env.observer();
            obs.on_span("phase.two", None, 0.1);
            obs.flush();
        }
        let events = dd_telemetry::read_jsonl(&path).unwrap();
        let names: Vec<_> = events.iter().filter_map(|e| e.name.as_deref()).collect();
        assert!(names.contains(&"dataset.generate.Twitter"), "names: {names:?}");
        assert!(names.contains(&"phase.two"), "append must unify streams");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn suite_and_config_are_sane() {
        let suite = bench_suite(1);
        assert_eq!(suite.len(), 5);
        let cfg = bench_deepdirect_config(64, 1);
        assert!(cfg.validate().is_ok());
        assert!(num_threads() >= 1);
    }
}
