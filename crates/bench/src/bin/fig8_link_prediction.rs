//! Regenerates **Fig. 8** — AUC of Jaccard link prediction on the three
//! bidirectional-heavy datasets, comparing the raw adjacency matrix against
//! directionality adjacency matrices built by each method.
//!
//! ```text
//! cargo run --release -p dd-bench --bin fig8_link_prediction
//! ```
//!
//! Expected shape (paper): every directionality matrix beats the raw
//! adjacency, and DeepDirect's matrix is best.

use dd_bench::{bench_suite, BenchEnv};
use dd_datasets::bidirectional_heavy_datasets;
use dd_eval::linkpred::build_instance;
use dd_eval::runner::{ExperimentRow, ResultSink};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let env = BenchEnv::from_env();
    let mut sink = ResultSink::new();
    for spec in bidirectional_heavy_datasets() {
        for s in 0..env.n_seeds {
            let seed = env.seed + s;
            let g = spec.generate(env.scale, seed).network;
            let mut rng = StdRng::seed_from_u64(seed ^ 0xf18);
            let inst = build_instance(&g, 0.8, 200_000, &mut rng);
            println!(
                "{}: {} candidates, positive rate {:.3}",
                spec.name,
                inst.candidates.len(),
                inst.positive_rate()
            );
            let mut push = |method: &str, auc: f64| {
                sink.push(ExperimentRow {
                    experiment: "fig8".into(),
                    dataset: spec.name.into(),
                    method: method.into(),
                    x_name: "keep_frac".into(),
                    x: 0.8,
                    value: auc,
                    seed,
                });
            };
            push("RawAdjacency", inst.auc_unweighted());
            for method in bench_suite(seed) {
                // The directionality function is learned on the training
                // network G' (its directed ties are the labels).
                let scorer = method.fit(&inst.train);
                let auc = inst.auc_quantified(|u, v| scorer.score(u, v));
                push(method.name(), auc);
            }
        }
    }
    println!("\n{}", sink.pivot_table("fig8", 0.8));
    sink.write_jsonl(&env.out_path("fig8.jsonl")).expect("write fig8.jsonl");
    println!("wrote {}", env.out_path("fig8.jsonl"));
}
