//! Regenerates **Table 2** — dataset statistics.
//!
//! ```text
//! cargo run --release -p dd-bench --bin table2_datasets
//! ```
//!
//! `DD_SCALE=1` reproduces the paper's node counts (needs a few GB of RAM
//! and a few minutes); the default scale keeps the table proportional.

use dd_bench::BenchEnv;
use dd_datasets::{all_datasets, DatasetStats};

fn main() {
    let env = BenchEnv::from_env();
    println!("Table 2: data sets (scale divisor {})", env.scale);
    println!(
        "{:<12} {:>8} {:>10}   {:>7} {:>7} {:>11}",
        "Data sets", "Nodes", "Ties", "dir", "bidir", "reciprocity"
    );
    let mut rows = Vec::new();
    for spec in all_datasets() {
        let g = spec.generate(env.scale, env.seed);
        let s = DatasetStats::compute(spec.name, &g.network);
        println!(
            "{:<12} {:>8} {:>10}   {:>7} {:>7} {:>10.1}%",
            s.name,
            s.nodes,
            s.ties,
            s.directed,
            s.bidirectional,
            100.0 * s.reciprocity
        );
        rows.push(serde_json::to_string(&s).expect("stats serialize"));
    }
    let path = env.out_path("table2.jsonl");
    if let Some(parent) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&path, rows.join("\n") + "\n").expect("write table2.jsonl");
    println!("\nwrote {path}");
}
