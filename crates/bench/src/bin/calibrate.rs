//! Generator calibration helper (development tool, not a paper figure):
//! sweeps generator signal mixes and reports per-method accuracy so the
//! dataset specs can be tuned to exhibit the paper's method ordering.
//!
//! ```text
//! cargo run --release -p dd-bench --bin calibrate -- <w_degree> <w_community> <noise> <keep>
//! ```

use dd_bench::bench_suite;
use dd_eval::runner::direction_discovery_accuracy;
use dd_graph::generators::{social_network, SocialNetConfig};
use dd_graph::sampling::hide_directions;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let arg = |i: usize, d: f64| std::env::args().nth(i).and_then(|s| s.parse().ok()).unwrap_or(d);
    let w_degree = arg(1, 0.3);
    let w_community = arg(2, 2.0);
    let status_noise = arg(3, 0.35);
    let keep = arg(4, 0.3);
    let n_nodes = arg(5, 600.0) as usize;
    println!("w_deg={w_degree} w_comm={w_community} noise={status_noise} keep={keep} n={n_nodes}");
    let mut sums: Vec<(String, f64)> = Vec::new();
    for seed in [7u64, 8, 9] {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg =
            SocialNetConfig { n_nodes, w_degree, w_community, status_noise, ..Default::default() };
        let g = social_network(&cfg, &mut rng).network;
        let hidden = hide_directions(&g, keep, &mut rng);
        let mut suite = bench_suite(seed);
        if let dd_eval::runner::Method::DeepDirect(ref mut c) = suite[0] {
            let getf =
                |k: &str, d: f32| std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d);
            c.dim = getf("DD_DIM", 64.0) as usize;
            c.lr = getf("DD_LR", c.lr);
            c.tau = getf("DD_TAU", c.tau as f32) as f64;
            c.beta = getf("DD_BETA", c.beta);
            c.alpha = getf("DD_ALPHA", c.alpha);
            c.dstep_epochs = getf("DD_DE", c.dstep_epochs as f32) as usize;
            c.dstep_l2 = getf("DD_DL2", c.dstep_l2);
            c.max_iterations = Some(getf("DD_MAXIT", 4_000_000.0) as u64);
            c.context_features = std::env::var("DD_CTX").is_ok();
        }
        for method in suite {
            let acc = direction_discovery_accuracy(&method, &hidden);
            match sums.iter_mut().find(|(n, _)| n == method.name()) {
                Some((_, s)) => *s += acc,
                None => sums.push((method.name().to_string(), acc)),
            }
        }
    }
    println!("\nmean accuracy over 3 seeds:");
    for (name, sum) in &sums {
        println!("  {name:<16} {:.3}", sum / 3.0);
    }
}
