//! The α/β grid search with validation of Sec. 6.1 ("we use the grid
//! search with cross-validation to determine the optimal values").
//!
//! ```text
//! cargo run --release -p dd-bench --bin grid_search [-- <dataset>]
//! ```
//!
//! Prints the validation-accuracy grid and the winning `(α, β)` per
//! dataset.

use dd_bench::{bench_deepdirect_config, BenchEnv};
use dd_datasets::all_datasets;
use dd_eval::grid::grid_search_alpha_beta;
use dd_runtime::Threads;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let env = BenchEnv::from_env();
    // Grid cells fan out over DD_THREADS workers (serial by default); each
    // cell's fit stays single-threaded so the table is reproducible.
    let threads = Threads::resolve(None).expect("DD_THREADS must be a positive integer");
    let filter = std::env::args().nth(1).map(|s| s.to_lowercase());
    let alphas = [0.0f32, 0.1, 1.0, 5.0];
    let betas = [0.0f32, 0.1, 1.0];
    for spec in all_datasets() {
        if let Some(f) = &filter {
            if spec.name.to_lowercase() != *f {
                continue;
            }
        }
        let g = spec.generate(env.scale, env.seed).network;
        let base = bench_deepdirect_config(64, env.seed);
        let mut rng = StdRng::seed_from_u64(env.seed ^ 0x9d1d);
        let (alpha, beta, table) =
            grid_search_alpha_beta(&g, &alphas, &betas, &base, 0.5, 2, threads, &mut rng);
        println!("\n{} — validation accuracy (2 folds, 50% hidden):", spec.name);
        print!("{:>8}", "α \\ β");
        for b in &betas {
            print!("{b:>10}");
        }
        println!();
        for a in &alphas {
            print!("{a:>8}");
            for b in &betas {
                let acc = table
                    .iter()
                    .find(|p| p.alpha == *a && p.beta == *b)
                    .map(|p| p.accuracy)
                    .unwrap_or(f64::NAN);
                print!("{acc:>10.4}");
            }
            println!();
        }
        println!("winner: α = {alpha}, β = {beta}");
    }
}
