//! Runs the complete evaluation suite — every table and figure binary —
//! in sequence, in this process (no subprocess spawning, so one build
//! serves all). Equivalent to invoking each `--bin` target by hand.
//!
//! ```text
//! DD_SCALE=250 cargo run --release -p dd-bench --bin run_all
//! ```
//!
//! Expect roughly an hour at the default scale on a 2-core machine;
//! increase `DD_SCALE` to shrink the datasets further.

use std::process::Command;
use std::time::Instant;

const TARGETS: &[&str] = &[
    "table2_datasets",
    "fig3_direction_discovery",
    "fig4_label_effect",
    "fig5_pattern_effect",
    "fig6a_dimensions",
    "fig6b_negatives",
    "fig7_visualization",
    "fig8_link_prediction",
    "fig9_scalability",
    "ablation_study",
    "calibration_report",
];

fn main() {
    // Each figure binary lives next to this one in the target directory;
    // invoke the sibling executables so each runs with its own stdout
    // header and the shared DD_* environment.
    let self_path = std::env::current_exe().expect("own path");
    let dir = self_path.parent().expect("target dir").to_path_buf();
    let started = Instant::now();
    let mut failures = Vec::new();
    for target in TARGETS {
        let exe = dir.join(target);
        if !exe.exists() {
            eprintln!(
                "skipping {target}: {} not built (run `cargo build --release -p dd-bench --bins`)",
                exe.display()
            );
            failures.push(*target);
            continue;
        }
        println!("\n================ {target} ================");
        let t = Instant::now();
        let status = Command::new(&exe).status().expect("spawn figure binary");
        println!("[{target}: {:.1}s, {status}]", t.elapsed().as_secs_f64());
        if !status.success() {
            failures.push(*target);
        }
    }
    println!(
        "\ncompleted {}/{} targets in {:.1}s",
        TARGETS.len() - failures.len(),
        TARGETS.len(),
        started.elapsed().as_secs_f64()
    );
    if !failures.is_empty() {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
