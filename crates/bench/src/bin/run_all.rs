//! Runs the complete evaluation suite — every table and figure binary —
//! in sequence, in this process (no subprocess spawning, so one build
//! serves all). Equivalent to invoking each `--bin` target by hand.
//!
//! ```text
//! DD_SCALE=250 cargo run --release -p dd-bench --bin run_all
//! ```
//!
//! Expect roughly an hour at the default scale on a 2-core machine;
//! increase `DD_SCALE` to shrink the datasets further.
//!
//! Per-target wall-clock goes through `run_all.<target>` spans into the
//! unified `<out_dir>/telemetry.jsonl`, alongside whatever events the
//! figure binaries themselves append there.

use dd_bench::BenchEnv;
use std::process::Command;

const TARGETS: &[&str] = &[
    "table2_datasets",
    "fig3_direction_discovery",
    "fig4_label_effect",
    "fig5_pattern_effect",
    "fig6a_dimensions",
    "fig6b_negatives",
    "fig7_visualization",
    "fig8_link_prediction",
    "fig9_scalability",
    "ablation_study",
    "calibration_report",
];

fn main() {
    // Each figure binary lives next to this one in the target directory;
    // invoke the sibling executables so each runs with its own stdout
    // header and the shared DD_* environment.
    let env = BenchEnv::from_env();
    let obs = env.observer();
    let self_path = std::env::current_exe().expect("own path");
    let dir = self_path.parent().expect("target dir").to_path_buf();
    let suite_span = obs.span("run_all");
    let mut failures = Vec::new();
    for target in TARGETS {
        let exe = dir.join(target);
        if !exe.exists() {
            eprintln!(
                "skipping {target}: {} not built (run `cargo build --release -p dd-bench --bins`)",
                exe.display()
            );
            failures.push(*target);
            continue;
        }
        println!("\n================ {target} ================");
        let (status, secs) = obs.time(&format!("run_all.{target}"), || {
            Command::new(&exe).status().expect("spawn figure binary")
        });
        println!("[{target}: {secs:.1}s, {status}]");
        if !status.success() {
            failures.push(*target);
        }
    }
    let total = suite_span.finish();
    println!(
        "\ncompleted {}/{} targets in {total:.1}s",
        TARGETS.len() - failures.len(),
        TARGETS.len(),
    );
    obs.flush();
    if !failures.is_empty() {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
