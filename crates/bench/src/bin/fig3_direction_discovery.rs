//! Regenerates **Fig. 3** — accuracy of direction discovery on the five
//! datasets, five methods, sweeping the fraction of ties that remain
//! directed.
//!
//! ```text
//! cargo run --release -p dd-bench --bin fig3_direction_discovery
//! ```
//!
//! Expected shape (paper): DeepDirect on top everywhere; ReDirect-N/sm and
//! ReDirect-T/sm in the second tier; LINE and HF at the bottom.

use dd_bench::{bench_suite, BenchEnv};
use dd_datasets::all_datasets;
use dd_eval::runner::{direction_discovery_accuracy_observed, ExperimentRow, ResultSink};

fn main() {
    let env = BenchEnv::from_env();
    let obs = env.observer();
    let percents = [0.05, 0.1, 0.2, 0.5, 0.8];
    let mut sink = ResultSink::new();
    for spec in all_datasets() {
        for &pct in &percents {
            for s in 0..env.n_seeds {
                let seed = env.seed + s;
                let hidden = env.hidden_split_observed(&spec, pct, seed, &obs);
                for method in bench_suite(seed) {
                    let acc = direction_discovery_accuracy_observed(&method, &hidden, &obs);
                    sink.push(ExperimentRow {
                        experiment: "fig3".into(),
                        dataset: spec.name.into(),
                        method: method.name().into(),
                        x_name: "percent_directed".into(),
                        x: pct,
                        value: acc,
                        seed,
                    });
                }
            }
        }
    }
    for &pct in &percents {
        println!("\n{}", sink.pivot_table("fig3", pct));
    }
    sink.write_jsonl(&env.out_path("fig3.jsonl")).expect("write fig3.jsonl");
    println!("wrote {}", env.out_path("fig3.jsonl"));
    obs.flush();
}
