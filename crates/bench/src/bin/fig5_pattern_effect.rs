//! Regenerates **Fig. 5** — effectiveness of the directionality patterns in
//! the E-Step: six `(α, β)` groups at low label fractions (≤ 15%).
//!
//! ```text
//! cargo run --release -p dd-bench --bin fig5_pattern_effect
//! ```
//!
//! Expected shape (paper): `β > 0` helps, most at the lowest label
//! fractions; the best cell has both `α > 0` and `β > 0`.

use dd_bench::{bench_deepdirect_config, BenchEnv};
use dd_datasets::all_datasets;
use dd_eval::runner::{direction_discovery_accuracy, ExperimentRow, Method, ResultSink};

fn main() {
    let env = BenchEnv::from_env();
    let groups: [(f32, f32); 6] =
        [(0.0, 0.0), (0.0, 0.1), (0.0, 1.0), (5.0, 0.0), (5.0, 0.1), (5.0, 1.0)];
    let percents = [0.01, 0.05, 0.1, 0.15];
    let mut sink = ResultSink::new();
    for spec in all_datasets() {
        for &pct in &percents {
            for s in 0..env.n_seeds {
                let seed = env.seed + s;
                let hidden = env.hidden_split(&spec, pct, seed);
                for &(alpha, beta) in &groups {
                    let mut cfg = bench_deepdirect_config(64, seed);
                    cfg.alpha = alpha;
                    cfg.beta = beta;
                    let acc = direction_discovery_accuracy(&Method::DeepDirect(cfg), &hidden);
                    sink.push(ExperimentRow {
                        experiment: "fig5".into(),
                        dataset: spec.name.into(),
                        method: format!("alpha={alpha} beta={beta}"),
                        x_name: "percent_directed".into(),
                        x: pct,
                        value: acc,
                        seed,
                    });
                }
            }
        }
    }
    for &pct in &percents {
        println!("\n{}", sink.pivot_table("fig5", pct));
    }
    sink.write_jsonl(&env.out_path("fig5.jsonl")).expect("write fig5.jsonl");
    println!("wrote {}", env.out_path("fig5.jsonl"));
}
