//! Calibration of the learned directionality functions (beyond-paper
//! analysis): Definition 2 interprets `d(u, v)` as the *probability* that
//! the tie runs `u → v`, so a good model should be calibrated, not just
//! accurate. For each method we score every hidden tie in both orders,
//! label the true orientation, and report the expected calibration error
//! plus a 95% bootstrap CI of direction-discovery accuracy.
//!
//! ```text
//! cargo run --release -p dd-bench --bin calibration_report
//! ```

use dd_bench::{bench_suite, BenchEnv};
use dd_datasets::tencent;
use dd_eval::metrics::{bootstrap_mean_ci, calibration};
use dd_graph::hash::FxHashSet;

fn main() {
    let env = BenchEnv::from_env();
    let hidden = env.hidden_split(&tencent(), 0.2, env.seed);
    let truth: FxHashSet<(u32, u32)> = hidden.truth.iter().map(|&(u, v)| (u.0, v.0)).collect();
    println!("Tencent analog, 20% directed, {} hidden ties\n", hidden.truth.len());
    println!("{:<16} {:>9} {:>9} {:>22}", "method", "accuracy", "ECE", "95% bootstrap CI");
    for method in bench_suite(env.seed) {
        let scorer = method.fit(&hidden.network);
        let mut preds = Vec::new();
        let mut labels = Vec::new();
        let mut outcomes = Vec::new();
        for (_, u, v) in hidden.network.undirected_pairs() {
            let duv = scorer.score(u, v);
            let dvu = scorer.score(v, u);
            // Calibration sample: both orders with their truth.
            preds.push(duv.clamp(0.0, 1.0));
            labels.push(truth.contains(&(u.0, v.0)));
            preds.push(dvu.clamp(0.0, 1.0));
            labels.push(truth.contains(&(v.0, u.0)));
            // Discovery outcome per Eq. 28.
            let predicted_uv = duv >= dvu;
            let correct = predicted_uv == truth.contains(&(u.0, v.0));
            outcomes.push(if correct { 1.0 } else { 0.0 });
        }
        let (_, ece) = calibration(&preds, &labels, 10);
        let ci = bootstrap_mean_ci(&outcomes, 0.95, 1000, env.seed);
        println!(
            "{:<16} {:>9.4} {:>9.4}     [{:.4}, {:.4}]",
            method.name(),
            ci.estimate,
            ece,
            ci.lower,
            ci.upper
        );
    }
}
