//! Regenerates **Fig. 4** — effectiveness of labeled data in the E-Step:
//! DeepDirect accuracy for `α ∈ {0, 0.1, 1, 5}` with `β = 0`, across label
//! fractions and datasets.
//!
//! ```text
//! cargo run --release -p dd-bench --bin fig4_label_effect
//! ```
//!
//! Expected shape (paper): any `α > 0` beats `α = 0`, with `α = 5` usually
//! best.

use dd_bench::{bench_deepdirect_config, BenchEnv};
use dd_datasets::all_datasets;
use dd_eval::runner::{direction_discovery_accuracy, ExperimentRow, Method, ResultSink};

fn main() {
    let env = BenchEnv::from_env();
    let alphas = [0.0f32, 0.1, 1.0, 5.0];
    let percents = [0.05, 0.1, 0.2, 0.5];
    let mut sink = ResultSink::new();
    for spec in all_datasets() {
        for &pct in &percents {
            for s in 0..env.n_seeds {
                let seed = env.seed + s;
                let hidden = env.hidden_split(&spec, pct, seed);
                for &alpha in &alphas {
                    let mut cfg = bench_deepdirect_config(64, seed);
                    cfg.alpha = alpha;
                    cfg.beta = 0.0;
                    let acc = direction_discovery_accuracy(&Method::DeepDirect(cfg), &hidden);
                    sink.push(ExperimentRow {
                        experiment: "fig4".into(),
                        dataset: spec.name.into(),
                        method: format!("alpha={alpha}"),
                        x_name: "percent_directed".into(),
                        x: pct,
                        value: acc,
                        seed,
                    });
                }
            }
        }
    }
    for &pct in &percents {
        println!("\n{}", sink.pivot_table("fig4", pct));
    }
    sink.write_jsonl(&env.out_path("fig4.jsonl")).expect("write fig4.jsonl");
    println!("wrote {}", env.out_path("fig4.jsonl"));
}
