//! Regenerates **Fig. 9** — scalability: DeepDirect wall-clock time as a
//! function of the number of social ties, on BFS sub-samples of the Tencent
//! analog.
//!
//! ```text
//! cargo run --release -p dd-bench --bin fig9_scalability
//! ```
//!
//! Expected shape (paper / Sec. 4.6 analysis): runtime linear in `|E|`.
//! The binary reports the least-squares fit and its `R²`. Every fit is
//! timed under a `fig9.fit` span appended to the unified
//! `<out_dir>/telemetry.jsonl` event log.

use dd_bench::{num_threads, BenchEnv};
use dd_datasets::tencent;
use dd_eval::runner::{ExperimentRow, ResultSink};
use dd_graph::sampling::bfs_subnetwork;
use dd_linalg::stats::{linear_fit, r_squared};
use deepdirect::{DeepDirect, DeepDirectConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let env = BenchEnv::from_env();
    let obs = env.observer();
    // Full Tencent analog at the environment scale; sub-sample by BFS.
    let (full, _) = obs
        .time("fig9.dataset.generate", || tencent().generate(env.scale.min(40), env.seed).network);
    println!("base network: {} nodes, {} ties", full.n_nodes(), full.counts().total());
    let fractions = [0.2, 0.4, 0.6, 0.8, 1.0];
    let mut rng = StdRng::seed_from_u64(env.seed ^ 0xf19);
    let mut sink = ResultSink::new();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &f in &fractions {
        let target = ((full.n_nodes() as f64) * f) as usize;
        let g = if f >= 1.0 { full.clone() } else { bfs_subnetwork(&full, target, &mut rng).0 };
        let ties = g.counts().total();
        // Fixed τ so that work scales with |C(G)| ∝ |E| (Sec. 4.6). The
        // E-Step dominates; single-threaded for a clean scaling read, and
        // no observer inside the config so progress sampling cannot skew
        // the measured fit time — only the enclosing span is recorded.
        let cfg = DeepDirectConfig {
            dim: 64,
            tau: 2.0,
            threads: 1,
            seed: env.seed,
            ..Default::default()
        };
        let (model, secs) =
            obs.time(&format!("fig9.fit.ties_{ties}"), || DeepDirect::new(cfg).fit(&g));
        println!(
            "|E| = {ties:>8}  ->  {secs:>7.2}s  ({} E-Step iterations, {} threads)",
            model.estep_iterations(),
            1
        );
        xs.push(ties as f64);
        ys.push(secs);
        sink.push(ExperimentRow {
            experiment: "fig9".into(),
            dataset: "Tencent".into(),
            method: "DeepDirect".into(),
            x_name: "ties".into(),
            x: ties as f64,
            value: secs,
            seed: env.seed,
        });
    }
    let (a, b) = linear_fit(&xs, &ys);
    let r2 = r_squared(&xs, &ys);
    println!("\nlinear fit: time = {a:.3e} * |E| + {b:.3}  (R² = {r2:.4})");
    println!("(available parallelism for the Hogwild extension: {} threads)", num_threads());
    sink.write_jsonl(&env.out_path("fig9.jsonl")).expect("write fig9.jsonl");
    println!("wrote {}", env.out_path("fig9.jsonl"));
    obs.flush();
}
