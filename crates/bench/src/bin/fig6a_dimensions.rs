//! Regenerates **Fig. 6(a)** — sensitivity to the embedding dimension `l`
//! (with 20% of ties remaining directed).
//!
//! ```text
//! cargo run --release -p dd-bench --bin fig6a_dimensions
//! ```
//!
//! Expected shape (paper): accuracy rises with `l` and saturates around
//! `l = 128`.

use dd_bench::{bench_deepdirect_config, BenchEnv};
use dd_datasets::all_datasets;
use dd_eval::runner::{direction_discovery_accuracy, ExperimentRow, Method, ResultSink};

fn main() {
    let env = BenchEnv::from_env();
    let dims = [16usize, 32, 64, 128, 256];
    let pct = 0.2;
    let mut sink = ResultSink::new();
    for spec in all_datasets() {
        for s in 0..env.n_seeds {
            let seed = env.seed + s;
            let hidden = env.hidden_split(&spec, pct, seed);
            for &dim in &dims {
                let cfg = bench_deepdirect_config(dim, seed);
                let acc = direction_discovery_accuracy(&Method::DeepDirect(cfg), &hidden);
                sink.push(ExperimentRow {
                    experiment: "fig6a".into(),
                    dataset: spec.name.into(),
                    method: "DeepDirect".into(),
                    x_name: "dimensions".into(),
                    x: dim as f64,
                    value: acc,
                    seed,
                });
            }
        }
    }
    for &dim in &dims {
        println!("\n{}", sink.pivot_table("fig6a", dim as f64));
    }
    sink.write_jsonl(&env.out_path("fig6a.jsonl")).expect("write fig6a.jsonl");
    println!("wrote {}", env.out_path("fig6a.jsonl"));
}
