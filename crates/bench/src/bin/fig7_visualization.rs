//! Regenerates **Fig. 7** — t-SNE visualization of tie embeddings:
//! DeepDirect vs LINE on a high-degree Slashdot sub-network with 90% of
//! directions hidden, points colored by true direction.
//!
//! ```text
//! cargo run --release -p dd-bench --bin fig7_visualization
//! ```
//!
//! Outputs `results/fig7_deepdirect.csv` and `results/fig7_line.csv`
//! (`x,y,label`) and prints the silhouette separability of each embedding.
//! Expected shape (paper): DeepDirect separable (silhouette ≫ 0), LINE
//! mixed (silhouette ≈ 0).

use dd_baselines::{LineConfig, LineLearner};
use dd_bench::{bench_deepdirect_config, write_csv, BenchEnv};
use dd_datasets::slashdot;
use dd_eval::silhouette::silhouette_2d;
use dd_eval::tsne::{tsne_2d, TsneConfig};
use dd_graph::hash::FxHashSet;
use dd_graph::sampling::{hide_directions, induced_subnetwork};
use dd_graph::NodeId;
use deepdirect::DeepDirect;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let env = BenchEnv::from_env();
    // Slashdot analog; keep the top-1%-degree nodes (at least 120 so the
    // sub-network is non-trivial at small scales).
    let g = slashdot().generate(env.scale, env.seed).network;
    let mut by_degree: Vec<NodeId> = g.nodes().collect();
    by_degree.sort_by_key(|&u| std::cmp::Reverse(g.social_degree(u)));
    let keep = (g.n_nodes() / 100).max(120).min(g.n_nodes());
    let (sub, _) = induced_subnetwork(&g, &by_degree[..keep]);
    println!("top-degree sub-network: {} nodes, {} ties", sub.n_nodes(), sub.counts().total());

    // Hide 90% of the directed ties.
    let mut rng = StdRng::seed_from_u64(env.seed ^ 0xf16);
    let hidden = hide_directions(&sub, 0.1, &mut rng);
    let truth: FxHashSet<(u32, u32)> = hidden.truth.iter().map(|&(u, v)| (u.0, v.0)).collect();

    // The visualized points are the hidden ties (canonical order instance);
    // label = "canonical source is the true source".
    let pairs: Vec<(NodeId, NodeId)> =
        hidden.network.undirected_pairs().map(|(_, u, v)| (u, v)).collect();
    let labels: Vec<bool> = pairs.iter().map(|&(u, v)| truth.contains(&(u.0, v.0))).collect();

    // --- DeepDirect tie embeddings ---
    let model = DeepDirect::new(bench_deepdirect_config(64, env.seed)).fit(&hidden.network);
    let dd_vecs: Vec<Vec<f32>> =
        pairs.iter().map(|&(u, v)| model.embedding(u, v).expect("embedded").to_vec()).collect();

    // --- LINE tie features (endpoint concatenation) ---
    let line = LineLearner::new(LineConfig {
        dim: 32,
        seed: env.seed,
        max_iterations: Some(2_000_000),
        ..Default::default()
    });
    let nodes = line.embed(&hidden.network);
    let line_vecs: Vec<Vec<f32>> = pairs
        .iter()
        .map(|&(u, v)| {
            let mut x = nodes.row(u.index()).to_vec();
            x.extend_from_slice(nodes.row(v.index()));
            x
        })
        .collect();

    let tsne_cfg = TsneConfig { seed: env.seed, ..Default::default() };
    for (name, vecs) in [("deepdirect", dd_vecs), ("line", line_vecs)] {
        let pts = tsne_2d(&vecs, &tsne_cfg);
        let sil = silhouette_2d(&pts, &labels);
        println!("{name}: {} points, silhouette = {sil:.4}", pts.len());
        let rows: Vec<String> = pts
            .iter()
            .zip(&labels)
            .map(|((x, y), &l)| format!("{x:.4},{y:.4},{}", l as u8))
            .collect();
        let path = env.out_path(&format!("fig7_{name}.csv"));
        write_csv(&path, "x,y,true_source_is_canonical", &rows).expect("write csv");
        println!("wrote {path}");
    }
}
