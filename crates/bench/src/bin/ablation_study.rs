//! Ablations of DeepDirect design choices (DESIGN.md §5) that the paper
//! motivates but does not isolate:
//!
//! * tie-degree weighting of labeled ties (Eq. 13) vs uniform sampling,
//! * the degree-pattern threshold `T` (Eq. 16) on vs off,
//! * the `P_n ∝ deg^{3/4}` noise exponent vs uniform negatives,
//! * the linear logistic D-Step vs the future-work MLP head,
//! * γ (common-neighbor cap of Eq. 15).
//!
//! ```text
//! cargo run --release -p dd-bench --bin ablation_study
//! ```

use dd_bench::{bench_deepdirect_config, BenchEnv};
use dd_datasets::{epinions, tencent};
use dd_eval::runner::{direction_discovery_accuracy, ExperimentRow, Method, ResultSink};
use deepdirect::{DStepHead, DeepDirectConfig};

fn main() {
    let env = BenchEnv::from_env();
    let pct = 0.1; // low-label regime where the design choices matter most
    let mut sink = ResultSink::new();
    for spec in [tencent(), epinions()] {
        for s in 0..env.n_seeds {
            let seed = env.seed + s;
            let hidden = env.hidden_split(&spec, pct, seed);
            let base = bench_deepdirect_config(64, seed);
            let variants: Vec<(&str, DeepDirectConfig)> = vec![
                ("baseline", base.clone()),
                ("threshold_off", DeepDirectConfig { degree_threshold: 0.0, ..base.clone() }),
                ("threshold_strict", DeepDirectConfig { degree_threshold: 0.8, ..base.clone() }),
                ("gamma_1", DeepDirectConfig { gamma: 1, ..base.clone() }),
                ("gamma_30", DeepDirectConfig { gamma: 30, ..base.clone() }),
                ("mlp_head", DeepDirectConfig { head: DStepHead::Mlp, ..base.clone() }),
                ("beta_off", DeepDirectConfig { beta: 0.0, ..base.clone() }),
                ("alpha_off", DeepDirectConfig { alpha: 0.0, ..base.clone() }),
                ("uniform_negatives", DeepDirectConfig { noise_exponent: 0.0, ..base.clone() }),
                (
                    "uniform_context",
                    DeepDirectConfig { uniform_context_sampling: true, ..base.clone() },
                ),
            ];
            for (name, cfg) in variants {
                let acc = direction_discovery_accuracy(&Method::DeepDirect(cfg), &hidden);
                sink.push(ExperimentRow {
                    experiment: "ablation".into(),
                    dataset: spec.name.into(),
                    method: name.into(),
                    x_name: "percent_directed".into(),
                    x: pct,
                    value: acc,
                    seed,
                });
            }
        }
    }
    println!("\n{}", sink.pivot_table("ablation", pct));
    sink.write_jsonl(&env.out_path("ablation.jsonl")).expect("write ablation.jsonl");
    println!("wrote {}", env.out_path("ablation.jsonl"));
}
