//! Regenerates **Fig. 6(b)** — sensitivity to the number of negative
//! samples `λ` (with 20% of ties remaining directed).
//!
//! ```text
//! cargo run --release -p dd-bench --bin fig6b_negatives
//! ```
//!
//! Expected shape (paper): `λ ∈ {5, 10}` beats `λ = 1`, with `λ = 5` the
//! cost/quality sweet spot.

use dd_bench::{bench_deepdirect_config, BenchEnv};
use dd_datasets::all_datasets;
use dd_eval::runner::{direction_discovery_accuracy, ExperimentRow, Method, ResultSink};

fn main() {
    let env = BenchEnv::from_env();
    let lambdas = [1usize, 3, 5, 10];
    let pct = 0.2;
    let mut sink = ResultSink::new();
    for spec in all_datasets() {
        for s in 0..env.n_seeds {
            let seed = env.seed + s;
            let hidden = env.hidden_split(&spec, pct, seed);
            for &lambda in &lambdas {
                let mut cfg = bench_deepdirect_config(64, seed);
                cfg.negatives = lambda;
                let acc = direction_discovery_accuracy(&Method::DeepDirect(cfg), &hidden);
                sink.push(ExperimentRow {
                    experiment: "fig6b".into(),
                    dataset: spec.name.into(),
                    method: "DeepDirect".into(),
                    x_name: "negatives".into(),
                    x: lambda as f64,
                    value: acc,
                    seed,
                });
            }
        }
    }
    for &lambda in &lambdas {
        println!("\n{}", sink.pivot_table("fig6b", lambda as f64));
    }
    sink.write_jsonl(&env.out_path("fig6b.jsonl")).expect("write fig6b.jsonl");
    println!("wrote {}", env.out_path("fig6b.jsonl"));
}
