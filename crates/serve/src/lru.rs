//! Sharded LRU cache for directionality scores.
//!
//! Scores are pure functions of a loaded model, so cached entries can
//! never go stale (see DESIGN.md §7.14) — eviction exists only to bound
//! memory. Keys carry the model's content fingerprint as a generation
//! namespace: when `POST /admin/reload` hot-swaps the served model,
//! entries computed against the old weights simply stop matching instead
//! of being served stale — no flush, no invalidation protocol. They do,
//! however, keep occupying capacity: the reload path calls
//! [`ScoreCache::purge_other_generations`] so dead-generation entries stop
//! crowding out (and charging phantom evictions against) the live model.
//! Streaming ingestion (DESIGN.md §7.15) removes exactly the affected keys
//! with [`ScoreCache::remove`] instead of flushing.
//! Sharding by key hash keeps lock contention off the worker
//! pool: each shard is an independent mutex around an intrusive-list LRU,
//! so two workers scoring different ties almost never touch the same lock.

use std::collections::HashMap;
use std::sync::Mutex;

/// Cache key: the model generation (its content fingerprint) plus an
/// ordered tie as raw node ids.
pub type TieKey = (u64, u32, u32);

const NIL: u32 = u32::MAX;

struct Node {
    key: TieKey,
    val: f64,
    prev: u32,
    next: u32,
}

/// One shard: a classic HashMap + intrusive doubly-linked recency list.
struct Shard {
    map: HashMap<TieKey, u32>,
    nodes: Vec<Node>,
    head: u32,
    tail: u32,
    cap: usize,
    /// Slots of removed/purged nodes, reusable before `nodes` grows again.
    free: Vec<u32>,
}

impl Shard {
    fn new(cap: usize) -> Self {
        Shard {
            map: HashMap::with_capacity(cap.min(1024)),
            nodes: Vec::with_capacity(cap.min(1024)),
            head: NIL,
            tail: NIL,
            cap,
            free: Vec::new(),
        }
    }

    fn detach(&mut self, i: u32) {
        let (prev, next) = (self.nodes[i as usize].prev, self.nodes[i as usize].next);
        match prev {
            NIL => self.head = next,
            p => self.nodes[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n as usize].prev = prev,
        }
    }

    fn push_front(&mut self, i: u32) {
        self.nodes[i as usize].prev = NIL;
        self.nodes[i as usize].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.nodes[h as usize].prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, key: TieKey) -> Option<f64> {
        let i = *self.map.get(&key)?;
        self.detach(i);
        self.push_front(i);
        Some(self.nodes[i as usize].val)
    }

    /// Inserts (or refreshes) `key`; returns `true` when another entry was
    /// evicted to make room.
    fn insert(&mut self, key: TieKey, val: f64) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i as usize].val = val;
            self.detach(i);
            self.push_front(i);
            return false;
        }
        if self.map.len() >= self.cap {
            // Evict the least-recently-used entry and reuse its slot.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "cap >= 1, so a full shard has a tail");
            self.detach(victim);
            let old_key = self.nodes[victim as usize].key;
            self.map.remove(&old_key);
            self.nodes[victim as usize].key = key;
            self.nodes[victim as usize].val = val;
            self.push_front(victim);
            self.map.insert(key, victim);
            return true;
        }
        let i = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize].key = key;
                self.nodes[slot as usize].val = val;
                slot
            }
            None => {
                let i = self.nodes.len() as u32;
                self.nodes.push(Node { key, val, prev: NIL, next: NIL });
                i
            }
        };
        self.push_front(i);
        self.map.insert(key, i);
        false
    }

    /// Drops `key` if present; its slot goes on the free list for reuse.
    fn remove(&mut self, key: TieKey) -> bool {
        let Some(i) = self.map.remove(&key) else { return false };
        self.detach(i);
        self.free.push(i);
        true
    }

    /// Drops every entry whose generation differs from `keep`; returns the
    /// number of entries purged.
    fn purge_other_generations(&mut self, keep: u64) -> usize {
        let dead: Vec<TieKey> = self.map.keys().filter(|k| k.0 != keep).copied().collect();
        for key in &dead {
            self.remove(*key);
        }
        dead.len()
    }
}

/// Locks a shard, recovering from poison by discarding the shard's
/// contents. No user code runs under these locks, so poison means a panic
/// inside `Shard` itself — the intrusive list may be half-linked, and
/// because every entry is a pure function of the frozen model the cheapest
/// consistent state is simply an empty shard (a cold cache, not an error).
fn lock_shard(shard: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
    shard.lock().unwrap_or_else(|poisoned| {
        let mut guard = poisoned.into_inner();
        *guard = Shard::new(guard.cap);
        guard
    })
}

/// Thread-safe sharded LRU mapping ordered ties to scores.
pub struct ScoreCache {
    shards: Vec<Mutex<Shard>>,
}

impl ScoreCache {
    /// Cache holding about `capacity` entries total, sharded across up to 8
    /// locks. Returns `None` when `capacity` is 0 (caching disabled).
    pub fn new(capacity: usize) -> Option<Self> {
        if capacity == 0 {
            return None;
        }
        Some(Self::with_shards(capacity, capacity.min(8)))
    }

    /// Cache with an explicit shard count (tests use 1 shard so eviction
    /// order is fully deterministic).
    ///
    /// Shard capacities always sum to exactly `capacity`: the remainder of
    /// `capacity / n_shards` is spread one slot at a time over the leading
    /// shards (rounding every shard up would over-allocate by up to
    /// `n_shards - 1` entries — a capacity-9/8-shard cache used to hold
    /// 16). When `capacity < n_shards` the extra shards would get zero
    /// slots, so the shard count is clamped to `capacity` instead.
    ///
    /// # Panics
    /// Panics when `capacity` or `n_shards` is 0.
    pub fn with_shards(capacity: usize, n_shards: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(n_shards > 0, "need at least one shard");
        let n_shards = n_shards.min(capacity);
        let base = capacity / n_shards;
        let extra = capacity % n_shards;
        let shards =
            (0..n_shards).map(|i| Mutex::new(Shard::new(base + usize::from(i < extra)))).collect();
        ScoreCache { shards }
    }

    /// Total entry budget across all shards (the `capacity` the cache was
    /// built with).
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).cap).sum()
    }

    fn shard(&self, key: TieKey) -> &Mutex<Shard> {
        // Fibonacci hashing over the generation-xor-packed-pair; the high
        // bits decide the shard so adjacent ids spread out.
        let packed = key.0 ^ ((u64::from(key.1) << 32) | u64::from(key.2));
        let h = packed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    /// Cached score for `key`, refreshing its recency.
    pub fn get(&self, key: TieKey) -> Option<f64> {
        lock_shard(self.shard(key)).get(key)
    }

    /// Caches `val` under `key`; returns `true` when an older entry was
    /// evicted to make room.
    pub fn insert(&self, key: TieKey, val: f64) -> bool {
        lock_shard(self.shard(key)).insert(key, val)
    }

    /// Entries currently cached (sums the shards; used for the occupancy
    /// gauge, not on the per-request hot path).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Invalidates exactly one entry; returns whether it was present.
    /// Streaming ingestion calls this for each `(generation, src, dst)`
    /// affected by an applied event (DESIGN.md §7.15).
    pub fn remove(&self, key: TieKey) -> bool {
        lock_shard(self.shard(key)).remove(key)
    }

    /// Drops every entry whose generation is not `keep`, returning how many
    /// were purged. The reload path calls this after a slot swap: entries
    /// keyed by a swapped-out fingerprint can never hit again but would
    /// otherwise occupy capacity (and produce phantom evictions) until
    /// churned out.
    pub fn purge_other_generations(&self, keep: u64) -> usize {
        self.shards.iter().map(|s| lock_shard(s).purge_other_generations(keep)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Model generation stand-in for single-generation tests.
    const GEN: u64 = 0x00C0_FFEE_0DDB_A110;

    #[test]
    fn get_and_insert_round_trip() {
        let c = ScoreCache::new(16).unwrap();
        assert_eq!(c.get((GEN, 1, 2)), None);
        assert!(!c.insert((GEN, 1, 2), 0.75));
        assert_eq!(c.get((GEN, 1, 2)), Some(0.75));
        // Refresh with a new value, no eviction.
        assert!(!c.insert((GEN, 1, 2), 0.5));
        assert_eq!(c.get((GEN, 1, 2)), Some(0.5));
        assert_eq!(c.len(), 1);
        assert!(ScoreCache::new(0).is_none());
    }

    #[test]
    fn generations_do_not_collide() {
        // The same tie under two model fingerprints is two distinct
        // entries — a swapped model can never read the old model's score.
        let c = ScoreCache::new(16).unwrap();
        c.insert((1, 7, 9), 0.25);
        c.insert((2, 7, 9), 0.75);
        assert_eq!(c.get((1, 7, 9)), Some(0.25));
        assert_eq!(c.get((2, 7, 9)), Some(0.75));
        assert_eq!(c.get((3, 7, 9)), None, "unseen generation must miss");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let c = ScoreCache::with_shards(2, 1);
        c.insert((GEN, 1, 0), 0.1);
        c.insert((GEN, 2, 0), 0.2);
        // Touch (1,0) so (2,0) is now the LRU entry.
        assert_eq!(c.get((GEN, 1, 0)), Some(0.1));
        assert!(c.insert((GEN, 3, 0), 0.3), "full shard must evict");
        assert_eq!(c.get((GEN, 2, 0)), None, "LRU entry evicted");
        assert_eq!(c.get((GEN, 1, 0)), Some(0.1), "recently used entry kept");
        assert_eq!(c.get((GEN, 3, 0)), Some(0.3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_churn_keeps_capacity_bounded() {
        let c = ScoreCache::with_shards(8, 2);
        assert_eq!(c.capacity(), 8);
        for i in 0..1000u32 {
            c.insert((GEN, i, i + 1), f64::from(i));
        }
        // Exact bound: 1000 hashed keys fill both shards, and churn can
        // never push occupancy past the requested capacity.
        assert_eq!(c.len(), 8, "churned cache must sit exactly at capacity");
        // The most recent keys of each shard survive.
        let survivors = (0..1000u32).filter(|&i| c.get((GEN, i, i + 1)).is_some()).count();
        assert_eq!(survivors, c.len());
    }

    #[test]
    fn shard_capacities_sum_exactly_to_the_request() {
        // Regression: div_ceil sizing gave a capacity-9/8-shard cache
        // 8 × 2 = 16 slots, ~78% over budget.
        for (capacity, n_shards) in [(9usize, 8usize), (8, 8), (7, 3), (1, 8), (3, 8), (100, 7)] {
            let c = ScoreCache::with_shards(capacity, n_shards);
            assert_eq!(
                c.capacity(),
                capacity,
                "with_shards({capacity}, {n_shards}) must not over-allocate"
            );
            for i in 0..1000u32 {
                c.insert((GEN, i, i.wrapping_mul(2654435761)), f64::from(i));
            }
            assert!(
                c.len() <= capacity,
                "with_shards({capacity}, {n_shards}): len {} exceeds budget",
                c.len()
            );
        }
    }

    #[test]
    fn remove_invalidates_exactly_one_entry_and_recycles_its_slot() {
        let c = ScoreCache::with_shards(3, 1);
        c.insert((GEN, 1, 2), 0.1);
        c.insert((GEN, 3, 4), 0.2);
        c.insert((GEN, 5, 6), 0.3);
        assert!(c.remove((GEN, 3, 4)));
        assert!(!c.remove((GEN, 3, 4)), "double remove is a no-op");
        assert_eq!(c.get((GEN, 3, 4)), None);
        assert_eq!(c.get((GEN, 1, 2)), Some(0.1), "neighbors survive removal");
        assert_eq!(c.get((GEN, 5, 6)), Some(0.3));
        assert_eq!(c.len(), 2);
        // The freed slot is reused: refilling to capacity evicts nothing.
        assert!(!c.insert((GEN, 7, 8), 0.4), "freed slot must absorb the insert");
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn purge_reclaims_dead_generation_capacity_without_phantom_evictions() {
        // Regression (reload bloat): after a hot swap, old-fingerprint
        // entries can never hit again, yet before the purge they kept
        // occupying capacity — a reloaded server refilling its cache
        // reported one eviction per insert while serving a half-dead cache.
        const OLD: u64 = 0xDEAD;
        const NEW: u64 = 0xBEEF;
        let c = ScoreCache::with_shards(4, 1);
        for i in 0..4u32 {
            c.insert((OLD, i, i), 0.5);
        }
        assert_eq!(c.len(), 4, "old generation fills the cache");
        // A live-generation entry inserted before the purge must survive it.
        assert!(c.insert((NEW, 9, 9), 0.9), "full cache evicts to admit the new generation");
        assert_eq!(c.purge_other_generations(NEW), 3, "exactly the dead entries are purged");
        assert_eq!(c.len(), 1);
        assert_eq!(c.get((NEW, 9, 9)), Some(0.9), "live generation survives the purge");
        // Refilling with the live generation reports zero evictions: the
        // purge actually reclaimed the slots instead of leaving zombies.
        for i in 0..3u32 {
            assert!(!c.insert((NEW, i, i), 0.1), "purged capacity absorbs insert {i}");
        }
        assert_eq!(c.len(), 4);
        for i in 0..3u32 {
            assert_eq!(c.get((NEW, i, i)), Some(0.1));
        }
    }

    #[test]
    fn concurrent_use_is_safe_and_correct() {
        let c = std::sync::Arc::new(ScoreCache::new(256).unwrap());
        dd_runtime::scope(|s| {
            for t in 0..8u32 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..2000u32 {
                        let key = (GEN, i % 64, t);
                        c.insert(key, f64::from(i % 64) + f64::from(t) * 100.0);
                        if let Some(v) = c.get(key) {
                            assert_eq!(v, f64::from(i % 64) + f64::from(t) * 100.0);
                        }
                    }
                });
            }
        });
        assert!(c.len() <= 256, "len {} exceeds capacity", c.len());
    }
}
