//! Hot-swappable model slot: the shared state of a serving fleet.
//!
//! A [`ModelSlot`] holds the `Arc<DirectionalityModel>` a server scores
//! from and lets an admin endpoint swap in a freshly trained model while
//! in-flight requests keep scoring against the one they started with.
//! The design goal is that the *request path never blocks on a reload*:
//!
//! - Each worker thread owns a [`SlotReader`], a per-thread cache of the
//!   current `Arc` plus the generation it was read at. The steady-state
//!   read is one relaxed-to-acquire atomic load of the generation counter
//!   — no lock, no contended cache line beyond the counter itself.
//! - [`ModelSlot::swap`] stores the new `Arc` under a mutex (held only
//!   for the pointer store) and then bumps the generation. Readers notice
//!   the bump on their next request, take the mutex once to refresh their
//!   cached `Arc`, and go back to lock-free reads.
//! - In-flight requests finish on the old `Arc` they cloned at request
//!   start; the old model is freed when the last such request drops it.
//!   Nothing is ever torn down under a reader.
//!
//! Staleness is structurally impossible downstream: the score cache keys
//! every entry by the model's content fingerprint (DESIGN.md §7.8/§7.14),
//! so entries computed against a swapped-out model simply stop matching.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use deepdirect::DirectionalityModel;

/// Recovers a poisoned slot lock. The critical section only clones or
/// stores an `Arc` — neither can panic — so poison here means a panic on
/// an unrelated code path while unwinding through a guard; the `Arc`
/// inside is still structurally sound.
fn lock_current(
    current: &Mutex<Arc<DirectionalityModel>>,
) -> std::sync::MutexGuard<'_, Arc<DirectionalityModel>> {
    current.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// An atomically swappable holder for the served model.
///
/// Generation starts at 1 for the model the slot was created with and
/// increments on every successful [`swap`](ModelSlot::swap); dashboards
/// correlate it with latency shifts via the `serve.model.generation`
/// gauge and the `model.generation` field on `serve.request` events.
pub struct ModelSlot {
    current: Mutex<Arc<DirectionalityModel>>,
    generation: AtomicU64,
}

impl ModelSlot {
    /// A slot serving `model` at generation 1.
    pub fn new(model: Arc<DirectionalityModel>) -> Self {
        ModelSlot { current: Mutex::new(model), generation: AtomicU64::new(1) }
    }

    /// The current reload generation (1 until the first swap).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Clones the current model `Arc`. Takes the slot mutex for the
    /// duration of one `Arc::clone`; the request path goes through
    /// [`SlotReader::current`] instead, which only pays this on a
    /// generation change.
    pub fn load(&self) -> Arc<DirectionalityModel> {
        Arc::clone(&lock_current(&self.current))
    }

    /// Content fingerprint of the currently served model.
    pub fn fingerprint(&self) -> u64 {
        self.load().fingerprint()
    }

    /// Swaps `new` in and returns the previous model. In-flight requests
    /// holding the old `Arc` finish undisturbed; new requests observe the
    /// bumped generation and refresh. The store-then-bump order means a
    /// reader that refreshes early at most sees the new model *before*
    /// the new generation number — never a stale model after it.
    pub fn swap(&self, new: Arc<DirectionalityModel>) -> Arc<DirectionalityModel> {
        let old = {
            let mut guard = lock_current(&self.current);
            std::mem::replace(&mut *guard, new)
        };
        self.generation.fetch_add(1, Ordering::AcqRel);
        old
    }

    /// A per-thread reader over this slot. Each server worker owns one.
    pub fn reader(self: &Arc<Self>) -> SlotReader {
        let cached = self.load();
        let generation = self.generation();
        SlotReader { slot: Arc::clone(self), cached, generation }
    }
}

/// A worker-local view of a [`ModelSlot`].
///
/// `current()` is the per-request entry point: one atomic generation load
/// in the steady state, one mutex-guarded `Arc` clone per reload event.
pub struct SlotReader {
    slot: Arc<ModelSlot>,
    cached: Arc<DirectionalityModel>,
    generation: u64,
}

impl SlotReader {
    /// The model to score this request with. The returned `Arc` is cloned
    /// by the caller for the request's lifetime, so a swap mid-request
    /// cannot pull the model out from under it.
    pub fn current(&mut self) -> &Arc<DirectionalityModel> {
        let live = self.slot.generation.load(Ordering::Acquire);
        if live != self.generation {
            self.cached = self.slot.load();
            self.generation = live;
        }
        &self.cached
    }

    /// The generation of the model `current()` would return.
    pub fn generation(&mut self) -> u64 {
        let _ = self.current();
        self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_graph::generators::{social_network, SocialNetConfig};
    use deepdirect::{DeepDirect, DeepDirectConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> Arc<DirectionalityModel> {
        let gen_cfg = SocialNetConfig { n_nodes: 30, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let net = social_network(&gen_cfg, &mut rng).network;
        let cfg =
            DeepDirectConfig { dim: 4, max_iterations: Some(500), seed, ..Default::default() };
        Arc::new(DeepDirect::new(cfg).fit(&net))
    }

    #[test]
    fn swap_bumps_generation_and_returns_the_old_model() {
        let a = tiny_model(1);
        let b = tiny_model(2);
        assert_ne!(a.fingerprint(), b.fingerprint(), "seeds must give distinct models");

        let slot = Arc::new(ModelSlot::new(Arc::clone(&a)));
        assert_eq!(slot.generation(), 1);
        assert_eq!(slot.fingerprint(), a.fingerprint());

        let old = slot.swap(Arc::clone(&b));
        assert_eq!(old.fingerprint(), a.fingerprint(), "swap returns the displaced model");
        assert_eq!(slot.generation(), 2);
        assert_eq!(slot.fingerprint(), b.fingerprint());
    }

    #[test]
    fn readers_see_swaps_without_holding_old_models_hostage() {
        let a = tiny_model(1);
        let b = tiny_model(2);
        let slot = Arc::new(ModelSlot::new(Arc::clone(&a)));
        let mut reader = slot.reader();
        assert_eq!(reader.current().fingerprint(), a.fingerprint());
        assert_eq!(reader.generation(), 1);

        // A "request in flight" clones the Arc before the swap…
        let in_flight = Arc::clone(reader.current());
        slot.swap(Arc::clone(&b));
        // …and keeps its old model while new requests get the new one.
        assert_eq!(in_flight.fingerprint(), a.fingerprint());
        assert_eq!(reader.current().fingerprint(), b.fingerprint());
        assert_eq!(reader.generation(), 2);
    }

    #[test]
    fn concurrent_readers_always_observe_a_coherent_model() {
        let models: Vec<Arc<DirectionalityModel>> = (1..=3).map(tiny_model).collect();
        let fingerprints: Vec<u64> = models.iter().map(|m| m.fingerprint()).collect();
        let slot = Arc::new(ModelSlot::new(Arc::clone(&models[0])));

        dd_runtime::scope(|s| {
            for _ in 0..4 {
                let slot = Arc::clone(&slot);
                let fingerprints = fingerprints.clone();
                s.spawn(move || {
                    let mut reader = slot.reader();
                    for _ in 0..2000 {
                        let m = Arc::clone(reader.current());
                        // Whatever generation we land on, the model is one
                        // of the known ones, never a torn intermediate.
                        assert!(fingerprints.contains(&m.fingerprint()));
                    }
                });
            }
            let slot = Arc::clone(&slot);
            let models = models.clone();
            s.spawn(move || {
                for i in 0..20 {
                    slot.swap(Arc::clone(&models[i % models.len()]));
                }
            });
        });
        assert_eq!(slot.generation(), 21);
    }
}
