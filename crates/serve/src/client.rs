//! Minimal blocking HTTP/1.1 client over `TcpStream`, shared by the smoke
//! binary, the example client, and the integration tests. One request per
//! connection, matching the server's `Connection: close` contract.
//!
//! [`get_with_retry`] layers capped exponential backoff with jitter on top
//! of [`get`] for transient failures (refused connects during startup,
//! `503` queue overflow, torn responses). Retries are restricted to GETs —
//! they are idempotent here — a `POST /batch` that dies mid-flight may
//! already have been scored, so replaying it is the caller's decision.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dd_linalg::Pcg32;

/// A parsed response: status code and body text.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body decoded as UTF-8.
    pub body: String,
}

/// Issues `GET path` against `addr` (`host:port`, no scheme).
pub fn get(addr: &str, path: &str) -> Result<ClientResponse, String> {
    request(addr, "GET", path, None)
}

/// Retry policy for [`get_with_retry`]: capped exponential backoff with
/// equal jitter from a seeded [`Pcg32`], bounded by both an attempt count
/// and a wall-clock budget.
///
/// Attempt `n` (0-based) sleeps `d/2 + U(0,1)·d/2` where
/// `d = min(base_delay · 2ⁿ, max_delay)` — the deterministic half keeps a
/// real backoff floor, the jittered half de-synchronises clients hammering
/// a recovering server. The same seed always yields the same sleep
/// schedule, so a failing run is replayable.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` disables retries).
    pub attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_delay: Duration,
    /// Wall-clock budget across all attempts and sleeps: no retry starts
    /// after this much time has elapsed.
    pub budget: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(1),
            budget: Duration::from_secs(10),
            seed: 0x9E3779B97F4A7C15,
        }
    }
}

impl RetryPolicy {
    /// The capped, jittered sleep before retry number `attempt` (0-based).
    fn backoff(&self, attempt: u32, rng: &mut Pcg32) -> Duration {
        let doubling = 1u64 << attempt.min(20);
        let capped = self
            .base_delay
            .saturating_mul(doubling.min(u64::from(u32::MAX)) as u32)
            .min(self.max_delay);
        capped.div_f64(2.0) + capped.mul_f64(rng.next_f64() / 2.0)
    }
}

/// Whether a request outcome is worth retrying: transport errors (refused
/// connect, reset, torn response) and `503` (bounded accept queue full —
/// transient by design). Anything the server answered deliberately
/// (2xx/4xx/500) is final.
fn retryable(outcome: &Result<ClientResponse, String>) -> bool {
    match outcome {
        Ok(resp) => resp.status == 503,
        Err(_) => true,
    }
}

/// Issues `GET path`, retrying transient failures per `policy`.
///
/// Only GETs get a retry wrapper: every GET endpoint the server exposes is
/// idempotent, so replaying one is always safe. On exhaustion the last
/// outcome is returned as-is (a `503` response stays an `Ok` so callers
/// can still read the status).
pub fn get_with_retry(
    addr: &str,
    path: &str,
    policy: &RetryPolicy,
) -> Result<ClientResponse, String> {
    let mut rng = Pcg32::seed_from_u64(policy.seed);
    // dd-lint: allow(trace-hygiene) — retry-budget accounting; the client
    // library has no observer to attach a span to.
    let start = Instant::now();
    let attempts = policy.attempts.max(1);
    let mut outcome = get(addr, path);
    for attempt in 0..attempts - 1 {
        if !retryable(&outcome) {
            return outcome;
        }
        let sleep = policy.backoff(attempt, &mut rng);
        if start.elapsed() + sleep > policy.budget {
            break;
        }
        std::thread::sleep(sleep);
        outcome = get(addr, path);
    }
    outcome
}

/// Issues `POST path` with `body` against `addr` (`host:port`, no scheme).
pub fn post(addr: &str, path: &str, body: &str) -> Result<ClientResponse, String> {
    request(addr, "POST", path, Some(body))
}

fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<ClientResponse, String> {
    let addr = addr.strip_prefix("http://").unwrap_or(addr).trim_end_matches('/');
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let timeout = Some(Duration::from_secs(30));
    stream.set_read_timeout(timeout).map_err(|e| e.to_string())?;
    stream.set_write_timeout(timeout).map_err(|e| e.to_string())?;

    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(req.as_bytes()).map_err(|e| format!("send {method} {path}: {e}"))?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| format!("read {method} {path}: {e}"))?;
    let text = String::from_utf8(raw).map_err(|_| "response is not UTF-8".to_string())?;
    parse_response(&text)
}

fn parse_response(text: &str) -> Result<ClientResponse, String> {
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("response without header terminator: {text:.80}"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line '{status_line}'"))?;
    Ok(ClientResponse { status, body: body.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_text() {
        let r = parse_response("HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\nno").unwrap();
        assert_eq!(r.status, 404);
        assert_eq!(r.body, "no");
        assert!(parse_response("garbage").is_err());
    }

    #[test]
    fn backoff_is_capped_jittered_and_replayable() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(300),
            ..RetryPolicy::default()
        };
        let mut a = Pcg32::seed_from_u64(7);
        let mut b = Pcg32::seed_from_u64(7);
        for attempt in 0..8 {
            let d = policy.backoff(attempt, &mut a);
            // Equal jitter: between half the capped delay and the full one.
            let cap = Duration::from_millis(50)
                .saturating_mul(1 << attempt)
                .min(Duration::from_millis(300));
            assert!(d >= cap.div_f64(2.0), "attempt {attempt}: {d:?} under floor");
            assert!(d <= cap, "attempt {attempt}: {d:?} over cap {cap:?}");
            // Same seed, same schedule.
            assert_eq!(d, policy.backoff(attempt, &mut b));
        }
        // Huge attempt numbers must not overflow the doubling.
        let _ = policy.backoff(u32::MAX, &mut a);
    }

    #[test]
    fn transport_errors_and_503_retry_but_real_answers_do_not() {
        assert!(retryable(&Err("connect: refused".to_string())));
        assert!(retryable(&Ok(ClientResponse { status: 503, body: String::new() })));
        for status in [200, 400, 404, 408, 500] {
            assert!(!retryable(&Ok(ClientResponse { status, body: String::new() })));
        }
    }

    #[test]
    fn retry_against_a_dead_port_exhausts_quickly_and_reports_the_error() {
        // Bind-then-drop guarantees a port nothing is listening on.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let policy = RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
            budget: Duration::from_secs(5),
            seed: 1,
        };
        let start = Instant::now();
        let out = get_with_retry(&format!("127.0.0.1:{port}"), "/healthz", &policy);
        assert!(out.is_err(), "nothing listens there");
        assert!(out.unwrap_err().contains("connect"), "error names the failing stage");
        assert!(start.elapsed() < Duration::from_secs(4), "three tiny backoffs, not hangs");
    }
}
