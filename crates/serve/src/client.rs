//! Minimal blocking HTTP/1.1 client over `TcpStream`, shared by the smoke
//! binary, the example client, and the integration tests. One request per
//! connection, matching the server's `Connection: close` contract.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed response: status code and body text.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body decoded as UTF-8.
    pub body: String,
}

/// Issues `GET path` against `addr` (`host:port`, no scheme).
pub fn get(addr: &str, path: &str) -> Result<ClientResponse, String> {
    request(addr, "GET", path, None)
}

/// Issues `POST path` with `body` against `addr` (`host:port`, no scheme).
pub fn post(addr: &str, path: &str, body: &str) -> Result<ClientResponse, String> {
    request(addr, "POST", path, Some(body))
}

fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<ClientResponse, String> {
    let addr = addr.strip_prefix("http://").unwrap_or(addr).trim_end_matches('/');
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let timeout = Some(Duration::from_secs(30));
    stream.set_read_timeout(timeout).map_err(|e| e.to_string())?;
    stream.set_write_timeout(timeout).map_err(|e| e.to_string())?;

    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(req.as_bytes()).map_err(|e| format!("send {method} {path}: {e}"))?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| format!("read {method} {path}: {e}"))?;
    let text = String::from_utf8(raw).map_err(|_| "response is not UTF-8".to_string())?;
    parse_response(&text)
}

fn parse_response(text: &str) -> Result<ClientResponse, String> {
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("response without header terminator: {text:.80}"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line '{status_line}'"))?;
    Ok(ClientResponse { status, body: body.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_text() {
        let r = parse_response("HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\nno").unwrap();
        assert_eq!(r.status, 404);
        assert_eq!(r.body, "no");
        assert!(parse_response("garbage").is_err());
    }
}
