//! Minimal blocking HTTP/1.1 client over `TcpStream`, shared by the smoke
//! binary, the router, the example client, and the integration tests. One
//! request per connection, matching the server's `Connection: close`
//! contract.
//!
//! [`get_with_retry`] layers capped exponential backoff with jitter on top
//! of [`get`] for transient failures (refused connects during startup,
//! `503` queue overflow, torn responses). Refused connects fail instantly
//! at the OS level, so they sleep a short fixed [`RetryPolicy::refused_delay`]
//! instead of the exponential schedule — a shard mid-restart should not
//! burn the wall-clock budget on a dead socket. Retries are restricted to
//! GETs — they are idempotent here — a `POST /batch` that dies mid-flight
//! may already have been scored, so replaying it is the caller's decision.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use dd_linalg::Pcg32;

/// A parsed response: status code and body text.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body decoded as UTF-8.
    pub body: String,
}

/// A transport-level failure, classified so retry loops can treat an
/// instantly-failing refused connect differently from a timeout or a torn
/// response that already cost real wall-clock time.
#[derive(Debug, Clone)]
pub struct TransportError {
    /// `true` when the OS refused the connection outright — nothing is
    /// bound to the port (typical of a shard mid-restart). The failure was
    /// instant, so retrying after a short fixed delay is cheap.
    pub refused: bool,
    /// Human-readable description naming the failing stage.
    pub message: String,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Issues `GET path` against `addr` (`host:port`, no scheme).
pub fn get(addr: &str, path: &str) -> Result<ClientResponse, String> {
    get_with_headers(addr, path, &[])
}

/// [`get`] with extra request headers (e.g. `traceparent` propagation).
pub fn get_with_headers(
    addr: &str,
    path: &str,
    headers: &[(&str, &str)],
) -> Result<ClientResponse, String> {
    request(addr, "GET", path, None, headers).map_err(|e| e.message)
}

/// Retry policy for [`get_with_retry`]: capped exponential backoff with
/// equal jitter from a seeded [`Pcg32`], bounded by both an attempt count
/// and a wall-clock budget.
///
/// Attempt `n` (0-based) sleeps `d/2 + U(0,1)·d/2` where
/// `d = min(base_delay · 2ⁿ, max_delay)` — the deterministic half keeps a
/// real backoff floor, the jittered half de-synchronises clients hammering
/// a recovering server. The same seed always yields the same sleep
/// schedule, so a failing run is replayable. Refused connects are the
/// exception: they sleep the fixed [`refused_delay`](Self::refused_delay)
/// because the failed attempt itself consumed no time.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` disables retries).
    pub attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_delay: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_delay: Duration,
    /// Wall-clock budget across all attempts and sleeps: no retry starts
    /// after this much time has elapsed.
    pub budget: Duration,
    /// Fixed sleep before retrying a connection the OS refused outright.
    /// Refused connects fail in microseconds — during a shard restart the
    /// listener reappears quickly, so a short fixed delay converges faster
    /// than the exponential schedule and spends almost none of `budget`.
    pub refused_delay: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(1),
            budget: Duration::from_secs(10),
            refused_delay: Duration::from_millis(10),
            seed: 0x9E3779B97F4A7C15,
        }
    }
}

impl RetryPolicy {
    /// The capped, jittered sleep before retry number `attempt` (0-based).
    /// Crate-visible so the router's failover loop can pace its retry
    /// rounds on the same schedule.
    pub(crate) fn backoff(&self, attempt: u32, rng: &mut Pcg32) -> Duration {
        let doubling = 1u64 << attempt.min(20);
        let capped = self
            .base_delay
            .saturating_mul(doubling.min(u64::from(u32::MAX)) as u32)
            .min(self.max_delay);
        capped.div_f64(2.0) + capped.mul_f64(rng.next_f64() / 2.0)
    }
}

/// Why (or whether) a request outcome is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transient {
    /// A deliberate server answer (2xx/4xx/500) — final, do not retry.
    No,
    /// The OS refused the connect: nothing bound (shard restarting).
    Refused,
    /// Any other transport failure: reset, timeout, torn response.
    Transport,
    /// `503`: the bounded accept queue is full — transient by design.
    OverCapacity,
}

fn classify(outcome: &Result<ClientResponse, TransportError>) -> Transient {
    match outcome {
        Ok(resp) if resp.status == 503 => Transient::OverCapacity,
        Ok(_) => Transient::No,
        Err(e) if e.refused => Transient::Refused,
        Err(_) => Transient::Transport,
    }
}

/// Per-cause retry tallies, accumulated by [`get_with_retry_counted`]. The
/// router feeds these into its `/metrics` so failovers are attributable:
/// a burst of `refused` means a shard restarted, `over_capacity` means the
/// fleet is undersized.
#[derive(Debug, Default, Clone, Copy)]
pub struct RetryCounters {
    /// Retries after the OS refused the connection outright.
    pub refused: u64,
    /// Retries after any other transport failure (reset, timeout, torn
    /// response).
    pub other_transport: u64,
    /// Retries after a `503` over-capacity answer.
    pub over_capacity: u64,
}

impl RetryCounters {
    /// Total retries across all causes.
    pub fn total(&self) -> u64 {
        self.refused + self.other_transport + self.over_capacity
    }
}

/// Issues `GET path`, retrying transient failures per `policy`.
///
/// Only GETs get a retry wrapper: every GET endpoint the server exposes is
/// idempotent, so replaying one is always safe. On exhaustion the last
/// outcome is returned as-is (a `503` response stays an `Ok` so callers
/// can still read the status).
pub fn get_with_retry(
    addr: &str,
    path: &str,
    policy: &RetryPolicy,
) -> Result<ClientResponse, String> {
    get_with_retry_counted(addr, path, &[], policy, &mut RetryCounters::default())
}

/// [`get_with_retry`] with extra headers and per-cause retry accounting.
///
/// Refused connects sleep [`RetryPolicy::refused_delay`] instead of the
/// exponential backoff; every retry increments the matching field of
/// `counters` so callers can export attribution metrics.
pub fn get_with_retry_counted(
    addr: &str,
    path: &str,
    headers: &[(&str, &str)],
    policy: &RetryPolicy,
    counters: &mut RetryCounters,
) -> Result<ClientResponse, String> {
    let mut rng = Pcg32::seed_from_u64(policy.seed);
    // dd-lint: allow(trace-hygiene) — retry-budget accounting; the client
    // library has no observer to attach a span to.
    let start = Instant::now();
    let attempts = policy.attempts.max(1);
    let mut outcome = request(addr, "GET", path, None, headers);
    for attempt in 0..attempts - 1 {
        let sleep = match classify(&outcome) {
            Transient::No => break,
            Transient::Refused => {
                counters.refused += 1;
                policy.refused_delay
            }
            Transient::Transport => {
                counters.other_transport += 1;
                policy.backoff(attempt, &mut rng)
            }
            Transient::OverCapacity => {
                counters.over_capacity += 1;
                policy.backoff(attempt, &mut rng)
            }
        };
        if start.elapsed() + sleep > policy.budget {
            break;
        }
        std::thread::sleep(sleep);
        outcome = request(addr, "GET", path, None, headers);
    }
    outcome.map_err(|e| e.message)
}

/// Issues `GET path` with headers, surfacing the classified
/// [`TransportError`] on failure. The router's failover loop needs
/// [`TransportError::refused`] to pick the right retry pacing.
pub fn get_classified(
    addr: &str,
    path: &str,
    headers: &[(&str, &str)],
) -> Result<ClientResponse, TransportError> {
    request(addr, "GET", path, None, headers)
}

/// Issues `POST path` with headers, surfacing the classified
/// [`TransportError`] on failure.
pub fn post_classified(
    addr: &str,
    path: &str,
    body: &str,
    headers: &[(&str, &str)],
) -> Result<ClientResponse, TransportError> {
    request(addr, "POST", path, Some(body), headers)
}

/// Issues `POST path` with `body` against `addr` (`host:port`, no scheme).
pub fn post(addr: &str, path: &str, body: &str) -> Result<ClientResponse, String> {
    post_with_headers(addr, path, body, &[])
}

/// [`post`] with extra request headers (e.g. `traceparent` propagation).
pub fn post_with_headers(
    addr: &str,
    path: &str,
    body: &str,
    headers: &[(&str, &str)],
) -> Result<ClientResponse, String> {
    request(addr, "POST", path, Some(body), headers).map_err(|e| e.message)
}

fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    headers: &[(&str, &str)],
) -> Result<ClientResponse, TransportError> {
    let addr = addr.strip_prefix("http://").unwrap_or(addr).trim_end_matches('/');
    let fail = |stage: String, e: &std::io::Error| TransportError {
        refused: e.kind() == std::io::ErrorKind::ConnectionRefused,
        message: format!("{stage}: {e}"),
    };
    let mut stream = TcpStream::connect(addr).map_err(|e| fail(format!("connect {addr}"), &e))?;
    let timeout = Some(Duration::from_secs(30));
    stream.set_read_timeout(timeout).map_err(|e| fail("set timeout".to_string(), &e))?;
    stream.set_write_timeout(timeout).map_err(|e| fail("set timeout".to_string(), &e))?;

    let body = body.unwrap_or("");
    let mut req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len(),
    );
    for (k, v) in headers {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    req.push_str("\r\n");
    req.push_str(body);
    stream.write_all(req.as_bytes()).map_err(|e| fail(format!("send {method} {path}"), &e))?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| fail(format!("read {method} {path}"), &e))?;
    let text = String::from_utf8(raw).map_err(|_| TransportError {
        refused: false,
        message: "response is not UTF-8".to_string(),
    })?;
    parse_response(&text)
}

fn parse_response(text: &str) -> Result<ClientResponse, TransportError> {
    let torn = |message: String| TransportError { refused: false, message };
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| torn(format!("response without header terminator: {text:.80}")))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| torn(format!("bad status line '{status_line}'")))?;
    Ok(ClientResponse { status, body: body.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_text() {
        let r = parse_response("HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\nno").unwrap();
        assert_eq!(r.status, 404);
        assert_eq!(r.body, "no");
        assert!(parse_response("garbage").is_err());
    }

    #[test]
    fn backoff_is_capped_jittered_and_replayable() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(300),
            ..RetryPolicy::default()
        };
        let mut a = Pcg32::seed_from_u64(7);
        let mut b = Pcg32::seed_from_u64(7);
        for attempt in 0..8 {
            let d = policy.backoff(attempt, &mut a);
            // Equal jitter: between half the capped delay and the full one.
            let cap = Duration::from_millis(50)
                .saturating_mul(1 << attempt)
                .min(Duration::from_millis(300));
            assert!(d >= cap.div_f64(2.0), "attempt {attempt}: {d:?} under floor");
            assert!(d <= cap, "attempt {attempt}: {d:?} over cap {cap:?}");
            // Same seed, same schedule.
            assert_eq!(d, policy.backoff(attempt, &mut b));
        }
        // Huge attempt numbers must not overflow the doubling.
        let _ = policy.backoff(u32::MAX, &mut a);
    }

    #[test]
    fn transport_errors_and_503_retry_but_real_answers_do_not() {
        let refused = TransportError { refused: true, message: "connect: refused".into() };
        assert_eq!(classify(&Err(refused)), Transient::Refused);
        let torn = TransportError { refused: false, message: "read: reset".into() };
        assert_eq!(classify(&Err(torn)), Transient::Transport);
        assert_eq!(
            classify(&Ok(ClientResponse { status: 503, body: String::new() })),
            Transient::OverCapacity
        );
        for status in [200, 400, 404, 408, 500, 502] {
            assert_eq!(
                classify(&Ok(ClientResponse { status, body: String::new() })),
                Transient::No
            );
        }
    }

    #[test]
    fn retry_against_a_dead_port_exhausts_quickly_and_reports_the_error() {
        // Bind-then-drop guarantees a port nothing is listening on.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let policy = RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(100),
            budget: Duration::from_secs(5),
            refused_delay: Duration::from_millis(1),
            seed: 1,
        };
        let mut counters = RetryCounters::default();
        let start = Instant::now();
        let out = get_with_retry_counted(
            &format!("127.0.0.1:{port}"),
            "/healthz",
            &[],
            &policy,
            &mut counters,
        );
        assert!(out.is_err(), "nothing listens there");
        assert!(out.unwrap_err().contains("connect"), "error names the failing stage");
        // Refused connects take the fixed short delay, not the exponential
        // schedule: two 1 ms sleeps, far under the 50–100 ms backoff floor.
        assert!(start.elapsed() < Duration::from_millis(75), "refused retries must be cheap");
        assert_eq!(counters.refused, 2, "both retries were refused connects");
        assert_eq!(counters.other_transport, 0);
        assert_eq!(counters.over_capacity, 0);
        assert_eq!(counters.total(), 2);
    }
}
