//! `dd-serve` — a concurrent directionality query fleet.
//!
//! Serves tie-direction scores from a trained
//! [`DirectionalityModel`](deepdirect::DirectionalityModel) over HTTP/1.1,
//! built entirely on `std` networking (the build is offline/vendored — no
//! tokio, no hyper). The design is deliberately production-shaped:
//!
//! - **Worker pool + bounded accept queue** ([`server`]): a fixed number of
//!   threads drain a `sync_channel` of accepted connections; overflow is
//!   answered with `503` instead of queueing without bound.
//! - **Hot model reload** ([`slot`]): the model lives in an `Arc`-swappable
//!   [`ModelSlot`]; `POST /admin/reload` swaps a new artifact in with zero
//!   downtime while in-flight requests finish on the model they started
//!   with. The fingerprint-keyed cache makes stale entries structurally
//!   impossible.
//! - **Sharded fleet** ([`router`]): `dd-router` consistent-hashes ties
//!   across N shard processes, fails over on shard death, quarantines and
//!   re-probes unhealthy shards, and aggregates `/metrics` with per-shard
//!   labels. `dd serve --shards N` supervises a whole fleet.
//! - **Per-request timeouts** ([`http`]): slow or hostile clients hit
//!   read/write deadlines and size limits, never pinning a worker.
//! - **Sharded LRU score cache** ([`lru`]): entries are keyed by the
//!   model's content fingerprint, so scores from a swapped-out model
//!   simply stop matching; eviction only bounds memory, and reloads purge
//!   dead-generation entries so they never squat on capacity.
//! - **Streaming ingestion** (`--stream`): `POST /ingest` folds JSONL
//!   follow/unfollow/reciprocation events into the frozen embedding space
//!   through a [`StreamEngine`](dd_stream::StreamEngine) — new ties score
//!   within one request, no retraining, with exact per-key cache
//!   invalidation and bit-identical replay (DESIGN.md §7.15).
//! - **Observability**: per-endpoint request counters and latency
//!   histograms in a [`Registry`](dd_telemetry::Registry) exported at
//!   `GET /metrics`, plus structured JSONL request logs (with model
//!   fingerprint + reload generation on every trace root) through the
//!   dd-telemetry event sink. `traceparent` propagates client → router →
//!   shard, so a routed request is one trace across processes.
//! - **Graceful shutdown** ([`signal`]): SIGINT/SIGTERM set a flag; the
//!   fleet drains router first, then shards, flushing logs.
//!
//! # Endpoints (shard and router)
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness + model identity (router: per-shard fan-out) |
//! | `GET /score?src=A&dst=B` | one directionality score (404 on unknown tie) |
//! | `POST /batch` | JSONL of `{"src":A,"dst":B}` → JSONL of scores |
//! | `POST /ingest` | JSONL tie events → incremental fold-in (`--stream`; router: all-shard fan-out) |
//! | `POST /admin/reload` | `{"path":"…"}` → swap in a new model artifact |
//! | `GET /metrics` | Prometheus text exposition |
//!
//! See README.md "Serving" / "Fleet serving" for the full wire contract.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod lru;
pub mod router;
pub mod server;
pub mod signal;
pub mod slot;

pub use lru::ScoreCache;
pub use router::{Router, RouterConfig, RouterHandle, RouterHealth, ShardHealth};
pub use server::{
    HealthResponse, IngestResponse, ReloadRequest, ReloadResponse, ScoreResponse, ServeConfig,
    Server, ServerHandle, TiePair,
};
pub use slot::{ModelSlot, SlotReader};
