//! `dd-serve` — a concurrent directionality query server.
//!
//! Serves tie-direction scores from a frozen, trained
//! [`DirectionalityModel`](deepdirect::DirectionalityModel) over HTTP/1.1,
//! built entirely on `std` networking (the build is offline/vendored — no
//! tokio, no hyper). The design is deliberately production-shaped:
//!
//! - **Worker pool + bounded accept queue** ([`server`]): a fixed number of
//!   threads drain a `sync_channel` of accepted connections; overflow is
//!   answered with `503` instead of queueing without bound.
//! - **Per-request timeouts** ([`http`]): slow or hostile clients hit
//!   read/write deadlines and size limits, never pinning a worker.
//! - **Sharded LRU score cache** ([`lru`]): scores are pure functions of
//!   the frozen model, so cache entries cannot go stale; eviction only
//!   bounds memory.
//! - **Observability**: per-endpoint request counters and latency
//!   histograms in a [`Registry`](dd_telemetry::Registry) exported at
//!   `GET /metrics`, plus structured JSONL request logs through the
//!   dd-telemetry event sink.
//! - **Graceful shutdown** ([`signal`]): SIGINT/SIGTERM set a flag; the
//!   server stops accepting, drains in-flight requests, and flushes logs.
//!
//! # Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /healthz` | liveness + model summary |
//! | `GET /score?src=A&dst=B` | one directionality score (404 on unknown tie) |
//! | `POST /batch` | JSONL of `{"src":A,"dst":B}` → JSONL of scores |
//! | `GET /metrics` | plain-text registry dump |
//!
//! See README.md "Serving" for the full wire contract and examples.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod lru;
pub mod server;
pub mod signal;

pub use lru::ScoreCache;
pub use server::{ScoreResponse, ServeConfig, Server, ServerHandle, TiePair};
