//! Process-level shutdown flag wired to SIGINT/SIGTERM without external
//! crates: std links libc on unix, so `signal(2)` is already in the binary.
//! The handler only stores an `AtomicBool` (async-signal-safe); the serve
//! loop polls the flag and runs the actual graceful drain outside signal
//! context.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has been received (or requested in-process).
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// Requests shutdown programmatically, as if SIGINT had arrived. Used by
/// tests and available to embedders.
pub fn request_shutdown() {
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs SIGINT and SIGTERM handlers that set the shutdown flag.
/// Idempotent. A no-op on non-unix targets (ctrl-c then terminates the
/// process the default way).
#[cfg(unix)]
pub fn install_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        let _ = signal(SIGINT, on_signal);
        let _ = signal(SIGTERM, on_signal);
    }
}

/// Installs SIGINT and SIGTERM handlers that set the shutdown flag.
#[cfg(not(unix))]
pub fn install_handlers() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_request_sets_flag() {
        install_handlers();
        request_shutdown();
        assert!(shutdown_requested());
    }
}
