//! Process-level shutdown flag wired to SIGINT/SIGTERM without external
//! crates: std links libc on unix, so `signal(2)` is already in the binary.
//! The handler only stores an `AtomicBool` (async-signal-safe); the serve
//! loop polls the flag and runs the actual graceful drain outside signal
//! context.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has been received (or requested in-process).
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// Requests shutdown programmatically, as if SIGINT had arrived. Used by
/// tests and available to embedders.
pub fn request_shutdown() {
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs SIGINT and SIGTERM handlers that set the shutdown flag.
/// Idempotent. A no-op on non-unix targets (ctrl-c then terminates the
/// process the default way).
#[cfg(unix)]
pub fn install_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        let _ = signal(SIGINT, on_signal);
        let _ = signal(SIGTERM, on_signal);
    }
}

/// Installs SIGINT and SIGTERM handlers that set the shutdown flag.
#[cfg(not(unix))]
pub fn install_handlers() {}

/// Sends SIGINT to `pid`, asking it for a graceful drain — the fleet
/// supervisor uses this to cascade its own shutdown to shard children.
/// Returns `false` when the signal could not be delivered (process already
/// gone). `kill(2)` comes from the libc std already links, mirroring
/// [`install_handlers`].
#[cfg(unix)]
pub fn interrupt_process(pid: u32) -> bool {
    extern "C" {
        fn kill(pid: i32, signum: i32) -> i32;
    }
    const SIGINT: i32 = 2;
    let Ok(pid) = i32::try_from(pid) else { return false };
    unsafe { kill(pid, SIGINT) == 0 }
}

/// Sends SIGINT to `pid`. Always `false` on non-unix targets: the fleet
/// supervisor falls back to killing the child outright.
#[cfg(not(unix))]
pub fn interrupt_process(_pid: u32) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programmatic_request_sets_flag() {
        install_handlers();
        request_shutdown();
        assert!(shutdown_requested());
    }
}
