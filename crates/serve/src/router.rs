//! The fleet router: consistent-hash request fan-out over shard replicas.
//!
//! A [`Router`] sits in front of N `dd-serve` shard processes (full
//! replicas today; the hash ring makes a future embedding partition a
//! config change, not a redesign — DESIGN.md §7.14). `(src, dst)` queries
//! are consistent-hashed onto the ring, forwarded to the owning shard with
//! `traceparent` propagated so a routed request is one trace across
//! processes, and failed over to the next ring candidate on transport
//! errors. Shards accumulate consecutive failures, get marked unhealthy,
//! and are re-probed via `/healthz` by a background prober until they
//! rejoin. `/metrics` aggregates router traffic with per-shard labels.
//!
//! The router never holds a model: `/score` and `/batch` are pure
//! forwards, `/admin/reload` and `/ingest` fan out to every shard (shards
//! are full replicas, so every one must see every reload and every tie
//! event), `/healthz` reports fleet state with per-shard fingerprints and
//! reload generations.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dd_linalg::bytes::{fnv1a64, FNV64_SEED};
use dd_linalg::Pcg32;
use dd_runtime::{spawn_named, Threads, WorkerPool};
use dd_telemetry::export::{prometheus_text, PromFamily};
use dd_telemetry::trace::{
    derive_span_id, derive_trace_id, format_traceparent, now_seconds, parse_traceparent,
    SpanContext,
};
use dd_telemetry::{Counter, Event, Gauge, Histogram, MetricSnapshot, ObserverHandle, Registry};
use serde::{Deserialize, Serialize};

use crate::client::{self, ClientResponse, RetryPolicy};
use crate::http;
use crate::server::TiePair;

const JSON: &str = "application/json";
const NDJSON: &str = "application/x-ndjson";
const PROM_TEXT: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Router configuration. `Default` must be given `shards` before use.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Shard addresses (`host:port`), one per `dd-serve` process.
    pub shards: Vec<String>,
    /// Worker threads forwarding requests.
    pub workers: usize,
    /// Accepted connections that may queue before `503`.
    pub queue_depth: usize,
    /// Per-request read/write timeout on the client side of the router.
    pub request_timeout: Duration,
    /// Pacing for failover rounds after every candidate shard failed once.
    pub retry: RetryPolicy,
    /// Consecutive forward failures before a shard is marked unhealthy and
    /// demoted to last-resort candidate until a probe revives it.
    pub unhealthy_after: u32,
    /// Background `/healthz` probe cadence for unhealthy shards.
    pub probe_interval: Duration,
    /// Virtual nodes per shard on the hash ring. More vnodes smooth the
    /// key distribution; 32 keeps the ring a few hundred entries.
    pub vnodes: usize,
    /// Structured request-log sink.
    pub observer: ObserverHandle,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:8070".to_string(),
            shards: Vec::new(),
            workers: 4,
            queue_depth: 64,
            request_timeout: Duration::from_secs(5),
            retry: RetryPolicy::default(),
            unhealthy_after: 3,
            probe_interval: Duration::from_millis(200),
            vnodes: 32,
            observer: ObserverHandle::none(),
        }
    }
}

impl RouterConfig {
    fn validate(&self) -> Result<(), String> {
        if self.shards.is_empty() {
            return Err("router: need at least one shard address".into());
        }
        if self.workers == 0 {
            return Err("router: need at least one worker".into());
        }
        if self.queue_depth == 0 {
            return Err("router: queue depth must be positive".into());
        }
        if self.vnodes == 0 {
            return Err("router: need at least one vnode per shard".into());
        }
        Ok(())
    }
}

/// Consistent-hash ring: sorted `(hash, shard_index)` points, `vnodes`
/// entries per shard. Lookup walks clockwise from the key's position and
/// yields each distinct shard once — the natural failover order.
struct Ring {
    points: Vec<(u64, usize)>,
    n_shards: usize,
}

impl Ring {
    fn build(shards: &[String], vnodes: usize) -> Self {
        let mut points: Vec<(u64, usize)> = Vec::with_capacity(shards.len() * vnodes);
        for (i, addr) in shards.iter().enumerate() {
            for v in 0..vnodes {
                points.push((fnv1a64(format!("{addr}#{v}").as_bytes(), FNV64_SEED), i));
            }
        }
        points.sort_unstable();
        Ring { points, n_shards: shards.len() }
    }

    /// Every shard index, ordered by ring distance from `key` (the first
    /// entry owns the key; the rest are the failover sequence).
    fn candidates(&self, key: u64) -> Vec<usize> {
        let start = self.points.partition_point(|&(h, _)| h < key);
        let mut out = Vec::with_capacity(self.n_shards);
        for i in 0..self.points.len() {
            let (_, shard) = self.points[(start + i) % self.points.len()];
            if !out.contains(&shard) {
                out.push(shard);
                if out.len() == self.n_shards {
                    break;
                }
            }
        }
        out
    }
}

/// Hash key for a tie: the router's unit of placement.
fn tie_hash(src: u32, dst: u32) -> u64 {
    let mut bytes = [0u8; 8];
    bytes[..4].copy_from_slice(&src.to_le_bytes());
    bytes[4..].copy_from_slice(&dst.to_le_bytes());
    fnv1a64(&bytes, FNV64_SEED)
}

/// Live state for one shard behind the router.
struct ShardState {
    addr: String,
    healthy: AtomicBool,
    consecutive_failures: AtomicU32,
    forwards: Arc<Counter>,
    failures: Arc<Counter>,
    healthy_gauge: Arc<Gauge>,
}

impl ShardState {
    fn mark_success(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        self.healthy.store(true, Ordering::Release);
        self.healthy_gauge.set(1.0);
    }

    fn mark_failure(&self, unhealthy_after: u32) {
        self.failures.incr();
        let n = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= unhealthy_after && self.healthy.swap(false, Ordering::AcqRel) {
            self.healthy_gauge.set(0.0);
        }
    }

    fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Acquire)
    }
}

/// Endpoint labels for router metrics and request-log events.
const ENDPOINTS: [&str; 9] =
    ["healthz", "score", "batch", "ingest", "metrics", "admin", "other", "timeout", "malformed"];

struct EndpointMetrics {
    requests: Arc<Counter>,
    latency: Arc<Histogram>,
}

struct RouterState {
    shards: Vec<ShardState>,
    ring: Ring,
    registry: Arc<Registry>,
    observer: ObserverHandle,
    endpoints: Vec<(&'static str, EndpointMetrics)>,
    retry: RetryPolicy,
    unhealthy_after: u32,
    request_timeout: Duration,
    queue_rejections: Arc<Counter>,
    failovers: Arc<Counter>,
    retry_refused: Arc<Counter>,
    retry_transport: Arc<Counter>,
    retry_over_capacity: Arc<Counter>,
    request_seq: AtomicU64,
}

impl RouterState {
    fn new(cfg: &RouterConfig) -> Self {
        let registry = Arc::new(Registry::new());
        let endpoints = ENDPOINTS
            .iter()
            .map(|&name| {
                let m = EndpointMetrics {
                    requests: registry.counter(&format!("router.requests.{name}")),
                    latency: registry.histogram(&format!("router.latency.{name}"), 1e-5, 2.0, 23),
                };
                (name, m)
            })
            .collect();
        let shards = cfg
            .shards
            .iter()
            .map(|addr| {
                let healthy_gauge = registry.gauge(&format!("router.shard.healthy.{addr}"));
                healthy_gauge.set(1.0);
                ShardState {
                    addr: addr.clone(),
                    healthy: AtomicBool::new(true),
                    consecutive_failures: AtomicU32::new(0),
                    forwards: registry.counter(&format!("router.shard.forwards.{addr}")),
                    failures: registry.counter(&format!("router.shard.failures.{addr}")),
                    healthy_gauge,
                }
            })
            .collect();
        registry.gauge("router.shards").set(cfg.shards.len() as f64);
        RouterState {
            shards,
            ring: Ring::build(&cfg.shards, cfg.vnodes),
            observer: cfg.observer.clone(),
            endpoints,
            retry: cfg.retry.clone(),
            unhealthy_after: cfg.unhealthy_after,
            request_timeout: cfg.request_timeout,
            queue_rejections: registry.counter("router.rejected.queue_full"),
            failovers: registry.counter("router.failovers"),
            retry_refused: registry.counter("router.retry.refused"),
            retry_transport: registry.counter("router.retry.transport"),
            retry_over_capacity: registry.counter("router.retry.over_capacity"),
            request_seq: AtomicU64::new(0),
            registry,
        }
    }

    fn endpoint(&self, name: &str) -> Option<&EndpointMetrics> {
        self.endpoints.iter().find(|(n, _)| *n == name).map(|(_, m)| m)
    }

    /// Candidate order for a key: ring order, healthy shards first. An
    /// unhealthy shard stays a last-resort candidate — with every replica
    /// down it is still better to try than to fail outright.
    fn ordered_candidates(&self, key: u64) -> Vec<usize> {
        let ring_order = self.ring.candidates(key);
        let mut healthy: Vec<usize> = Vec::with_capacity(ring_order.len());
        let mut unhealthy: Vec<usize> = Vec::new();
        for i in ring_order {
            if self.shards[i].is_healthy() {
                healthy.push(i);
            } else {
                unhealthy.push(i);
            }
        }
        healthy.extend(unhealthy);
        healthy
    }

    /// Forwards one GET to the first candidate that answers, failing over
    /// through `candidates` and pacing full failed rounds with the retry
    /// policy's backoff schedule. Returns the shard index that answered.
    fn forward_get(
        &self,
        candidates: &[usize],
        path: &str,
        headers: &[(&str, &str)],
    ) -> Result<(usize, ClientResponse), String> {
        self.forward(candidates, headers, |shard, hdrs| client::get_classified(shard, path, hdrs))
    }

    /// [`forward_get`] for POST bodies. Replay across shards is safe here
    /// even though POST is not idempotent in general: shard scoring is a
    /// pure read, so a sub-batch that died mid-flight can be re-sent to a
    /// replica without double effects.
    fn forward_post(
        &self,
        candidates: &[usize],
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> Result<(usize, ClientResponse), String> {
        self.forward(candidates, headers, |shard, hdrs| {
            client::post_classified(shard, path, body, hdrs)
        })
    }

    fn forward<F>(
        &self,
        candidates: &[usize],
        headers: &[(&str, &str)],
        send: F,
    ) -> Result<(usize, ClientResponse), String>
    where
        F: Fn(&str, &[(&str, &str)]) -> Result<ClientResponse, client::TransportError>,
    {
        let mut rng = Pcg32::seed_from_u64(self.retry.seed);
        // dd-lint: allow(trace-hygiene) — failover-budget accounting on the
        // forwarding path; latency is reported via the endpoint histogram.
        let start = Instant::now();
        let rounds = self.retry.attempts.max(1);
        let mut last_err = String::from("no shards configured");
        for round in 0..rounds {
            for (nth, &i) in candidates.iter().enumerate() {
                let shard = &self.shards[i];
                shard.forwards.incr();
                match send(&shard.addr, headers) {
                    Ok(resp) if resp.status != 503 => {
                        shard.mark_success();
                        if nth > 0 || round > 0 {
                            self.failovers.incr();
                        }
                        return Ok((i, resp));
                    }
                    Ok(resp) => {
                        // Shard alive but over capacity: not a health
                        // strike, but try the next replica.
                        self.retry_over_capacity.incr();
                        last_err = format!("{}: 503 {}", shard.addr, resp.body);
                    }
                    Err(e) => {
                        if e.refused {
                            self.retry_refused.incr();
                        } else {
                            self.retry_transport.incr();
                        }
                        shard.mark_failure(self.unhealthy_after);
                        last_err = format!("{}: {}", shard.addr, e.message);
                    }
                }
            }
            // Every candidate failed this round; pace the next round. A
            // refused connect fails instantly, so without this sleep a dead
            // fleet would burn all rounds in microseconds.
            let sleep = self.retry.backoff(round, &mut rng).max(self.retry.refused_delay);
            if round + 1 >= rounds || start.elapsed() + sleep > self.retry.budget {
                break;
            }
            std::thread::sleep(sleep);
        }
        Err(last_err)
    }
}

/// `GET /healthz` payload: fleet state with per-shard model identity.
#[derive(Debug, Serialize, Deserialize)]
pub struct RouterHealth {
    /// `"ok"` when every shard answers, `"degraded"` when some (but not
    /// all) are down — the ring fails over, so this still serves — and
    /// `"down"` (with a 503) when no shard answers.
    pub status: String,
    /// Shards currently answering their `/healthz`.
    pub healthy_shards: usize,
    /// Per-shard detail, in configuration order.
    pub shards: Vec<ShardHealth>,
}

/// One shard's entry in [`RouterHealth`].
#[derive(Debug, Serialize, Deserialize)]
pub struct ShardHealth {
    /// Shard address (`host:port`).
    pub addr: String,
    /// Whether the shard answered the live probe for this request.
    pub healthy: bool,
    /// The shard's model content fingerprint, when it answered.
    pub fingerprint: Option<String>,
    /// The shard's reload generation, when it answered.
    pub generation: Option<u64>,
}

type Routed = (&'static str, u16, &'static str, Vec<u8>);

fn error_body(msg: &str) -> Vec<u8> {
    format!("{{\"error\":{}}}", serde_json::to_string(&msg.to_string()).unwrap_or_default())
        .into_bytes()
}

fn route(state: &RouterState, req: &http::Request, traceparent: &str) -> Routed {
    let fwd_headers: [(&str, &str); 1] = [("traceparent", traceparent)];
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz_endpoint(state),
        ("GET", "/score") => score_endpoint(state, req, &fwd_headers),
        ("POST", "/batch") => batch_endpoint(state, req, &fwd_headers),
        ("POST", "/ingest") => ingest_endpoint(state, req, &fwd_headers),
        ("POST", "/admin/reload") => reload_endpoint(state, req, &fwd_headers),
        ("GET", "/metrics") => {
            let families = [
                PromFamily {
                    prefix: "router.requests.",
                    family: "dd_router_requests",
                    label: "endpoint",
                    help: "Requests handled by the router, by endpoint.",
                },
                PromFamily {
                    prefix: "router.latency.",
                    family: "dd_router_latency_seconds",
                    label: "endpoint",
                    help: "Router request wall latency in seconds, by endpoint.",
                },
                PromFamily {
                    prefix: "router.shard.forwards.",
                    family: "dd_router_shard_forwards",
                    label: "shard",
                    help: "Forward attempts, by shard address.",
                },
                PromFamily {
                    prefix: "router.shard.failures.",
                    family: "dd_router_shard_failures",
                    label: "shard",
                    help: "Failed forward attempts, by shard address.",
                },
                PromFamily {
                    prefix: "router.shard.healthy.",
                    family: "dd_router_shard_healthy",
                    label: "shard",
                    help: "1 when the shard is in rotation, 0 while quarantined.",
                },
            ];
            let body = prometheus_text(&state.registry.snapshot(), &families).into_bytes();
            ("metrics", 200, PROM_TEXT, body)
        }
        (_, "/healthz" | "/score" | "/batch" | "/ingest" | "/metrics" | "/admin/reload") => {
            ("other", 405, JSON, error_body(&format!("method {} not allowed", req.method)))
        }
        (_, path) => ("other", 404, JSON, error_body(&format!("no such endpoint '{path}'"))),
    }
}

fn healthz_endpoint(state: &RouterState) -> Routed {
    let mut shards = Vec::with_capacity(state.shards.len());
    let mut healthy_shards = 0usize;
    for shard in &state.shards {
        let mut entry = ShardHealth {
            addr: shard.addr.clone(),
            healthy: false,
            fingerprint: None,
            generation: None,
        };
        if let Ok(resp) = client::get_classified(&shard.addr, "/healthz", &[]) {
            if resp.status == 200 {
                entry.healthy = true;
                healthy_shards += 1;
                shard.mark_success();
                if let Ok(h) = serde_json::from_str::<crate::server::HealthResponse>(&resp.body) {
                    entry.fingerprint = Some(h.model_fingerprint);
                    entry.generation = h.generation;
                }
            } else {
                shard.mark_failure(state.unhealthy_after);
            }
        } else {
            shard.mark_failure(state.unhealthy_after);
        }
        shards.push(entry);
    }
    let status_word = if healthy_shards == 0 {
        "down"
    } else if healthy_shards < state.shards.len() {
        "degraded"
    } else {
        "ok"
    };
    let body = RouterHealth { status: status_word.to_string(), healthy_shards, shards };
    // Partial outages still serve (the ring fails over), so only a fully
    // dead fleet is a 503.
    let status = if healthy_shards == 0 { 503 } else { 200 };
    ("healthz", status, JSON, serde_json::to_string(&body).unwrap_or_default().into_bytes())
}

fn parse_id(req: &http::Request, key: &str) -> Result<u32, String> {
    match req.query_param(key) {
        None => Err(format!("missing query parameter '{key}' (expected /score?src=A&dst=B)")),
        Some(raw) => raw
            .parse::<u32>()
            .map_err(|_| format!("query parameter '{key}' must be a node id, got '{raw}'")),
    }
}

fn score_endpoint(state: &RouterState, req: &http::Request, headers: &[(&str, &str)]) -> Routed {
    let (src, dst) = match (parse_id(req, "src"), parse_id(req, "dst")) {
        (Ok(s), Ok(d)) => (s, d),
        (Err(e), _) | (_, Err(e)) => return ("score", 400, JSON, error_body(&e)),
    };
    let candidates = state.ordered_candidates(tie_hash(src, dst));
    let path = format!("/score?src={src}&dst={dst}");
    match state.forward_get(&candidates, &path, headers) {
        Ok((_, resp)) => {
            // Shard verdicts (200 score, 404 unknown tie, 400) pass through
            // verbatim — the router adds routing, not semantics.
            ("score", resp.status, JSON, resp.body.into_bytes())
        }
        Err(e) => ("score", 502, JSON, error_body(&format!("all shards failed: {e}"))),
    }
}

fn batch_endpoint(state: &RouterState, req: &http::Request, headers: &[(&str, &str)]) -> Routed {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return ("batch", 400, JSON, error_body("body must be UTF-8 JSONL"));
    };
    // Parse every line up front so a malformed batch is rejected before any
    // shard sees a partial forward.
    let mut pairs: Vec<TiePair> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<TiePair>(line) {
            Ok(p) => pairs.push(p),
            Err(e) => {
                return (
                    "batch",
                    400,
                    JSON,
                    error_body(&format!("line {}: expected {{\"src\":A,\"dst\":B}}: {e}", i + 1)),
                )
            }
        }
    }
    if pairs.is_empty() {
        return ("batch", 400, JSON, error_body("empty batch: send one JSON pair per line"));
    }

    // Group pairs by owning shard (ring candidate order is per-tie, so the
    // groups also carry their failover sequences), forward each sub-batch,
    // then reassemble responses in the original request order.
    let mut groups: Vec<(Vec<usize>, Vec<usize>)> = Vec::new(); // (candidates, pair indices)
    for (idx, p) in pairs.iter().enumerate() {
        let candidates = state.ordered_candidates(tie_hash(p.src, p.dst));
        match groups.iter_mut().find(|(c, _)| c.first() == candidates.first()) {
            Some((_, members)) => members.push(idx),
            None => groups.push((candidates, vec![idx])),
        }
    }

    let mut lines: Vec<Option<String>> = vec![None; pairs.len()];
    for (candidates, members) in &groups {
        let mut body = String::new();
        for &idx in members {
            body.push_str(&serde_json::to_string(&pairs[idx]).unwrap_or_default());
            body.push('\n');
        }
        let resp = match state.forward_post(candidates, "/batch", &body, headers) {
            Ok((_, resp)) if resp.status == 200 => resp,
            Ok((i, resp)) => {
                return (
                    "batch",
                    502,
                    JSON,
                    error_body(&format!(
                        "shard {} rejected sub-batch with {}: {}",
                        state.shards[i].addr, resp.status, resp.body
                    )),
                )
            }
            Err(e) => return ("batch", 502, JSON, error_body(&format!("all shards failed: {e}"))),
        };
        let mut got = resp.body.lines().filter(|l| !l.trim().is_empty());
        for &idx in members {
            match got.next() {
                Some(line) => lines[idx] = Some(line.to_string()),
                None => {
                    return (
                        "batch",
                        502,
                        JSON,
                        error_body("shard returned fewer lines than its sub-batch"),
                    )
                }
            }
        }
    }
    let mut out = String::new();
    for line in lines.into_iter().flatten() {
        out.push_str(&line);
        out.push('\n');
    }
    ("batch", 200, NDJSON, out.into_bytes())
}

/// `POST /admin/reload` fans out to every shard so the whole fleet swaps to
/// the new artifact. The response aggregates each shard's verdict; the
/// status is `200` only when every shard reloaded.
fn reload_endpoint(state: &RouterState, req: &http::Request, headers: &[(&str, &str)]) -> Routed {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return ("admin", 400, JSON, error_body("body must be UTF-8 JSON"));
    };
    let mut results = Vec::with_capacity(state.shards.len());
    let mut all_ok = true;
    for shard in &state.shards {
        let (ok, detail) =
            match client::post_classified(&shard.addr, "/admin/reload", body, headers) {
                Ok(resp) if resp.status == 200 => (true, resp.body),
                Ok(resp) => (false, format!("status {}: {}", resp.status, resp.body)),
                Err(e) => (false, e.message),
            };
        all_ok &= ok;
        results.push(format!(
            "{{\"addr\":{},\"ok\":{ok},\"detail\":{}}}",
            serde_json::to_string(&shard.addr).unwrap_or_default(),
            if ok { detail } else { serde_json::to_string(&detail).unwrap_or_default() },
        ));
    }
    let status = if all_ok { 200 } else { 502 };
    let body = format!("{{\"shards\":[{}]}}", results.join(","));
    ("admin", status, JSON, body.into_bytes())
}

/// `POST /ingest` fans the event batch out to every shard: shards are full
/// replicas, so each must fold in the same events to keep serving
/// bit-identical scores. The response aggregates per-shard verdicts; the
/// status is `200` only when every shard applied the batch. No failover
/// here — a shard that missed a batch would silently diverge, so a partial
/// fan-out is reported as `502` for the operator to replay the event log.
fn ingest_endpoint(state: &RouterState, req: &http::Request, headers: &[(&str, &str)]) -> Routed {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return ("ingest", 400, JSON, error_body("body must be UTF-8 JSONL"));
    };
    let mut results = Vec::with_capacity(state.shards.len());
    let mut all_ok = true;
    for shard in &state.shards {
        let (ok, detail) = match client::post_classified(&shard.addr, "/ingest", body, headers) {
            Ok(resp) if resp.status == 200 => (true, resp.body),
            Ok(resp) => (false, format!("status {}: {}", resp.status, resp.body)),
            Err(e) => (false, e.message),
        };
        all_ok &= ok;
        results.push(format!(
            "{{\"addr\":{},\"ok\":{ok},\"detail\":{}}}",
            serde_json::to_string(&shard.addr).unwrap_or_default(),
            if ok { detail } else { serde_json::to_string(&detail).unwrap_or_default() },
        ));
    }
    let status = if all_ok { 200 } else { 502 };
    let body = format!("{{\"shards\":[{}]}}", results.join(","));
    ("ingest", status, JSON, body.into_bytes())
}

fn handle_connection(state: &RouterState, stream: TcpStream, accepted: Instant) {
    // dd-lint: allow(trace-hygiene) — request latency measurement for the
    // router's endpoint histograms and access log.
    let start = Instant::now();
    let start_seconds = now_seconds();
    let queue_seconds = start.saturating_duration_since(accepted).as_secs_f64();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(state.request_timeout));
    let _ = stream.set_write_timeout(Some(state.request_timeout));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let parsed = http::read_request(&mut reader);

    let seq = state.request_seq.fetch_add(1, Ordering::Relaxed);
    let client_trace =
        parsed.as_ref().ok().and_then(|r| r.header("traceparent")).and_then(parse_traceparent);
    let trace_id = client_trace.unwrap_or_else(|| derive_trace_id(seq, "router.request"));
    let root_sid = derive_span_id(trace_id, 0, "router.request", seq);
    // The shard sees the router's span as its parent: one trace, three
    // processes (client → router → shard).
    let fwd_traceparent = format_traceparent(SpanContext { trace_id, span_id: root_sid });

    let (endpoint, status, content_type, body) = match parsed {
        Ok(req) => match catch_unwind(AssertUnwindSafe(|| route(state, &req, &fwd_traceparent))) {
            Ok(routed) => routed,
            Err(_) => ("other", 500, JSON, error_body("internal error: router panicked")),
        },
        Err(http::ParseError::ConnectionClosed) => return,
        Err(http::ParseError::Timeout) => {
            ("timeout", 408, JSON, error_body("timed out reading request"))
        }
        Err(e @ http::ParseError::TooLarge(_)) => {
            ("malformed", 413, JSON, error_body(&e.to_string()))
        }
        Err(e @ http::ParseError::Malformed(_)) => {
            ("malformed", 400, JSON, error_body(&e.to_string()))
        }
        Err(http::ParseError::Io(_)) => return,
    };
    let mut write_half = stream;
    let echo = format_traceparent(SpanContext { trace_id, span_id: root_sid });
    let _ = http::write_response_with_headers(
        &mut write_half,
        status,
        content_type,
        &[("traceparent", echo)],
        &body,
    );
    let seconds = start.elapsed().as_secs_f64();
    if let Some(m) = state.endpoint(endpoint) {
        m.requests.incr();
        m.latency.record(seconds);
    }
    if state.observer.is_enabled() {
        let mut e =
            Event::serve_request(endpoint, status, seconds).with_trace(trace_id, root_sid, None);
        e.name = Some(format!("router.{endpoint}"));
        e.start_seconds = Some(start_seconds);
        e.fields = Some(vec![("queue_seconds".to_string(), queue_seconds)]);
        state.observer.on_event(&e);
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: SyncSender<(TcpStream, Instant)>,
    shutdown: Arc<AtomicBool>,
    state: Arc<RouterState>,
) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            // dd-lint: allow(trace-hygiene) — queue-wait enqueue timestamp.
            Ok(stream) => match tx.try_send((stream, Instant::now())) {
                Ok(()) => {}
                Err(TrySendError::Full((stream, _))) => {
                    state.queue_rejections.incr();
                    let mut stream = stream;
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                    let _ = http::write_response(
                        &mut stream,
                        503,
                        JSON,
                        &error_body("router queue full, retry later"),
                    );
                }
                Err(TrySendError::Disconnected(_)) => break,
            },
            Err(_) if shutdown.load(Ordering::SeqCst) => break,
            Err(_) => {}
        }
    }
}

fn worker_loop(rx: Arc<Mutex<Receiver<(TcpStream, Instant)>>>, state: Arc<RouterState>) {
    loop {
        // dd-lint: allow(blocking-while-locked) — shared-receiver idiom:
        // the mutex IS the recv token for the shard pool, held only for
        // the blocking recv itself
        let next = { rx.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).recv() };
        match next {
            Ok((stream, accepted)) => {
                let _ =
                    catch_unwind(AssertUnwindSafe(|| handle_connection(&state, stream, accepted)));
            }
            Err(_) => break,
        }
    }
}

/// Re-probes quarantined shards until they answer `/healthz` again, then
/// puts them back in rotation. Healthy shards are left alone — the request
/// path itself is their health signal.
fn prober_loop(state: Arc<RouterState>, shutdown: Arc<AtomicBool>, interval: Duration) {
    while !shutdown.load(Ordering::SeqCst) {
        for shard in &state.shards {
            if shard.is_healthy() {
                continue;
            }
            if let Ok(resp) = client::get_classified(&shard.addr, "/healthz", &[]) {
                if resp.status == 200 {
                    shard.mark_success();
                }
            }
        }
        std::thread::sleep(interval);
    }
}

/// The router factory. See [`Router::start`].
pub struct Router;

impl Router {
    /// Binds `cfg.addr`, spawns the acceptor, worker pool, and health
    /// prober, and returns a handle. The router owns no model — every
    /// score is answered by a shard.
    pub fn start(cfg: RouterConfig) -> Result<RouterHandle, String> {
        cfg.validate()?;
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("binding {}: {e}", cfg.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let state = Arc::new(RouterState::new(&cfg));
        let shutdown = Arc::new(AtomicBool::new(false));

        let (tx, rx) = std::sync::mpsc::sync_channel::<(TcpStream, Instant)>(cfg.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let workers = {
            let state = Arc::clone(&state);
            WorkerPool::start(
                "dd-router-worker",
                Threads::new(cfg.workers).map_err(|e| format!("router workers: {e}"))?,
                move |_| worker_loop(Arc::clone(&rx), Arc::clone(&state)),
            )?
        };
        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let state = Arc::clone(&state);
            spawn_named("dd-router-acceptor", move || accept_loop(listener, tx, shutdown, state))?
        };
        let prober = {
            let shutdown = Arc::clone(&shutdown);
            let state = Arc::clone(&state);
            let interval = cfg.probe_interval;
            spawn_named("dd-router-prober", move || prober_loop(state, shutdown, interval))?
        };

        Ok(RouterHandle {
            addr,
            registry: Arc::clone(&state.registry),
            observer: cfg.observer,
            shutdown,
            acceptor: Some(acceptor),
            prober: Some(prober),
            workers,
        })
    }
}

/// A running router. Dropping the handle shuts it down gracefully; call
/// [`RouterHandle::shutdown`] to do it explicitly and get the request
/// count back. Drain order for a fleet is router first, then shards —
/// the router finishes its queued forwards against still-live shards.
pub struct RouterHandle {
    addr: SocketAddr,
    registry: Arc<Registry>,
    observer: ObserverHandle,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
    workers: WorkerPool,
}

impl RouterHandle {
    /// The bound address (resolves port `0` to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's metric registry (same data `/metrics` renders).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// Total requests handled so far, across all endpoints.
    pub fn requests_total(&self) -> u64 {
        self.registry
            .snapshot()
            .into_iter()
            .filter(|(name, _)| name.starts_with("router.requests."))
            .map(|(_, snap)| match snap {
                MetricSnapshot::Counter(c) => c,
                _ => 0,
            })
            .sum()
    }

    /// Graceful shutdown: stop accepting, drain queued forwards, join the
    /// pool and prober. Returns the total number of requests handled.
    pub fn shutdown(mut self) -> u64 {
        self.shutdown_impl();
        self.requests_total()
    }

    fn shutdown_impl(&mut self) {
        if self.acceptor.is_none() && self.workers.is_empty() {
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.workers.join();
        if let Some(p) = self.prober.take() {
            let _ = p.join();
        }
        self.observer.flush();
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_assignment_is_stable_and_complete() {
        let shards = vec![
            "127.0.0.1:9001".to_string(),
            "127.0.0.1:9002".to_string(),
            "127.0.0.1:9003".to_string(),
        ];
        let ring = Ring::build(&shards, 32);
        for key in [0u64, 1, u64::MAX, tie_hash(7, 9), tie_hash(9, 7)] {
            let c = ring.candidates(key);
            assert_eq!(c.len(), 3, "every shard appears exactly once");
            let mut sorted = c.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2]);
            // Stable: the same key always maps to the same order.
            assert_eq!(c, ring.candidates(key));
        }
        // Orientation matters: (src,dst) and (dst,src) are distinct keys.
        assert_ne!(tie_hash(7, 9), tie_hash(9, 7));
    }

    #[test]
    fn removing_a_shard_only_moves_its_own_keys() {
        let three = vec![
            "127.0.0.1:9001".to_string(),
            "127.0.0.1:9002".to_string(),
            "127.0.0.1:9003".to_string(),
        ];
        let ring3 = Ring::build(&three, 32);
        let ring2 = Ring::build(&three[..2], 32);
        let mut moved = 0usize;
        let mut kept = 0usize;
        for src in 0..40u32 {
            for dst in 0..40u32 {
                let key = tie_hash(src, dst);
                let owner3 = ring3.candidates(key)[0];
                let owner2 = ring2.candidates(key)[0];
                if owner3 == 2 {
                    // Keys owned by the removed shard must land somewhere.
                    assert!(owner2 < 2);
                } else if owner3 == owner2 {
                    kept += 1;
                } else {
                    moved += 1;
                }
            }
        }
        // Consistent hashing: keys not owned by the removed shard stay put.
        assert_eq!(moved, 0, "{moved} keys moved that should have been stable ({kept} kept)");
        assert!(kept > 0);
    }
}
