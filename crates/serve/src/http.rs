//! Minimal HTTP/1.1 request parsing and response writing over raw streams.
//!
//! Deliberately std-only (the build is offline/vendored): enough of RFC 9112
//! for the query server — request line, headers, `Content-Length` bodies,
//! query-string decoding — with hard limits on every dimension so a slow or
//! hostile client cannot pin a worker or balloon memory.

use std::io::{BufRead, Write};

/// Maximum accepted request-line length in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Maximum accepted header count.
pub const MAX_HEADERS: usize = 100;
/// Maximum accepted single header line length in bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Maximum accepted request body size in bytes.
pub const MAX_BODY: usize = 8 * 1024 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string, e.g. `/score`.
    pub path: String,
    /// Decoded `key=value` query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers in order of appearance: lowercased names, trimmed values.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter named `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// First header named `name` (ASCII case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// The peer closed the connection before sending a request line.
    ConnectionClosed,
    /// A read timed out (the stream's read timeout expired mid-request).
    Timeout,
    /// The bytes on the wire are not a well-formed HTTP/1.1 request.
    Malformed(String),
    /// The request exceeded one of the `MAX_*` limits.
    TooLarge(String),
    /// Transport error other than a timeout.
    Io(std::io::Error),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::ConnectionClosed => f.write_str("connection closed before request"),
            ParseError::Timeout => f.write_str("timed out reading request"),
            ParseError::Malformed(m) => write!(f, "malformed request: {m}"),
            ParseError::TooLarge(m) => write!(f, "request too large: {m}"),
            ParseError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

fn classify_io(e: std::io::Error) -> ParseError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ParseError::Timeout,
        _ => ParseError::Io(e),
    }
}

/// Reads one CRLF- (or LF-) terminated line, enforcing `limit` bytes.
fn read_line<R: BufRead>(r: &mut R, limit: usize, what: &str) -> Result<String, ParseError> {
    let mut buf = Vec::with_capacity(128);
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Err(ParseError::ConnectionClosed);
                }
                break;
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                buf.push(byte[0]);
                if buf.len() > limit {
                    return Err(ParseError::TooLarge(format!("{what} exceeds {limit} bytes")));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(classify_io(e)),
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| ParseError::Malformed(format!("{what} is not UTF-8")))
}

/// Parses one request from `r` (headers + body; the connection is treated as
/// one-request-per-connection, so no keep-alive bookkeeping).
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, ParseError> {
    let line = read_line(r, MAX_REQUEST_LINE, "request line")?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ParseError::Malformed(format!("bad request line '{line}'"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!("unsupported protocol '{version}'")));
    }

    let mut content_length = 0usize;
    // Raw (trimmed) Content-Length value already seen, for duplicate
    // detection: repeating the identical value is tolerated, but two
    // *conflicting* values are the classic request-smuggling ambiguity and
    // must be rejected, never resolved last-wins.
    let mut seen_content_length: Option<String> = None;
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let header = read_line(r, MAX_HEADER_LINE, "header line")?;
        if header.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::TooLarge(format!("more than {MAX_HEADERS} headers")));
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ParseError::Malformed(format!("header without colon: '{header}'")));
        };
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        if name.eq_ignore_ascii_case("content-length") {
            let raw = value.trim();
            match &seen_content_length {
                Some(prev) if prev != raw => {
                    return Err(ParseError::Malformed(format!(
                        "conflicting Content-Length headers: '{prev}' then '{raw}'"
                    )));
                }
                Some(_) => {} // byte-identical duplicate: accept
                None => {
                    content_length = raw.parse().map_err(|_| {
                        ParseError::Malformed(format!("bad Content-Length '{value}'"))
                    })?;
                    seen_content_length = Some(raw.to_string());
                }
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // Chunked bodies are out of scope for the query protocol.
            return Err(ParseError::Malformed("Transfer-Encoding is not supported".into()));
        }
    }
    if content_length > MAX_BODY {
        return Err(ParseError::TooLarge(format!(
            "body of {content_length} bytes (max {MAX_BODY})"
        )));
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        r.read_exact(&mut body).map_err(classify_io)?;
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode_path(raw_path).ok_or_else(|| {
        ParseError::Malformed(format!("bad percent-encoding in path '{raw_path}'"))
    })?;
    let mut query = Vec::new();
    for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let k = percent_decode_query(k)
            .ok_or_else(|| ParseError::Malformed(format!("bad percent-encoding in '{pair}'")))?;
        let v = percent_decode_query(v)
            .ok_or_else(|| ParseError::Malformed(format!("bad percent-encoding in '{pair}'")))?;
        query.push((k, v));
    }

    Ok(Request { method: method.to_string(), path, query, headers, body })
}

/// Decodes `%XX` escapes in a path segment. `+` is form-encoding and only
/// means space in query strings (RFC 3986 vs the
/// `application/x-www-form-urlencoded` rules), so `/a+b` keeps its literal
/// `+`. `None` on truncated or non-UTF-8 escapes.
fn percent_decode_path(s: &str) -> Option<String> {
    percent_decode(s, false)
}

/// Decodes `%XX` escapes and `+` (as space) in a query component. `None`
/// on truncated or non-UTF-8 escapes.
fn percent_decode_query(s: &str) -> Option<String> {
    percent_decode(s, true)
}

fn percent_decode(s: &str, plus_is_space: bool) -> Option<String> {
    if !(s.contains('%') || plus_is_space && s.contains('+')) {
        return Some(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (*hex.first()? as char).to_digit(16)?;
                let lo = (*hex.get(1)? as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response with `Connection: close` and flushes.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    write_response_with_headers(w, status, content_type, &[], body)
}

/// [`write_response`] plus caller-supplied extra headers (e.g. the
/// `traceparent` echo). Header values must already be valid header text —
/// no CR/LF — which holds for everything the server produces.
pub fn write_response_with_headers<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("Connection: close\r\n\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        read_request(&mut std::io::BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse("GET /score?src=3&dst=17 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/score");
        assert_eq!(req.query_param("src"), Some("3"));
        assert_eq!(req.query_param("dst"), Some("17"));
        assert_eq!(req.query_param("absent"), None);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse("POST /batch HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn percent_decoding_applies() {
        let req = parse("GET /a%20b?k=v%2Bw&x=1+2 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/a b");
        assert_eq!(req.query_param("k"), Some("v+w"));
        assert_eq!(req.query_param("x"), Some("1 2"));
        assert!(parse("GET /bad%zz HTTP/1.1\r\n\r\n").is_err());
    }

    #[test]
    fn plus_in_path_stays_literal() {
        // `+`-as-space is a form-encoding (query-only) rule; in the path it
        // is an ordinary character and must survive decoding.
        let req = parse("GET /a+b?x=1+2 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/a+b");
        assert_eq!(req.query_param("x"), Some("1 2"));
        // Percent-escapes still decode in both components.
        let req = parse("GET /c%2Bd%20e?k=%2B HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/c+d e");
        assert_eq!(req.query_param("k"), Some("+"));
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        // Last-wins on conflicting Content-Length is request-smuggling
        // adjacent; the parser must refuse to pick one.
        let conflicting = "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 4\r\n\r\nhello";
        assert!(matches!(parse(conflicting), Err(ParseError::Malformed(_))));
        // Byte-identical duplicates are tolerated (some proxies repeat the
        // header verbatim).
        let duplicate = "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello";
        let req = parse(duplicate).unwrap();
        assert_eq!(req.body, b"hello");
        // A conflict is a conflict even when the later value is garbage.
        let junk = "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: nope\r\n\r\nhello";
        assert!(matches!(parse(junk), Err(ParseError::Malformed(_))));
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(parse("NONSENSE\r\n\r\n"), Err(ParseError::Malformed(_))));
        assert!(matches!(parse("GET /x SPDY/3\r\n\r\n"), Err(ParseError::Malformed(_))));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(parse(""), Err(ParseError::ConnectionClosed)));
    }

    #[test]
    fn enforces_limits() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + 1));
        assert!(matches!(parse(&long_line), Err(ParseError::TooLarge(_))));
        let huge_body = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(parse(&huge_body), Err(ParseError::TooLarge(_))));
        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..=MAX_HEADERS).map(|i| format!("h{i}: v\r\n")).collect::<String>()
        );
        assert!(matches!(parse(&many_headers), Err(ParseError::TooLarge(_))));
    }

    #[test]
    fn headers_are_captured_case_insensitively() {
        let req = parse(
            "GET /score HTTP/1.1\r\nHost: x\r\nTraceParent: 00-aa-bb-01\r\nX-Thing:  padded \r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.header("traceparent"), Some("00-aa-bb-01"));
        assert_eq!(req.header("TRACEPARENT"), Some("00-aa-bb-01"));
        assert_eq!(req.header("x-thing"), Some("padded"), "values are trimmed");
        assert_eq!(req.header("absent"), None);
    }

    #[test]
    fn extra_headers_render_before_connection_close() {
        let mut out = Vec::new();
        write_response_with_headers(
            &mut out,
            200,
            "application/json",
            &[("traceparent", "00-ab-cd-01".to_string())],
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\r\ntraceparent: 00-ab-cd-01\r\n"), "{text}");
        assert!(text.contains("\r\nConnection: close\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
