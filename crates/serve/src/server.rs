//! The query server: a fixed worker pool behind a bounded accept queue,
//! serving scores out of a hot-swappable [`DirectionalityModel`].
//!
//! Production shape, not framework shape: the acceptor thread pushes
//! connections into a bounded `sync_channel` (overflow → immediate `503`
//! instead of unbounded memory), each worker parses one request per
//! connection under per-request read/write timeouts, scores through the
//! sharded LRU cache, and records per-endpoint counters + latency
//! histograms into a [`Registry`] that `/metrics` exports. The model lives
//! in a [`ModelSlot`]: `POST /admin/reload` swaps a new artifact in while
//! in-flight requests finish on the `Arc` they started with (DESIGN.md
//! §7.14). Shutdown is graceful: stop accepting, drain every queued
//! connection, join the pool.
//!
//! With [`ServeConfig::stream`] on, the server also accepts `POST /ingest`:
//! JSONL tie events fold into the frozen embedding space through a
//! [`StreamEngine`] (DESIGN.md §7.15), and exactly the touched
//! `(fingerprint, src, dst)` cache entries are invalidated — new ties score
//! within one request of being ingested, without retraining.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dd_graph::NodeId;
use dd_runtime::{spawn_named, Threads, WorkerPool};
use dd_stream::{parse_events, StreamEngine};
use dd_telemetry::export::{prometheus_text, PromFamily};
use dd_telemetry::trace::{
    derive_span_id, derive_trace_id, format_traceparent, now_seconds, parse_traceparent,
    SpanContext,
};
use dd_telemetry::{Counter, Event, Gauge, Histogram, MetricSnapshot, ObserverHandle, Registry};
use deepdirect::{DirectionalityModel, MODEL_SCHEMA_VERSION};
use serde::{Deserialize, Serialize};

use crate::http;
use crate::lru::ScoreCache;
use crate::slot::{ModelSlot, SlotReader};

const JSON: &str = "application/json";
const NDJSON: &str = "application/x-ndjson";
/// Prometheus text exposition format version 0.0.4.
const PROM_TEXT: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Server configuration. `Default` is suitable for local use.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Total LRU score-cache capacity; `0` disables caching.
    pub cache_size: usize,
    /// Per-request read/write timeout.
    pub request_timeout: Duration,
    /// Accepted connections that may wait for a free worker before new
    /// arrivals are rejected with `503`.
    pub queue_depth: usize,
    /// Structured request-log sink (JSONL events of kind `serve.request`).
    pub observer: ObserverHandle,
    /// Enables streaming tie ingestion: `POST /ingest` accepts JSONL tie
    /// events and folds them into the frozen embedding space (DESIGN.md
    /// §7.15). Off by default — with it off, `/ingest` answers `400`.
    pub stream: bool,
    /// Test-only fault injection: when `true`, `GET /__panic` panics inside
    /// the request handler. The chaos suite uses it to prove panic
    /// isolation (500 to the client, `serve.panics` incremented, worker
    /// survives). Leave `false` in production.
    pub panic_route: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".to_string(),
            workers: 4,
            cache_size: 4096,
            request_timeout: Duration::from_secs(5),
            queue_depth: 64,
            observer: ObserverHandle::none(),
            stream: false,
            panic_route: false,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("serve: need at least one worker".into());
        }
        if self.queue_depth == 0 {
            return Err("serve: queue depth must be positive".into());
        }
        if self.request_timeout.is_zero() {
            return Err("serve: request timeout must be positive".into());
        }
        Ok(())
    }
}

/// Per-endpoint instruments, registered once at startup so the request path
/// never takes the registry lock.
struct EndpointMetrics {
    requests: Arc<Counter>,
    latency: Arc<Histogram>,
}

/// Streaming-ingest state: the engine plus its instruments. Present only
/// when [`ServeConfig::stream`] is on.
struct StreamState {
    /// Scoring takes read locks (one per cache miss); `POST /ingest` and
    /// reload rebinds take the write lock.
    engine: RwLock<StreamEngine>,
    /// Events applied over the server's lifetime (`serve.ingest.events`).
    events_applied: Arc<Counter>,
    /// Ingest batches accepted (`serve.ingest.batches`).
    batches: Arc<Counter>,
    /// Cache entries invalidated by ingests (`serve.ingest.invalidations`).
    invalidations: Arc<Counter>,
    /// Live dynamic (untrained, followed) ties (`serve.stream.live`).
    live: Arc<Gauge>,
}

impl StreamState {
    // Poison recovery mirrors the slot/worker locks: the guarded sections
    // only mutate the engine's own plain data structures, so a poisoned
    // lock means a panic elsewhere unwound through a guard — the engine
    // state is still coherent (apply/rebind never partially apply).
    fn read_engine(&self) -> RwLockReadGuard<'_, StreamEngine> {
        self.engine.read().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn write_engine(&self) -> RwLockWriteGuard<'_, StreamEngine> {
        self.engine.write().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Everything a worker needs to answer requests.
struct AppState {
    slot: Arc<ModelSlot>,
    cache: Option<ScoreCache>,
    /// Streaming-ingest engine; `None` unless [`ServeConfig::stream`].
    stream: Option<StreamState>,
    registry: Arc<Registry>,
    observer: ObserverHandle,
    request_timeout: Duration,
    endpoints: Vec<(&'static str, EndpointMetrics)>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    cache_occupancy: Arc<Gauge>,
    /// Dead-generation entries reclaimed on reload (`serve.cache.purged`).
    cache_purged: Arc<Counter>,
    queue_rejections: Arc<Counter>,
    panics: Arc<Counter>,
    pool_utilization: Arc<Gauge>,
    /// Current reload generation, exported so dashboards can correlate
    /// latency shifts with model swaps.
    model_generation: Arc<Gauge>,
    /// Successful `POST /admin/reload` swaps.
    model_reloads: Arc<Counter>,
    started: Instant,
    n_workers: usize,
    panic_route: bool,
    /// Monotone request sequence; seeds per-request trace IDs when the
    /// client did not send a `traceparent` header.
    request_seq: AtomicU64,
}

/// Per-request cache accounting, collected by [`AppState::score_cached`] so
/// the request trace can tag cache hits/misses without reading the global
/// counters (which concurrent requests would tear).
#[derive(Debug, Default, Clone, Copy)]
struct RouteStats {
    cache_hits: u64,
    cache_misses: u64,
}

/// Endpoint labels used in metric names and request-log events.
const ENDPOINTS: [&str; 10] = [
    "healthz",
    "score",
    "batch",
    "ingest",
    "metrics",
    "admin",
    "other",
    "timeout",
    "malformed",
    "panic",
];

impl AppState {
    fn new(slot: Arc<ModelSlot>, cfg: &ServeConfig) -> Self {
        let registry = Arc::new(Registry::new());
        let endpoints = ENDPOINTS
            .iter()
            .map(|&name| {
                let m = EndpointMetrics {
                    requests: registry.counter(&format!("serve.requests.{name}")),
                    // 10 µs … ~84 s exponential latency buckets.
                    latency: registry.histogram(&format!("serve.latency.{name}"), 1e-5, 2.0, 23),
                };
                (name, m)
            })
            .collect();
        registry.gauge("serve.pool.workers").set(cfg.workers as f64);
        let model_generation = registry.gauge("serve.model.generation");
        model_generation.set(slot.generation() as f64);
        let stream = if cfg.stream {
            Some(StreamState {
                engine: RwLock::new(StreamEngine::new(slot.load())),
                events_applied: registry.counter("serve.ingest.events"),
                batches: registry.counter("serve.ingest.batches"),
                invalidations: registry.counter("serve.ingest.invalidations"),
                live: registry.gauge("serve.stream.live"),
            })
        } else {
            None
        };
        AppState {
            slot,
            cache: ScoreCache::new(cfg.cache_size),
            stream,
            cache_hits: registry.counter("serve.cache.hits"),
            cache_misses: registry.counter("serve.cache.misses"),
            cache_evictions: registry.counter("serve.cache.evictions"),
            cache_occupancy: registry.gauge("serve.cache.occupancy"),
            cache_purged: registry.counter("serve.cache.purged"),
            queue_rejections: registry.counter("serve.rejected.queue_full"),
            panics: registry.counter("serve.panics"),
            model_generation,
            model_reloads: registry.counter("serve.model.reloads"),
            observer: cfg.observer.clone(),
            request_timeout: cfg.request_timeout,
            endpoints,
            pool_utilization: registry.gauge("serve.pool.utilization"),
            // dd-lint: allow(trace-hygiene) — uptime anchor for /healthz;
            // a process lifetime is not a span.
            started: Instant::now(),
            n_workers: cfg.workers,
            panic_route: cfg.panic_route,
            request_seq: AtomicU64::new(0),
            registry,
        }
    }

    /// Refreshes `serve.pool.utilization`: the fraction of the worker
    /// pool's wall-clock capacity spent inside request handlers (sum of
    /// per-endpoint latency over `uptime × workers`).
    fn update_pool_utilization(&self) {
        let busy: f64 = self.endpoints.iter().map(|(_, m)| m.latency.sum()).sum();
        let capacity = self.started.elapsed().as_secs_f64() * self.n_workers as f64;
        if capacity > 0.0 {
            self.pool_utilization.set(busy / capacity);
        }
    }

    fn endpoint(&self, name: &str) -> Option<&EndpointMetrics> {
        // ENDPOINTS is tiny and `name` always comes from routing constants;
        // an unknown name is a routing bug, and losing that one metrics
        // sample beats panicking on the response path.
        self.endpoints.iter().find(|(n, _)| *n == name).map(|(_, m)| m)
    }

    /// Scores `(src, dst)` against `model` through the LRU cache. `None`
    /// when the ordered tie is not in the trained universe (never cached).
    ///
    /// Entries are keyed by the model's content fingerprint in addition to
    /// the tie, so a hot reload invalidates the whole cache by construction
    /// — stale scores can never be served, even while requests on two model
    /// generations are in flight at once.
    ///
    /// With streaming on, the compute *and* the insert both happen under
    /// the engine read lock. `POST /ingest` takes the write lock to apply a
    /// batch and removes the touched keys after releasing it; if the insert
    /// ran outside the read lock, a whole ingest (apply + invalidate) could
    /// slip between this request's compute and its insert, and the
    /// pre-ingest score would be cached — and served — indefinitely.
    /// Holding the read lock across both steps means a racing ingest either
    /// waits for this insert (its removal then kills the entry) or has
    /// already applied (this request computes the post-ingest score).
    fn score_cached(
        &self,
        model: &DirectionalityModel,
        src: u32,
        dst: u32,
        scratch: &mut Vec<f32>,
        stats: &mut RouteStats,
    ) -> Option<f64> {
        let Some(cache) = &self.cache else {
            return self.score_live(model, src, dst, scratch);
        };
        let key = (model.fingerprint(), src, dst);
        if let Some(v) = cache.get(key) {
            self.cache_hits.incr();
            stats.cache_hits += 1;
            return Some(v);
        }
        let v = if let Some(stream) = &self.stream {
            let engine = stream.read_engine();
            if engine.fingerprint() != model.fingerprint() {
                // A reload is racing this request: the slot and the engine
                // disagree on the generation for the duration of the swap.
                // Serve the plain trained score but never cache it — the
                // engine's overlay (tombstones, dynamic ties) was not
                // consulted, so a cached entry could outlive the race and
                // keep serving an overlay-blind score.
                drop(engine);
                let v = model.score(NodeId(src), NodeId(dst))?;
                self.cache_misses.incr();
                stats.cache_misses += 1;
                return Some(v);
            }
            let v = engine.score(NodeId(src), NodeId(dst), scratch)?;
            self.cache_misses.incr();
            stats.cache_misses += 1;
            // dd-lint: order(engine < shard) — §7.15 rule 1: cache shards
            // are only ever locked under the engine lock (this insert, and
            // ingest's removals run with no engine guard held at all), so
            // the insert can never deadlock against an ingest invalidation
            // dd-lint: acquires(shard) — ScoreCache::insert locks the
            // key's LRU shard internally
            if cache.insert(key, v) {
                self.cache_evictions.incr();
            }
            v
        } else {
            let v = model.score(NodeId(src), NodeId(dst))?;
            self.cache_misses.incr();
            stats.cache_misses += 1;
            if cache.insert(key, v) {
                self.cache_evictions.incr();
            }
            v
        };
        self.cache_occupancy.set(cache.len() as f64);
        Some(v)
    }

    /// Resolves one uncached score (the cache-disabled path). With
    /// streaming on, the engine answers (exact trained scores for untouched
    /// pairs, fold-in for dynamic ones, `None` for tombstones); without it,
    /// the model answers directly. `scratch` is the worker-owned fold-in
    /// buffer, so the streaming path never allocates per request.
    fn score_live(
        &self,
        model: &DirectionalityModel,
        src: u32,
        dst: u32,
        scratch: &mut Vec<f32>,
    ) -> Option<f64> {
        if let Some(stream) = &self.stream {
            let engine = stream.read_engine();
            if engine.fingerprint() == model.fingerprint() {
                return engine.score(NodeId(src), NodeId(dst), scratch);
            }
            // A reload is racing this request: the engine rebinds to the
            // new generation before the slot swap, so this request's model
            // snapshot is one generation behind the engine. Fall through
            // to the plain trained score for that snapshot — nothing is
            // cached on this path, so nothing can go stale.
        }
        model.score(NodeId(src), NodeId(dst))
    }
}

/// `GET /healthz` payload.
#[derive(Debug, Serialize, Deserialize)]
pub struct HealthResponse {
    /// `"ok"` while the server is accepting requests.
    pub status: String,
    /// Ties in the served model's training universe.
    pub ties: usize,
    /// Model artifact schema version the server was built against.
    pub model_schema: u32,
    /// Content fingerprint of the served model (16 lowercase hex digits);
    /// identical whether the model was loaded from JSON or `.ddm`.
    pub model_fingerprint: String,
    /// Reload generation: 1 for the model the process started with,
    /// incremented by every successful `POST /admin/reload`.
    pub generation: Option<u64>,
    /// Live dynamic ties folded in via streaming ingestion; absent when the
    /// server runs without [`ServeConfig::stream`].
    pub live_dynamic: Option<u64>,
}

/// A tie pair, as accepted by `/score` query params and `/batch` JSONL lines.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TiePair {
    /// Source node id.
    pub src: u32,
    /// Destination node id.
    pub dst: u32,
}

/// One score result line, as returned by `/score` and `/batch`.
#[derive(Debug, Serialize, Deserialize)]
pub struct ScoreResponse {
    /// Source node id.
    pub src: u32,
    /// Destination node id.
    pub dst: u32,
    /// Directionality value `d(src, dst)`; absent when the tie is unknown.
    pub score: Option<f64>,
    /// Error description; absent on success.
    pub error: Option<String>,
    /// Content fingerprint (16 lowercase hex digits) of the model that
    /// produced this score. Under hot reload this is the ground truth for
    /// which generation answered — scores are bit-identical to offline
    /// scoring against the artifact with this fingerprint.
    pub fingerprint: Option<String>,
}

/// `POST /admin/reload` request body.
#[derive(Debug, Serialize, Deserialize)]
pub struct ReloadRequest {
    /// Path to the new model artifact (JSON or binary `.ddm`, sniffed).
    pub path: String,
}

/// `POST /admin/reload` success payload.
#[derive(Debug, Serialize, Deserialize)]
pub struct ReloadResponse {
    /// `"reloaded"` on success.
    pub status: String,
    /// Fingerprint of the model that was swapped out.
    pub old_fingerprint: String,
    /// Fingerprint of the model now being served.
    pub new_fingerprint: String,
    /// Reload generation after the swap.
    pub generation: u64,
    /// Ties in the new model's training universe.
    pub ties: usize,
    /// Dead-generation cache entries reclaimed by the swap; absent when the
    /// cache is disabled.
    pub cache_purged: Option<u64>,
}

/// `POST /ingest` success payload.
#[derive(Debug, Serialize, Deserialize)]
pub struct IngestResponse {
    /// `"applied"` on success (application is atomic: a malformed batch is
    /// rejected whole with a `400` and applies nothing).
    pub status: String,
    /// Events applied from this batch.
    pub applied: usize,
    /// Cache entries invalidated by this batch.
    pub invalidated: usize,
    /// Live dynamic ties after this batch.
    pub live_dynamic: usize,
    /// Events applied over the engine's lifetime (the event-log length).
    pub events_total: usize,
    /// Engine state digest after this batch (16 lowercase hex digits);
    /// replaying the same event log against the same model reproduces it
    /// bit for bit (DESIGN.md §7.15).
    pub digest: String,
    /// Content fingerprint of the model the events folded into.
    pub fingerprint: String,
}

fn error_body(msg: &str) -> Vec<u8> {
    format!("{{\"error\":{}}}", serde_json::to_string(&msg.to_string()).unwrap_or_default())
        .into_bytes()
}

type Routed = (&'static str, u16, &'static str, Vec<u8>);

fn route(
    state: &AppState,
    model: &Arc<DirectionalityModel>,
    generation: u64,
    req: &http::Request,
    scratch: &mut Vec<f32>,
    stats: &mut RouteStats,
) -> Routed {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let body = HealthResponse {
                status: "ok".to_string(),
                ties: model.n_ties(),
                model_schema: MODEL_SCHEMA_VERSION,
                model_fingerprint: format!("{:016x}", model.fingerprint()),
                generation: Some(generation),
                live_dynamic: state.stream.as_ref().map(|s| s.read_engine().live_dynamic() as u64),
            };
            ("healthz", 200, JSON, serde_json::to_string(&body).unwrap_or_default().into_bytes())
        }
        ("GET", "/score") => score_endpoint(state, model, req, scratch, stats),
        ("POST", "/batch") => batch_endpoint(state, model, req, scratch, stats),
        ("POST", "/ingest") => ingest_endpoint(state, req),
        ("POST", "/admin/reload") => reload_endpoint(state, req),
        // Fault injection for the chaos suite (ServeConfig::panic_route);
        // with the flag off this falls through to the 404 arm.
        ("GET", "/__panic") if state.panic_route => {
            panic!("injected handler panic via /__panic")
        }
        ("GET", "/metrics") => {
            if let Some(cache) = &state.cache {
                state.cache_occupancy.set(cache.len() as f64);
            }
            state.update_pool_utilization();
            state.model_generation.set(state.slot.generation() as f64);
            let mut body = render_metrics(&state.registry);
            // The 64-bit fingerprint cannot ride in an f64 gauge without
            // precision loss, so it rides as an info-style label instead
            // (value = generation, like Prometheus build_info).
            body.extend_from_slice(
                format!(
                    "# HELP dd_serve_model_info Identity of the currently served model.\n\
                     # TYPE dd_serve_model_info gauge\n\
                     dd_serve_model_info{{fingerprint=\"{:016x}\"}} {}\n",
                    model.fingerprint(),
                    generation,
                )
                .as_bytes(),
            );
            ("metrics", 200, PROM_TEXT, body)
        }
        (_, "/healthz" | "/score" | "/batch" | "/ingest" | "/metrics" | "/admin/reload") => {
            ("other", 405, JSON, error_body(&format!("method {} not allowed", req.method)))
        }
        (_, path) => ("other", 404, JSON, error_body(&format!("no such endpoint '{path}'"))),
    }
}

fn parse_id(req: &http::Request, key: &str) -> Result<u32, String> {
    match req.query_param(key) {
        None => Err(format!("missing query parameter '{key}' (expected /score?src=A&dst=B)")),
        Some(raw) => raw
            .parse::<u32>()
            .map_err(|_| format!("query parameter '{key}' must be a node id, got '{raw}'")),
    }
}

fn score_endpoint(
    state: &AppState,
    model: &Arc<DirectionalityModel>,
    req: &http::Request,
    scratch: &mut Vec<f32>,
    stats: &mut RouteStats,
) -> Routed {
    let (src, dst) = match (parse_id(req, "src"), parse_id(req, "dst")) {
        (Ok(s), Ok(d)) => (s, d),
        (Err(e), _) | (_, Err(e)) => return ("score", 400, JSON, error_body(&e)),
    };
    let fingerprint = Some(format!("{:016x}", model.fingerprint()));
    match state.score_cached(model, src, dst, scratch, stats) {
        Some(score) => {
            let body = ScoreResponse { src, dst, score: Some(score), error: None, fingerprint };
            ("score", 200, JSON, serde_json::to_string(&body).unwrap_or_default().into_bytes())
        }
        None => {
            let body = ScoreResponse {
                src,
                dst,
                score: None,
                error: Some("unknown tie: pair was not in the training universe".to_string()),
                fingerprint,
            };
            ("score", 404, JSON, serde_json::to_string(&body).unwrap_or_default().into_bytes())
        }
    }
}

fn batch_endpoint(
    state: &AppState,
    model: &Arc<DirectionalityModel>,
    req: &http::Request,
    scratch: &mut Vec<f32>,
    stats: &mut RouteStats,
) -> Routed {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return ("batch", 400, JSON, error_body("body must be UTF-8 JSONL"));
    };
    let fingerprint = format!("{:016x}", model.fingerprint());
    let mut out = String::new();
    let mut n_pairs = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let pair: TiePair = match serde_json::from_str(line) {
            Ok(p) => p,
            Err(e) => {
                return (
                    "batch",
                    400,
                    JSON,
                    error_body(&format!("line {}: expected {{\"src\":A,\"dst\":B}}: {e}", i + 1)),
                )
            }
        };
        n_pairs += 1;
        let resp = match state.score_cached(model, pair.src, pair.dst, scratch, stats) {
            Some(score) => ScoreResponse {
                src: pair.src,
                dst: pair.dst,
                score: Some(score),
                error: None,
                fingerprint: Some(fingerprint.clone()),
            },
            None => ScoreResponse {
                src: pair.src,
                dst: pair.dst,
                score: None,
                error: Some("unknown tie".to_string()),
                fingerprint: Some(fingerprint.clone()),
            },
        };
        out.push_str(&serde_json::to_string(&resp).unwrap_or_default());
        out.push('\n');
    }
    if n_pairs == 0 {
        return ("batch", 400, JSON, error_body("empty batch: send one JSON pair per line"));
    }
    ("batch", 200, NDJSON, out.into_bytes())
}

/// `POST /ingest`: applies a JSONL tie-event batch to the streaming engine
/// and invalidates exactly the touched `(fingerprint, src, dst)` cache
/// entries, so the very next request scores against the new state.
/// Application is atomic — any malformed line rejects the whole batch with
/// a `400` before the engine sees a single event (DESIGN.md §7.15).
fn ingest_endpoint(state: &AppState, req: &http::Request) -> Routed {
    let Some(stream) = &state.stream else {
        return (
            "ingest",
            400,
            JSON,
            error_body("streaming ingestion is disabled; start `dd serve` with --stream"),
        );
    };
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return ("ingest", 400, JSON, error_body("body must be UTF-8 JSONL"));
    };
    let events = match parse_events(text) {
        Ok(ev) => ev,
        Err(e) => return ("ingest", 400, JSON, error_body(&format!("rejected batch: {e}"))),
    };
    if events.is_empty() {
        return ("ingest", 400, JSON, error_body("empty batch: send one JSON event per line"));
    }
    // One write-lock hold per batch; scoring reads queue behind it only for
    // the duration of the overlay fold (no I/O, no allocation spikes).
    let ((fingerprint, report, live, events_total, digest), seconds) =
        state.observer.time("ingest.apply", || {
            let mut engine = stream.write_engine();
            let fingerprint = engine.fingerprint();
            let report = engine.apply_all(&events);
            let live = engine.live_dynamic();
            (fingerprint, report, live, engine.events_applied(), engine.state_digest())
        });
    let mut invalidated = 0usize;
    if let Some(cache) = &state.cache {
        for &(u, v) in &report.touched {
            if cache.remove((fingerprint, u, v)) {
                invalidated += 1;
            }
        }
        state.cache_occupancy.set(cache.len() as f64);
    }
    stream.events_applied.add(report.applied as u64);
    stream.batches.incr();
    stream.invalidations.add(invalidated as u64);
    stream.live.set(live as f64);
    state.observer.on_event(&Event::ingest_apply(report.applied, invalidated, seconds));
    let body = IngestResponse {
        status: "applied".to_string(),
        applied: report.applied,
        invalidated,
        live_dynamic: live,
        events_total,
        digest: format!("{digest:016x}"),
        fingerprint: format!("{fingerprint:016x}"),
    };
    ("ingest", 200, JSON, serde_json::to_string(&body).unwrap_or_default().into_bytes())
}

/// `POST /admin/reload`: loads the artifact named in the body off the hot
/// path, validates it, and swaps it into the slot. In-flight requests keep
/// the old `Arc`; the fingerprint-keyed cache makes their entries
/// unreachable to the new generation automatically. The load runs on this
/// worker thread — other workers keep serving throughout.
fn reload_endpoint(state: &AppState, req: &http::Request) -> Routed {
    let parsed: Result<ReloadRequest, _> = match std::str::from_utf8(&req.body) {
        Ok(text) => serde_json::from_str(text),
        Err(_) => return ("admin", 400, JSON, error_body("body must be UTF-8 JSON")),
    };
    let reload = match parsed {
        Ok(r) => r,
        Err(e) => {
            return ("admin", 400, JSON, error_body(&format!("expected {{\"path\":\"…\"}}: {e}")))
        }
    };
    let new = match DirectionalityModel::load_from_path(&reload.path) {
        Ok(m) => m,
        Err(e) => return ("admin", 400, JSON, error_body(&format!("reload failed: {e}"))),
    };
    if new.n_ties() == 0 {
        return ("admin", 400, JSON, error_body("reload rejected: model has no ties"));
    }
    let new_fingerprint = format!("{:016x}", new.fingerprint());
    let ties = new.n_ties();
    let new_arc = Arc::new(new);
    // Rebind the streaming engine — the retained event log re-normalizes
    // against the new model's trained tie set, as if replayed from scratch
    // — *before* the slot swap, holding the engine write lock across the
    // swap. That ordering means no request can ever observe the new model
    // with an engine still bound to the old generation: that interleaving
    // would make the scorer fall through to the overlay-blind trained
    // score and cache it under the new fingerprint, where it survives the
    // generation purge below (e.g. a tombstoned tie serving its trained
    // score until churned out). The benign reverse — a request holding the
    // old slot snapshot against the rebound engine — stays uncached (see
    // `score_cached`).
    let old = if let Some(stream) = &state.stream {
        let mut engine = stream.write_engine();
        engine.rebind(Arc::clone(&new_arc));
        stream.live.set(engine.live_dynamic() as f64);
        // dd-lint: order(engine < current) — §7.15 rule 2: the slot swap
        // happens under the engine write lock (rebind-then-swap), never
        // the reverse, so no request can see the new model with an engine
        // still bound to the old generation
        // dd-lint: acquires(current) — Slot::swap locks the current-model
        // mutex internally
        state.slot.swap(Arc::clone(&new_arc))
    } else {
        state.slot.swap(Arc::clone(&new_arc))
    };
    let generation = state.slot.generation();
    // Entries keyed by dead generations can never be served again (the
    // fingerprint key changed), but until purged they squat on LRU capacity
    // and force phantom evictions of live entries.
    let cache_purged = state.cache.as_ref().map(|cache| {
        let purged = cache.purge_other_generations(new_arc.fingerprint()) as u64;
        state.cache_purged.add(purged);
        state.cache_occupancy.set(cache.len() as f64);
        purged
    });
    state.model_generation.set(generation as f64);
    state.model_reloads.incr();
    state.observer.on_event(&Event::metric("serve.model.reload", generation as f64, None));
    let body = ReloadResponse {
        status: "reloaded".to_string(),
        old_fingerprint: format!("{:016x}", old.fingerprint()),
        new_fingerprint,
        generation,
        ties,
        cache_purged,
    };
    ("admin", 200, JSON, serde_json::to_string(&body).unwrap_or_default().into_bytes())
}

/// Renders the registry in Prometheus text exposition format (0.0.4).
/// Per-endpoint counters and latency histograms are grouped into labeled
/// families (`dd_serve_requests_total{endpoint="…"}`,
/// `dd_serve_latency_seconds_bucket{endpoint="…",le="…"}`); everything else
/// renders standalone under its sanitized `dd_`-prefixed name.
fn render_metrics(registry: &Registry) -> Vec<u8> {
    let families = [
        PromFamily {
            prefix: "serve.requests.",
            family: "dd_serve_requests",
            label: "endpoint",
            help: "Requests handled, by endpoint.",
        },
        PromFamily {
            prefix: "serve.latency.",
            family: "dd_serve_latency_seconds",
            label: "endpoint",
            help: "Request wall latency in seconds, by endpoint.",
        },
    ];
    prometheus_text(&registry.snapshot(), &families).into_bytes()
}

fn handle_connection(
    state: &AppState,
    reader_slot: &mut SlotReader,
    scratch: &mut Vec<f32>,
    stream: TcpStream,
    accepted: Instant,
) {
    // dd-lint: allow(trace-hygiene) — request latency/queue-wait measurement
    // is the serving path's own instrumentation, reported via telemetry.
    let start = Instant::now();
    let start_seconds = now_seconds();
    let queue_seconds = start.saturating_duration_since(accepted).as_secs_f64();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(state.request_timeout));
    let _ = stream.set_write_timeout(Some(state.request_timeout));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let parsed = http::read_request(&mut reader);

    // The request's model snapshot: cloned once here so a reload mid-request
    // cannot change what this request scores against, and so the response
    // fingerprint always names the model that actually answered.
    let model = Arc::clone(reader_slot.current());
    let generation = reader_slot.generation();

    // Request trace identity: a client-supplied `traceparent` wins (the
    // request joins the caller's trace); otherwise each request opens its
    // own trace derived from the request sequence number.
    let seq = state.request_seq.fetch_add(1, Ordering::Relaxed);
    let client_trace =
        parsed.as_ref().ok().and_then(|r| r.header("traceparent")).and_then(parse_traceparent);
    let trace_id = client_trace.unwrap_or_else(|| derive_trace_id(seq, "serve.request"));
    let root_sid = derive_span_id(trace_id, 0, "serve.request", seq);

    let mut stats = RouteStats::default();
    let handler_start_seconds = now_seconds();
    // dd-lint: allow(trace-hygiene) — handler-phase timing for the request
    // trace's `serve.handler.*` child span.
    let handler_start = Instant::now();
    let (endpoint, status, content_type, body) = match parsed {
        // Panic isolation: a handler panic becomes a `500` to this client
        // and a `serve.panics` tick; the worker thread survives and keeps
        // serving. The state captured here is only read behind its own
        // locks/atomics, so `AssertUnwindSafe` cannot observe broken
        // invariants.
        Ok(req) => {
            match catch_unwind(AssertUnwindSafe(|| {
                route(state, &model, generation, &req, scratch, &mut stats)
            })) {
                Ok(routed) => routed,
                Err(_) => {
                    state.panics.incr();
                    state.observer.on_event(&Event::serve_panic(&req.path));
                    ("panic", 500, JSON, error_body("internal error: request handler panicked"))
                }
            }
        }
        // Port probes (and the shutdown wakeup) connect and say nothing;
        // not a request, nothing to log.
        Err(http::ParseError::ConnectionClosed) => return,
        Err(http::ParseError::Timeout) => {
            ("timeout", 408, JSON, error_body("timed out reading request"))
        }
        Err(e @ http::ParseError::TooLarge(_)) => {
            ("malformed", 413, JSON, error_body(&e.to_string()))
        }
        Err(e @ http::ParseError::Malformed(_)) => {
            ("malformed", 400, JSON, error_body(&e.to_string()))
        }
        Err(http::ParseError::Io(_)) => return,
    };
    let handler_seconds = handler_start.elapsed().as_secs_f64();
    let mut write_half = stream;
    // Echo the request's trace identity so callers can stitch their trace to
    // the server's JSONL request log.
    let traceparent = format_traceparent(SpanContext { trace_id, span_id: root_sid });
    let _ = http::write_response_with_headers(
        &mut write_half,
        status,
        content_type,
        &[("traceparent", traceparent)],
        &body,
    );
    let seconds = start.elapsed().as_secs_f64();
    if let Some(m) = state.endpoint(endpoint) {
        m.requests.incr();
        m.latency.record(seconds);
    }
    if state.observer.is_enabled() {
        emit_request_trace(
            state,
            &RequestTrace { trace_id, root_sid, endpoint, start_seconds, queue_seconds },
            handler_start_seconds,
            handler_seconds,
            &stats,
        );
    }
    let mut e =
        Event::serve_request(endpoint, status, seconds).with_trace(trace_id, root_sid, None);
    e.start_seconds = Some(start_seconds);
    // The serving model's identity rides on the trace root so a dashboard
    // can slice request latency by reload generation.
    e.model_fingerprint = Some(format!("{:016x}", model.fingerprint()));
    e.fields = Some(vec![("model.generation".to_string(), generation as f64)]);
    state.observer.on_event(&e);
}

/// Identity and timing of one request's trace root.
struct RequestTrace {
    trace_id: u64,
    root_sid: u64,
    endpoint: &'static str,
    start_seconds: f64,
    queue_seconds: f64,
}

/// Emits the per-request child spans: accept-queue wait, the handler phase,
/// and cache hit/miss tags. All share the request's trace ID and parent to
/// the `serve.request` root (the request-log event itself).
fn emit_request_trace(
    state: &AppState,
    req: &RequestTrace,
    handler_start_seconds: f64,
    handler_seconds: f64,
    stats: &RouteStats,
) {
    let mut queue = Event::span("serve.queue_wait", Some("serve.request"), req.queue_seconds)
        .with_trace(
            req.trace_id,
            derive_span_id(req.trace_id, req.root_sid, "serve.queue_wait", 0),
            Some(req.root_sid),
        );
    queue.start_seconds = Some((req.start_seconds - req.queue_seconds).max(0.0));
    state.observer.on_event(&queue);

    let handler_name = format!("serve.handler.{}", req.endpoint);
    let handler_sid = derive_span_id(req.trace_id, req.root_sid, &handler_name, 0);
    let mut handler = Event::span(&handler_name, Some("serve.request"), handler_seconds)
        .with_trace(req.trace_id, handler_sid, Some(req.root_sid));
    handler.start_seconds = Some(handler_start_seconds);
    state.observer.on_event(&handler);

    for (name, count) in
        [("serve.cache.hit", stats.cache_hits), ("serve.cache.miss", stats.cache_misses)]
    {
        if count == 0 {
            continue;
        }
        let mut tag = Event::span(name, Some(handler_name.as_str()), 0.0).with_trace(
            req.trace_id,
            derive_span_id(req.trace_id, handler_sid, name, 0),
            Some(handler_sid),
        );
        tag.value = Some(count as f64);
        tag.start_seconds = Some(handler_start_seconds);
        state.observer.on_event(&tag);
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: SyncSender<(TcpStream, Instant)>,
    shutdown: Arc<AtomicBool>,
    state: Arc<AppState>,
) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            // The accept timestamp rides along so the handling worker can
            // report how long the connection sat in the queue.
            // dd-lint: allow(trace-hygiene) — queue-wait enqueue timestamp.
            Ok(stream) => match tx.try_send((stream, Instant::now())) {
                Ok(()) => {}
                Err(TrySendError::Full((stream, _))) => {
                    state.queue_rejections.incr();
                    state.observer.on_event(&Event::serve_request("rejected", 503, 0.0));
                    let mut stream = stream;
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                    let _ = http::write_response(
                        &mut stream,
                        503,
                        JSON,
                        &error_body("accept queue full, retry later"),
                    );
                }
                Err(TrySendError::Disconnected(_)) => break,
            },
            Err(_) if shutdown.load(Ordering::SeqCst) => break,
            // Transient accept errors (EMFILE, aborted handshakes) must not
            // kill the server.
            Err(_) => {}
        }
    }
}

fn worker_loop(rx: Arc<Mutex<Receiver<(TcpStream, Instant)>>>, state: Arc<AppState>) {
    // Each worker owns a slot reader: steady-state requests cost one atomic
    // generation load; only the first request after a reload re-locks the
    // slot to refresh the cached Arc. The scratch vector is the worker's
    // reusable fold-in buffer — the streaming score path never allocates.
    let mut reader_slot = state.slot.reader();
    let mut scratch: Vec<f32> = Vec::new();
    loop {
        // Holding the lock while blocked in `recv` is the shared-receiver
        // pattern: exactly one worker waits in recv, the rest wait on the
        // mutex, and handling happens outside the lock — so the pool still
        // processes in parallel. Poison recovery is sound because nothing
        // under the lock can panic (it only wraps `recv`); connection
        // handling runs outside it, under `catch_unwind`.
        // dd-lint: allow(blocking-while-locked) — shared-receiver idiom:
        // the mutex IS the recv token for the worker pool, held only for
        // the blocking recv itself
        let next = { rx.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).recv() };
        match next {
            Ok((stream, accepted)) => {
                // Backstop: `handle_connection` already isolates handler
                // panics, but a panic anywhere else on the connection path
                // (response write, metrics) must not kill the worker either
                // — a dead worker would silently shrink the pool.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    handle_connection(&state, &mut reader_slot, &mut scratch, stream, accepted)
                }));
                if outcome.is_err() {
                    state.panics.incr();
                    // A panic can leave the scratch buffer mid-fill; a fresh
                    // buffer restores the all-paths-identical invariant
                    // (the fold-in clears it anyway, but cheap certainty).
                    scratch = Vec::new();
                }
            }
            // Sender dropped and queue drained: graceful exit.
            Err(_) => break,
        }
    }
}

/// The server factory. See [`Server::start`].
pub struct Server;

impl Server {
    /// Binds `cfg.addr`, spawns the acceptor and worker pool, and returns a
    /// handle. The model is shared read-only across workers; scores are
    /// bit-identical to calling [`DirectionalityModel::score`] directly.
    pub fn start(
        model: Arc<DirectionalityModel>,
        cfg: ServeConfig,
    ) -> Result<ServerHandle, String> {
        Self::start_with_slot(Arc::new(ModelSlot::new(model)), cfg)
    }

    /// [`Server::start`] with a caller-owned [`ModelSlot`], for embedders
    /// that want to drive swaps directly instead of via `POST /admin/reload`
    /// (tests, embedding hosts).
    pub fn start_with_slot(slot: Arc<ModelSlot>, cfg: ServeConfig) -> Result<ServerHandle, String> {
        cfg.validate()?;
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("binding {}: {e}", cfg.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let state = Arc::new(AppState::new(Arc::clone(&slot), &cfg));
        let shutdown = Arc::new(AtomicBool::new(false));

        let (tx, rx) = std::sync::mpsc::sync_channel::<(TcpStream, Instant)>(cfg.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let workers = {
            let state = Arc::clone(&state);
            WorkerPool::start(
                "dd-serve-worker",
                Threads::new(cfg.workers).map_err(|e| format!("serve workers: {e}"))?,
                move |_| worker_loop(Arc::clone(&rx), Arc::clone(&state)),
            )?
        };

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let state = Arc::clone(&state);
            spawn_named("dd-serve-acceptor", move || accept_loop(listener, tx, shutdown, state))?
        };

        Ok(ServerHandle {
            addr,
            registry: Arc::clone(&state.registry),
            observer: cfg.observer,
            slot,
            shutdown,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

/// A running server. Dropping the handle shuts the server down gracefully;
/// call [`ServerHandle::shutdown`] to do it explicitly and get the request
/// count back.
pub struct ServerHandle {
    addr: SocketAddr,
    registry: Arc<Registry>,
    observer: ObserverHandle,
    slot: Arc<ModelSlot>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: WorkerPool,
}

impl ServerHandle {
    /// The bound address (resolves port `0` to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metric registry (same data `/metrics` renders).
    pub fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    /// The hot-swappable model slot the server scores from.
    pub fn slot(&self) -> Arc<ModelSlot> {
        Arc::clone(&self.slot)
    }

    /// Total requests handled so far, across all endpoints.
    pub fn requests_total(&self) -> u64 {
        self.registry
            .snapshot()
            .into_iter()
            .filter(|(name, _)| name.starts_with("serve.requests."))
            .map(|(_, snap)| match snap {
                MetricSnapshot::Counter(c) => c,
                _ => 0,
            })
            .sum()
    }

    /// Graceful shutdown: stop accepting, drain every queued and in-flight
    /// request, join the pool, flush the request log. Returns the total
    /// number of requests served.
    pub fn shutdown(mut self) -> u64 {
        self.shutdown_impl();
        self.requests_total()
    }

    fn shutdown_impl(&mut self) {
        if self.acceptor.is_none() && self.workers.is_empty() {
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept` with a wakeup connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // The acceptor dropped the sender; workers drain the queue and exit.
        self.workers.join();
        self.observer.flush();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}
