//! `dd-smoke` — end-to-end smoke client for a running `dd serve` instance.
//!
//! ```text
//! dd-smoke <host:port> <model.json>      # full endpoint + score check
//! dd-smoke --print-pair <model.json>     # print "src dst" of one known tie
//! ```
//!
//! The full check loads the same model file the server loaded, then verifies:
//! `/healthz` answers 200 and reports the model's tie count; `/score` returns
//! bit-for-bit the same value as calling the model offline, for a sample of
//! ties; `/batch` scores the same sample in one request; unknown ties get
//! `404`; and `/metrics` reports at least as many score requests as we just
//! made. Exits non-zero with a message on the first violation — CI uses this
//! as its serving gate.

use std::process::ExitCode;
use std::sync::Arc;

use dd_graph::NodeId;
use dd_serve::client;
use dd_serve::ScoreResponse;
use deepdirect::DirectionalityModel;

/// Number of ties sampled for the score comparison.
const SAMPLE: usize = 8;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [flag, model] if flag == "--print-pair" => print_pair(model),
        [addr, model] => smoke(addr, model),
        _ => Err("usage: dd-smoke <host:port> <model.json> | dd-smoke --print-pair <model.json>"
            .to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dd-smoke: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Prints `src dst` for one tie the model knows, so shell scripts can build
/// a `/score` URL and a matching `dd score` invocation.
fn print_pair(model_path: &str) -> Result<(), String> {
    let model = DirectionalityModel::load_from_path(model_path)?;
    let &(src, dst) = model.ties().first().ok_or("model has no ties")?;
    println!("{src} {dst}");
    Ok(())
}

fn smoke(addr: &str, model_path: &str) -> Result<(), String> {
    let model = Arc::new(DirectionalityModel::load_from_path(model_path)?);
    let ties: Vec<(u32, u32)> = model.ties().iter().copied().take(SAMPLE).collect();
    if ties.is_empty() {
        return Err("model has no ties to smoke-test with".to_string());
    }

    // Idempotent GETs go through the retry wrapper: a just-started server
    // may briefly refuse connects or shed load with 503s, and the smoke
    // gate should measure correctness, not startup timing.
    let retry = client::RetryPolicy::default();

    // 1. Liveness.
    let health = client::get_with_retry(addr, "/healthz", &retry)?;
    if health.status != 200 {
        return Err(format!("/healthz returned {} (body: {})", health.status, health.body));
    }
    if !health.body.contains(&format!("\"ties\":{}", model.n_ties())) {
        return Err(format!(
            "/healthz reports a different model: expected {} ties in {}",
            model.n_ties(),
            health.body
        ));
    }
    println!("healthz ok: {}", health.body.trim());

    // 2. Single scores must match the offline model bit-for-bit.
    for &(src, dst) in &ties {
        let expected = model
            .score(NodeId(src), NodeId(dst))
            .ok_or_else(|| format!("model lost tie ({src},{dst})"))?;
        let resp = client::get_with_retry(addr, &format!("/score?src={src}&dst={dst}"), &retry)?;
        if resp.status != 200 {
            return Err(format!("/score?src={src}&dst={dst} returned {}", resp.status));
        }
        let parsed: ScoreResponse = serde_json::from_str(&resp.body)
            .map_err(|e| format!("/score body not parseable ({e}): {}", resp.body))?;
        check_bits(src, dst, parsed.score, expected, "/score")?;
    }
    println!("score ok: {} ties bit-exact", ties.len());

    // 3. The same sample through /batch.
    let body: String = ties.iter().map(|(s, d)| format!("{{\"src\":{s},\"dst\":{d}}}\n")).collect();
    let resp = client::post(addr, "/batch", &body)?;
    if resp.status != 200 {
        return Err(format!("/batch returned {} (body: {})", resp.status, resp.body));
    }
    let lines: Vec<&str> = resp.body.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.len() != ties.len() {
        return Err(format!("/batch returned {} lines for {} pairs", lines.len(), ties.len()));
    }
    for (line, &(src, dst)) in lines.iter().zip(&ties) {
        let parsed: ScoreResponse = serde_json::from_str(line)
            .map_err(|e| format!("/batch line not parseable ({e}): {line}"))?;
        let expected = model
            .score(NodeId(src), NodeId(dst))
            .ok_or_else(|| format!("model lost tie ({src},{dst})"))?;
        check_bits(src, dst, parsed.score, expected, "/batch")?;
    }
    println!("batch ok: {} lines bit-exact", lines.len());

    // 4. Unknown ties are 404, malformed queries are 400.
    let resp = client::get_with_retry(addr, "/score?src=4294967295&dst=4294967294", &retry)?;
    if resp.status != 404 {
        return Err(format!("unknown tie should be 404, got {}", resp.status));
    }
    let resp = client::get_with_retry(addr, "/score?src=notanode&dst=0", &retry)?;
    if resp.status != 400 {
        return Err(format!("malformed query should be 400, got {}", resp.status));
    }
    println!("error paths ok: unknown tie 404, malformed 400");

    // 5. /metrics must account for the score requests we just made.
    let resp = client::get_with_retry(addr, "/metrics", &retry)?;
    if resp.status != 200 {
        return Err(format!("/metrics returned {}", resp.status));
    }
    let score_requests = metric_value(&resp.body, "dd_serve_requests_total{endpoint=\"score\"}")?;
    // At least the sample + the two error-path requests.
    let expected_min = (ties.len() + 2) as f64;
    if score_requests < expected_min {
        return Err(format!(
            "/metrics reports {score_requests} score requests, expected >= {expected_min}"
        ));
    }
    let latency_count =
        metric_value(&resp.body, "dd_serve_latency_seconds_count{endpoint=\"score\"}")?;
    if latency_count < expected_min {
        return Err(format!(
            "/metrics latency histogram has {latency_count} samples, expected >= {expected_min}"
        ));
    }
    println!("metrics ok: {score_requests} score requests, {latency_count} latency samples");
    println!("smoke passed against {addr}");
    Ok(())
}

fn check_bits(
    src: u32,
    dst: u32,
    got: Option<f64>,
    expected: f64,
    endpoint: &str,
) -> Result<(), String> {
    let got = got.ok_or_else(|| format!("{endpoint} omitted score for known tie ({src},{dst})"))?;
    if got.to_bits() != expected.to_bits() {
        return Err(format!(
            "{endpoint} score mismatch for ({src},{dst}): served {got:?} vs offline {expected:?}"
        ));
    }
    Ok(())
}

/// Finds `name value` in the /metrics Prometheus text exposition; `name`
/// includes any label set, e.g. `dd_serve_requests_total{endpoint="score"}`.
fn metric_value(metrics: &str, name: &str) -> Result<f64, String> {
    for line in metrics.lines() {
        if let Some(rest) = line.strip_prefix(name) {
            if let Some(value) = rest.strip_prefix(' ') {
                return value
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| format!("unparseable value for {name}: '{value}'"));
            }
        }
    }
    Err(format!("/metrics has no line for {name}"))
}
