//! `dd-router` — standalone fleet router in front of `dd-serve` shards.
//!
//! ```text
//! dd-router --shard 127.0.0.1:9001 --shard 127.0.0.1:9002 [--addr 127.0.0.1:8070]
//!           [--workers N] [--queue-depth N] [--unhealthy-after N] [--vnodes N]
//! ```
//!
//! Prints `dd-router listening on http://<addr>` once ready (the same
//! contract line `dd serve` prints, so scripts parse both identically),
//! then serves until SIGINT/SIGTERM, draining gracefully. The usual fleet
//! entry point is `dd serve --shards N`, which spawns shards and embeds
//! this router in-process; the standalone binary exists for routing over
//! shards managed elsewhere (separate hosts, external supervisors).

use std::process::ExitCode;
use std::time::Duration;

use dd_serve::{signal, Router, RouterConfig};

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dd-router: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_usize(flag: &str, value: Option<String>) -> Result<usize, String> {
    let raw = value.ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse::<usize>().map_err(|_| format!("{flag} must be a number, got '{raw}'"))
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut cfg = RouterConfig::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shard" => {
                cfg.shards.push(it.next().ok_or("--shard needs a host:port value")?);
            }
            "--addr" => cfg.addr = it.next().ok_or("--addr needs a host:port value")?,
            "--workers" => cfg.workers = parse_usize("--workers", it.next())?,
            "--queue-depth" => cfg.queue_depth = parse_usize("--queue-depth", it.next())?,
            "--vnodes" => cfg.vnodes = parse_usize("--vnodes", it.next())?,
            "--unhealthy-after" => {
                cfg.unhealthy_after = parse_usize("--unhealthy-after", it.next())? as u32;
            }
            "--timeout-secs" => {
                cfg.request_timeout =
                    Duration::from_secs(parse_usize("--timeout-secs", it.next())? as u64);
            }
            "--help" | "-h" => {
                println!(
                    "usage: dd-router --shard <host:port> [--shard …] [--addr <host:port>]\n\
                     \x20      [--workers N] [--queue-depth N] [--vnodes N]\n\
                     \x20      [--unhealthy-after N] [--timeout-secs N]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    if cfg.shards.is_empty() {
        return Err("need at least one --shard <host:port>".to_string());
    }

    signal::install_handlers();
    let handle = Router::start(cfg)?;
    println!("dd-router listening on http://{}", handle.addr());
    println!("routes: /healthz /score /batch /admin/reload /metrics");

    while !signal::shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    let served = handle.shutdown();
    println!("dd-router: drained and stopped after {served} requests");
    Ok(())
}
