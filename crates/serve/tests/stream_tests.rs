//! Streaming-ingest integration tests: `POST /ingest` over real sockets.
//!
//! The contracts under test, per DESIGN.md §7.15:
//!
//! - an ingested tie is scoreable on the very next request, without
//!   retraining, and matches the offline fold-in bit for bit;
//! - an unfollow invalidates exactly the touched cache entries (the next
//!   request is a 404, not a stale cached score);
//! - `POST /admin/reload` rebinds the engine to the new model (the event
//!   log survives) and purges dead-generation cache entries;
//! - the same event log, applied in batches of 1, 7, or all-at-once,
//!   against servers with 1 or 8 workers, serves byte-identical responses
//!   for every probe — replay determinism end to end.

use std::sync::Arc;

use dd_graph::generators::{social_network, SocialNetConfig};
use dd_graph::sampling::hide_directions;
use dd_graph::NodeId;
use dd_serve::client;
use dd_serve::{HealthResponse, IngestResponse, ReloadResponse, ServeConfig, Server, ServerHandle};
use dd_stream::{to_jsonl, EventOp, TieEvent};
use deepdirect::{DeepDirect, DeepDirectConfig, DirectionalityModel, FoldInScorer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fit_model(seed: u64) -> DirectionalityModel {
    let gen_cfg = SocialNetConfig { n_nodes: 60, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(seed);
    let net = social_network(&gen_cfg, &mut rng).network;
    let hidden = hide_directions(&net, 0.5, &mut rng).network;
    let cfg = DeepDirectConfig {
        dim: 8,
        max_iterations: Some(5_000),
        seed,
        ..DeepDirectConfig::default()
    };
    DeepDirect::new(cfg).fit(&hidden)
}

fn start_streaming(
    model: &Arc<DirectionalityModel>,
    mutate: impl FnOnce(&mut ServeConfig),
) -> ServerHandle {
    let mut cfg =
        ServeConfig { addr: "127.0.0.1:0".to_string(), stream: true, ..ServeConfig::default() };
    mutate(&mut cfg);
    Server::start(Arc::clone(model), cfg).expect("server starts")
}

/// An ordered pair absent from the trained universe in both orders, whose
/// head node has trained in-ties (so the fold-in mean is well-defined).
fn unseen_pair(model: &DirectionalityModel) -> (u32, u32) {
    let nodes: Vec<u32> = {
        let mut seen: Vec<u32> = model.ties().iter().flat_map(|&(u, v)| [u, v]).collect();
        seen.sort_unstable();
        seen.dedup();
        seen
    };
    for &u in &nodes {
        for &v in &nodes {
            if u != v
                && model.tie_row(NodeId(u), NodeId(v)).is_none()
                && model.tie_row(NodeId(v), NodeId(u)).is_none()
                && model.ties().iter().any(|&(_, d)| d == v)
            {
                return (u, v);
            }
        }
    }
    panic!("no unseen pair with an in-tied head in the trained universe");
}

fn ingest(addr: &str, events: &[TieEvent]) -> IngestResponse {
    let resp = client::post(addr, "/ingest", &to_jsonl(events)).expect("ingest request");
    assert_eq!(resp.status, 200, "ingest failed: {}", resp.body);
    serde_json::from_str(&resp.body).expect("valid ingest JSON")
}

#[test]
fn ingested_tie_scores_via_foldin_on_the_very_next_request() {
    let model = Arc::new(fit_model(21));
    let (u, v) = unseen_pair(&model);
    let handle = start_streaming(&model, |_| {});
    let addr = handle.addr().to_string();

    let path = format!("/score?src={u}&dst={v}");
    let before = client::get(&addr, &path).expect("score");
    assert_eq!(before.status, 404, "unseen pair must 404 before ingest: {}", before.body);

    let applied = ingest(&addr, &[TieEvent::new(EventOp::Follow, u, v)]);
    assert_eq!(applied.status, "applied");
    assert_eq!(applied.applied, 1);
    assert_eq!(applied.live_dynamic, 1);
    assert_eq!(applied.fingerprint, format!("{:016x}", model.fingerprint()));

    // The very next request serves the fold-in score, bit-identical to the
    // offline FoldInScorer over the same frozen model.
    let after = client::get(&addr, &path).expect("score");
    assert_eq!(after.status, 200, "ingested tie must score: {}", after.body);
    let parsed: dd_serve::ScoreResponse = serde_json::from_str(&after.body).expect("score JSON");
    let want = FoldInScorer::new(&model).score(NodeId(u), NodeId(v));
    assert_eq!(parsed.score.expect("live tie").to_bits(), want.to_bits());

    // /healthz reports the live dynamic tie.
    let health = client::get(&addr, "/healthz").expect("healthz");
    let h: HealthResponse = serde_json::from_str(&health.body).expect("health JSON");
    assert_eq!(h.live_dynamic, Some(1));
}

#[test]
fn unfollow_invalidates_the_cached_entry_and_refollow_restores_the_exact_score() {
    let model = Arc::new(fit_model(22));
    let &(u, v) = model.ties().first().expect("a trained tie");
    let exact = model.score(NodeId(u), NodeId(v)).expect("trained pair scores");
    let handle = start_streaming(&model, |_| {});
    let addr = handle.addr().to_string();
    let path = format!("/score?src={u}&dst={v}");

    // Score twice so the entry is warm in the cache.
    for _ in 0..2 {
        let resp = client::get(&addr, &path).expect("score");
        assert_eq!(resp.status, 200);
    }

    // The unfollow must invalidate that cached entry — a stale hit would
    // keep serving the trained score.
    let applied = ingest(&addr, &[TieEvent::new(EventOp::Unfollow, u, v)]);
    assert_eq!(applied.invalidated, 1, "exactly the touched entry is invalidated");
    let gone = client::get(&addr, &path).expect("score");
    assert_eq!(gone.status, 404, "tombstoned tie must 404: {}", gone.body);

    let _ = ingest(&addr, &[TieEvent::new(EventOp::Follow, u, v)]);
    let back = client::get(&addr, &path).expect("score");
    assert_eq!(back.status, 200);
    let parsed: dd_serve::ScoreResponse = serde_json::from_str(&back.body).expect("score JSON");
    assert_eq!(
        parsed.score.expect("restored tie").to_bits(),
        exact.to_bits(),
        "re-follow restores the exact trained score"
    );
}

/// Regression for a lost-invalidation race: the scorer used to compute a
/// score under the engine read lock, drop the lock, and only then insert
/// into the LRU — so an entire `/ingest` batch (apply under the write lock,
/// then invalidate the touched keys) could slip between the compute and the
/// insert, after which the pre-ingest score was cached and served forever.
/// The fix inserts while still holding the read lock; this test hammers the
/// window from a concurrent scorer and asserts the tombstone always holds
/// once the ingest response has returned.
#[test]
fn concurrent_scores_never_resurrect_a_tombstoned_tie() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let model = Arc::new(fit_model(28));
    let &(u, v) = model.ties().first().expect("a trained tie");
    let handle = start_streaming(&model, |cfg| cfg.workers = 4);
    let addr = handle.addr().to_string();
    let path = format!("/score?src={u}&dst={v}");

    let stop = Arc::new(AtomicBool::new(false));
    dd_runtime::scope(|s| {
        {
            let (addr, path, stop) = (addr.clone(), path.clone(), Arc::clone(&stop));
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = client::get(&addr, &path);
                }
            });
        }
        for round in 0..30 {
            let _ = ingest(&addr, &[TieEvent::new(EventOp::Unfollow, u, v)]);
            // By the time the ingest response returns, its invalidation is
            // complete — no interleaving with the concurrent scorer may
            // leave (or later insert) a pre-ingest score in the cache.
            for probe in 0..5 {
                let resp = client::get(&addr, &path).expect("score");
                assert_eq!(
                    resp.status, 404,
                    "round {round}, probe {probe}: tombstoned tie served a stale score: {}",
                    resp.body
                );
            }
            let _ = ingest(&addr, &[TieEvent::new(EventOp::Follow, u, v)]);
        }
        stop.store(true, Ordering::Relaxed);
    });
}

#[test]
fn reload_rebinds_the_engine_and_purges_dead_generation_cache_entries() {
    let model = Arc::new(fit_model(23));
    let other = fit_model(24);
    assert_ne!(model.fingerprint(), other.fingerprint());
    let dir = std::env::temp_dir().join(format!("dd_stream_reload_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let artifact = dir.join("next.json");
    other.save_to_path(&artifact).unwrap();

    let handle = start_streaming(&model, |_| {});
    let addr = handle.addr().to_string();

    // Warm the cache on generation 1 and fold in one dynamic tie.
    let warmed: Vec<(u32, u32)> = model.ties().iter().copied().take(8).collect();
    for &(u, v) in &warmed {
        let resp = client::get(&addr, &format!("/score?src={u}&dst={v}")).expect("score");
        assert_eq!(resp.status, 200);
    }
    let (du, dv) = unseen_pair(&model);
    let _ = ingest(&addr, &[TieEvent::new(EventOp::Follow, du, dv)]);
    // Tombstone a trained tie outside the warmed set (so the purge count
    // below stays exact): the tombstone must survive the reload.
    let &(tu, tv) = model.ties().get(10).expect("an 11th trained tie");
    let _ = ingest(&addr, &[TieEvent::new(EventOp::Unfollow, tu, tv)]);

    let body =
        format!("{{\"path\":{}}}", serde_json::to_string(&artifact.display().to_string()).unwrap());
    let resp = client::post(&addr, "/admin/reload", &body).expect("reload");
    assert_eq!(resp.status, 200, "reload failed: {}", resp.body);
    let reloaded: ReloadResponse = serde_json::from_str(&resp.body).expect("reload JSON");
    // Every generation-1 entry is dead after the swap; the reload reclaims
    // them instead of letting them squat on LRU capacity.
    assert_eq!(reloaded.cache_purged, Some(warmed.len() as u64), "dead entries purged");

    // The engine rebound: the event log survived the swap, re-normalized
    // against the new model, so the fleet keeps one consistent view.
    let health = client::get(&addr, "/healthz").expect("healthz");
    let h: HealthResponse = serde_json::from_str(&health.body).expect("health JSON");
    assert_eq!(h.model_fingerprint, format!("{:016x}", other.fingerprint()));
    let live = h.live_dynamic.expect("streaming server reports live_dynamic");
    // (du, dv) may or may not be trained under the new model; either way the
    // pair must still be live — served from the retained log.
    let score = client::get(&addr, &format!("/score?src={du}&dst={dv}")).expect("score");
    assert_eq!(score.status, 200, "refolded tie must stay live: {}", score.body);
    assert!(live <= 1, "at most the one refolded dynamic tie: {live}");
    // The pre-reload tombstone holds on the very next request: whether
    // (tu, tv) is trained under the new model (tombstone re-applied from
    // the log) or untrained (no trained row), it must 404 — never serve an
    // overlay-blind trained score cached during the swap window.
    let dead = client::get(&addr, &format!("/score?src={tu}&dst={tv}")).expect("score");
    assert_eq!(dead.status, 404, "tombstone must survive the reload: {}", dead.body);

    std::fs::remove_dir_all(&dir).ok();
}

/// A churny synthetic log over trained and untrained pairs: follows,
/// tombstones, refollows, reciprocations.
fn synthetic_log(model: &DirectionalityModel) -> Vec<TieEvent> {
    let trained: Vec<(u32, u32)> = model.ties().iter().copied().take(6).collect();
    let (u, v) = unseen_pair(model);
    let mut events = vec![TieEvent::new(EventOp::Follow, u, v)];
    for &(a, b) in trained.iter().take(3) {
        events.push(TieEvent::new(EventOp::Unfollow, a, b));
    }
    events.push(TieEvent::new(EventOp::Reciprocate, u, v));
    for &(a, b) in trained.iter().skip(3) {
        events.push(TieEvent::new(EventOp::Unfollow, a, b));
        events.push(TieEvent::new(EventOp::Follow, a, b));
    }
    events.push(TieEvent::new(EventOp::Unfollow, u, v));
    events.push(TieEvent::new(EventOp::Follow, u, v));
    events
}

/// Satellite: replay determinism end to end. The same event log applied in
/// batches of 1, 7, and all-at-once, against servers running 1 and 8
/// workers, must serve byte-identical `/score` responses for every probe
/// and report the same engine digest.
#[test]
fn replay_serves_bit_identical_scores_across_batch_sizes_and_worker_counts() {
    let model = Arc::new(fit_model(25));
    let log = synthetic_log(&model);
    let mut probes: Vec<(u32, u32)> = model.ties().iter().copied().take(10).collect();
    let (u, v) = unseen_pair(&model);
    probes.push((u, v));
    probes.push((v, u));

    let mut runs: Vec<(String, Vec<String>)> = Vec::new();
    for workers in [1usize, 8] {
        for batch in [1usize, 7, log.len()] {
            let handle = start_streaming(&model, |cfg| cfg.workers = workers);
            let addr = handle.addr().to_string();
            let mut digest = String::new();
            for chunk in log.chunks(batch) {
                digest = ingest(&addr, chunk).digest;
            }
            let responses: Vec<String> = probes
                .iter()
                .map(|&(s, d)| {
                    let resp =
                        client::get(&addr, &format!("/score?src={s}&dst={d}")).expect("score");
                    format!("{} {}", resp.status, resp.body)
                })
                .collect();
            runs.push((digest, responses));
            handle.shutdown();
        }
    }
    let (first_digest, first_responses) = &runs[0];
    for (i, (digest, responses)) in runs.iter().enumerate().skip(1) {
        assert_eq!(digest, first_digest, "run {i}: engine digest diverged");
        assert_eq!(responses, first_responses, "run {i}: served bytes diverged");
    }
}

#[test]
fn ingest_is_atomic_and_rejects_malformed_batches_whole() {
    let model = Arc::new(fit_model(26));
    let (u, v) = unseen_pair(&model);
    let handle = start_streaming(&model, |_| {});
    let addr = handle.addr().to_string();

    // Torn batch: a valid line followed by a truncated one. Nothing applies.
    let torn = format!("{{\"op\":\"follow\",\"src\":{u},\"dst\":{v}}}\n{{\"op\":\"foll");
    let resp = client::post(&addr, "/ingest", &torn).expect("ingest");
    assert_eq!(resp.status, 400, "torn batch must be rejected: {}", resp.body);
    assert!(resp.body.contains("line 2"), "error names the torn line: {}", resp.body);
    let score = client::get(&addr, &format!("/score?src={u}&dst={v}")).expect("score");
    assert_eq!(score.status, 404, "rejected batch must not half-apply");

    // Empty and self-tie batches are 400s too.
    let resp = client::post(&addr, "/ingest", "\n\n").expect("ingest");
    assert_eq!(resp.status, 400);
    let resp =
        client::post(&addr, "/ingest", "{\"op\":\"follow\",\"src\":3,\"dst\":3}").expect("ingest");
    assert_eq!(resp.status, 400, "{}", resp.body);
}

#[test]
fn ingest_is_disabled_without_the_stream_flag() {
    let model = Arc::new(fit_model(27));
    let handle = Server::start(
        Arc::clone(&model),
        ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::default() },
    )
    .expect("server starts");
    let addr = handle.addr().to_string();
    let resp =
        client::post(&addr, "/ingest", "{\"op\":\"follow\",\"src\":1,\"dst\":2}").expect("ingest");
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("--stream"), "error explains the flag: {}", resp.body);
    // And /healthz omits live_dynamic entirely.
    let health = client::get(&addr, "/healthz").expect("healthz");
    let h: HealthResponse = serde_json::from_str(&health.body).expect("health JSON");
    assert_eq!(h.live_dynamic, None);
}
