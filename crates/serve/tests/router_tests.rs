//! Fleet router integration tests: real shard servers on ephemeral ports
//! behind a real [`Router`], exercising bit-exact forwarding, batch order
//! preservation, seeded mid-stream shard kills with zero client-visible
//! failures, unhealthy quarantine + re-probe after a shard comes back, and
//! fleet-wide reload fan-out.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dd_graph::generators::{social_network, SocialNetConfig};
use dd_graph::sampling::hide_directions;
use dd_graph::NodeId;
use dd_serve::client;
use dd_serve::{
    Router, RouterConfig, RouterHealth, ScoreResponse, ServeConfig, Server, ServerHandle,
};
use dd_testkit::KillSchedule;
use deepdirect::{DeepDirect, DeepDirectConfig, DirectionalityModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fit_model() -> DirectionalityModel {
    let gen_cfg = SocialNetConfig { n_nodes: 60, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(13);
    let net = social_network(&gen_cfg, &mut rng).network;
    let hidden = hide_directions(&net, 0.5, &mut rng).network;
    let cfg =
        DeepDirectConfig { dim: 8, max_iterations: Some(5_000), ..DeepDirectConfig::default() };
    DeepDirect::new(cfg).fit(&hidden)
}

fn start_shard(model: &Arc<DirectionalityModel>, addr: &str) -> ServerHandle {
    Server::start(
        Arc::clone(model),
        ServeConfig { addr: addr.to_string(), workers: 2, ..ServeConfig::default() },
    )
    .expect("shard starts")
}

fn start_fleet(
    model: &Arc<DirectionalityModel>,
    n_shards: usize,
    cfg_mutator: impl FnOnce(&mut RouterConfig),
) -> (Vec<ServerHandle>, dd_serve::RouterHandle) {
    let shards: Vec<ServerHandle> =
        (0..n_shards).map(|_| start_shard(model, "127.0.0.1:0")).collect();
    let mut cfg = RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: shards.iter().map(|s| s.addr().to_string()).collect(),
        ..RouterConfig::default()
    };
    cfg_mutator(&mut cfg);
    let router = Router::start(cfg).expect("router starts");
    (shards, router)
}

#[test]
fn routed_scores_are_bit_identical_to_offline_scoring() {
    let model = Arc::new(fit_model());
    let (shards, router) = start_fleet(&model, 3, |_| {});
    let addr = router.addr().to_string();
    let fingerprint = format!("{:016x}", model.fingerprint());

    for &(src, dst) in model.ties().iter().take(40) {
        let resp = client::get(&addr, &format!("/score?src={src}&dst={dst}")).unwrap();
        assert_eq!(resp.status, 200, "body: {}", resp.body);
        let parsed: ScoreResponse = serde_json::from_str(&resp.body).unwrap();
        let want = model.score(NodeId(src), NodeId(dst)).unwrap();
        assert_eq!(parsed.score.unwrap().to_bits(), want.to_bits());
        assert_eq!(parsed.fingerprint.as_deref(), Some(fingerprint.as_str()));
    }

    // Unknown ties and malformed queries pass the shard's verdict through.
    assert_eq!(client::get(&addr, "/score?src=4294967295&dst=4294967294").unwrap().status, 404);
    assert_eq!(client::get(&addr, "/score?src=x&dst=2").unwrap().status, 400);
    assert_eq!(client::get(&addr, "/nope").unwrap().status, 404);

    // Work actually spread across the ring: more than one shard forwarded.
    let busy = shards.iter().filter(|s| s.requests_total() > 0).count();
    assert!(busy >= 2, "consistent hashing should spread 40 ties over 3 shards, got {busy}");

    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

#[test]
fn batch_responses_preserve_request_order_across_shards() {
    let model = Arc::new(fit_model());
    let (shards, router) = start_fleet(&model, 3, |_| {});
    let addr = router.addr().to_string();

    let ties: Vec<(u32, u32)> = model.ties().iter().copied().take(24).collect();
    let body: String = ties.iter().map(|(s, d)| format!("{{\"src\":{s},\"dst\":{d}}}\n")).collect();
    let resp = client::post(&addr, "/batch", &body).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);

    let lines: Vec<ScoreResponse> = resp
        .body
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(lines.len(), ties.len());
    // The router splits the batch by shard and must reassemble in the
    // original order even though sub-batches complete in any order.
    for (line, &(src, dst)) in lines.iter().zip(&ties) {
        assert_eq!((line.src, line.dst), (src, dst), "order preserved");
        let want = model.score(NodeId(src), NodeId(dst)).unwrap();
        assert_eq!(line.score.unwrap().to_bits(), want.to_bits());
    }

    assert_eq!(client::post(&addr, "/batch", "not json\n").unwrap().status, 400);
    assert_eq!(client::post(&addr, "/batch", "\n").unwrap().status, 400);

    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

/// The failover acceptance test: kill one replica mid-stream at a seeded
/// point while clients hammer the router; every request must still succeed
/// bit-exactly, and the router must record the failover.
#[test]
fn killing_a_shard_mid_stream_is_invisible_to_clients() {
    let model = Arc::new(fit_model());
    let (mut shards, router) = start_fleet(&model, 3, |cfg| {
        cfg.unhealthy_after = 1;
    });
    let addr = router.addr().to_string();
    let ties: Vec<(u32, u32)> = model.ties().to_vec();

    let (kill_after, victim) = KillSchedule::new(0xfee1).next_kill(shards.len(), 40, 80);
    let completed = AtomicUsize::new(0);
    let killed = AtomicBool::new(false);
    const N_CLIENTS: usize = 4;
    const PER_CLIENT: usize = 60;

    dd_runtime::scope(|s| {
        // Client threads: sustained load, every response verified bit-exact.
        for t in 0..N_CLIENTS {
            let addr = &addr;
            let ties = &ties;
            let model = &model;
            let completed = &completed;
            s.spawn(move || {
                for i in 0..PER_CLIENT {
                    let (src, dst) = ties[(t * 977 + i) % ties.len()];
                    let resp = client::get(addr, &format!("/score?src={src}&dst={dst}"))
                        .expect("router must absorb the shard kill");
                    assert_eq!(resp.status, 200, "failover leaked a failure: {}", resp.body);
                    let parsed: ScoreResponse = serde_json::from_str(&resp.body).unwrap();
                    let want = model.score(NodeId(src), NodeId(dst)).unwrap();
                    assert_eq!(parsed.score.unwrap().to_bits(), want.to_bits());
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // The executioner: waits for the seeded request count, then drops
        // the victim shard (socket closes, in-flight requests drain first —
        // exactly what a graceful kill looks like from the router).
        s.spawn(|| {
            while completed.load(Ordering::Relaxed) < kill_after {
                std::thread::sleep(Duration::from_millis(1));
            }
            let victim_handle = shards.remove(victim);
            victim_handle.shutdown();
            killed.store(true, Ordering::Relaxed);
        });
    });

    assert!(killed.load(Ordering::Relaxed), "kill point must fire mid-stream");
    assert_eq!(completed.load(Ordering::Relaxed), N_CLIENTS * PER_CLIENT);

    // The router noticed: the dead shard is quarantined in /healthz and the
    // failover counter moved.
    let health = client::get(&addr, "/healthz").unwrap();
    let parsed: RouterHealth = serde_json::from_str(&health.body).unwrap();
    assert_eq!(parsed.healthy_shards, 2, "one shard down: {}", health.body);
    assert_eq!(parsed.shards.iter().filter(|s| !s.healthy).count(), 1);

    let snapshot = router.registry().snapshot();
    let failovers = snapshot
        .iter()
        .find_map(|(n, s)| match (n.as_str(), s) {
            ("router.failovers", dd_telemetry::MetricSnapshot::Counter(c)) => Some(*c),
            _ => None,
        })
        .unwrap();
    assert!(failovers > 0, "failovers counter must record the rescue");

    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

#[test]
fn dead_shard_is_quarantined_then_reprobed_after_restart() {
    let model = Arc::new(fit_model());
    let (mut shards, router) = start_fleet(&model, 2, |cfg| {
        cfg.unhealthy_after = 1;
        cfg.probe_interval = Duration::from_millis(50);
    });
    let addr = router.addr().to_string();
    let ties: Vec<(u32, u32)> = model.ties().iter().copied().take(32).collect();

    let drive = |label: &str| {
        for &(src, dst) in &ties {
            let resp = client::get(&addr, &format!("/score?src={src}&dst={dst}")).unwrap();
            assert_eq!(resp.status, 200, "{label}: {}", resp.body);
        }
    };
    drive("warmup");

    // Kill shard 0 and remember its (ephemeral) address.
    let dead_addr = shards[0].addr().to_string();
    shards.remove(0).shutdown();
    drive("degraded");

    let health: RouterHealth =
        serde_json::from_str(&client::get(&addr, "/healthz").unwrap().body).unwrap();
    assert_eq!(health.status, "degraded");
    assert_eq!(health.healthy_shards, 1);
    let dead = health.shards.iter().find(|s| s.addr == dead_addr).unwrap();
    assert!(!dead.healthy, "dead shard quarantined");

    // Restart on the same port (std sets SO_REUSEADDR on unix) and let the
    // prober notice. Quarantine must lift without any admin action.
    shards.push(start_shard(&model, &dead_addr));
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let health: RouterHealth =
            serde_json::from_str(&client::get(&addr, "/healthz").unwrap().body).unwrap();
        if health.healthy_shards == 2 {
            assert_eq!(health.status, "ok");
            let revived = health.shards.iter().find(|s| s.addr == dead_addr).unwrap();
            assert!(revived.healthy);
            assert_eq!(
                revived.fingerprint.as_deref(),
                Some(format!("{:016x}", model.fingerprint()).as_str())
            );
            break;
        }
        assert!(std::time::Instant::now() < deadline, "prober never lifted the quarantine");
        std::thread::sleep(Duration::from_millis(25));
    }
    drive("recovered");

    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

#[test]
fn fleet_reload_fans_out_to_every_shard() {
    let model = Arc::new(fit_model());
    let (shards, router) = start_fleet(&model, 2, |_| {});
    let addr = router.addr().to_string();

    // Train a second model on the same universe and stage its artifact.
    let gen_cfg = SocialNetConfig { n_nodes: 60, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(13);
    let net = social_network(&gen_cfg, &mut rng).network;
    let hidden = hide_directions(&net, 0.5, &mut rng).network;
    let next = DeepDirect::new(DeepDirectConfig {
        dim: 8,
        max_iterations: Some(5_000),
        seed: 99,
        ..DeepDirectConfig::default()
    })
    .fit(&hidden);
    let new_fingerprint = format!("{:016x}", next.fingerprint());
    assert_ne!(new_fingerprint, format!("{:016x}", model.fingerprint()));
    let path = std::env::temp_dir().join(format!("dd_fleet_reload_{}.ddm", std::process::id()));
    next.save_binary_to_path(&path).unwrap();

    let body =
        format!("{{\"path\":{}}}", serde_json::to_string(&path.display().to_string()).unwrap());
    let resp = client::post(&addr, "/admin/reload", &body).unwrap();
    assert_eq!(resp.status, 200, "fleet reload failed: {}", resp.body);

    // Every shard now reports the new fingerprint at generation 2.
    let health: RouterHealth =
        serde_json::from_str(&client::get(&addr, "/healthz").unwrap().body).unwrap();
    for shard in &health.shards {
        assert!(shard.healthy);
        assert_eq!(shard.fingerprint.as_deref(), Some(new_fingerprint.as_str()), "{shard:?}");
        assert_eq!(shard.generation, Some(2));
    }

    // A reload pointing nowhere fails loudly and moves nothing.
    let bad = client::post(&addr, "/admin/reload", "{\"path\":\"/no/such.ddm\"}").unwrap();
    assert_eq!(bad.status, 502, "partial/failed fan-out is a gateway error: {}", bad.body);
    let health: RouterHealth =
        serde_json::from_str(&client::get(&addr, "/healthz").unwrap().body).unwrap();
    for shard in &health.shards {
        assert_eq!(shard.generation, Some(2), "failed reload must not bump generations");
    }

    let _ = std::fs::remove_file(&path);
    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}
