//! In-process integration tests for the query server: a real `TcpListener`
//! on an ephemeral port, real sockets, and the bit-exactness contract —
//! every served score must equal the offline [`DirectionalityModel::score`]
//! exactly, no matter how many clients hammer the pool at once.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use dd_graph::generators::{social_network, SocialNetConfig};
use dd_graph::sampling::hide_directions;
use dd_graph::NodeId;
use dd_serve::client;
use dd_serve::{ScoreResponse, ServeConfig, Server, ServerHandle};
use dd_telemetry::{MetricSnapshot, ObserverHandle};
use deepdirect::{DeepDirect, DeepDirectConfig, DirectionalityModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fit_model() -> DirectionalityModel {
    let gen_cfg = SocialNetConfig { n_nodes: 80, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(7);
    let net = social_network(&gen_cfg, &mut rng).network;
    let hidden = hide_directions(&net, 0.5, &mut rng).network;
    let cfg =
        DeepDirectConfig { dim: 8, max_iterations: Some(8_000), ..DeepDirectConfig::default() };
    DeepDirect::new(cfg).fit(&hidden)
}

fn start(cfg_mutator: impl FnOnce(&mut ServeConfig)) -> (Arc<DirectionalityModel>, ServerHandle) {
    let model = Arc::new(fit_model());
    let mut cfg = ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::default() };
    cfg_mutator(&mut cfg);
    let handle = Server::start(Arc::clone(&model), cfg).expect("server starts");
    (model, handle)
}

fn counter(handle: &ServerHandle, name: &str) -> u64 {
    handle
        .registry()
        .snapshot()
        .into_iter()
        .find(|(n, _)| n == name)
        .and_then(|(_, s)| match s {
            MetricSnapshot::Counter(c) => Some(c),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no counter named {name}"))
}

/// The acceptance-criteria test: >= 64 concurrent requests from >= 8 client
/// threads, every response bit-identical to the offline score, and /metrics
/// accounting for every request with a non-empty latency histogram.
#[test]
fn concurrent_requests_match_offline_scores_bit_for_bit() {
    let (model, handle) = start(|_| {});
    let addr = handle.addr().to_string();

    let ties: Vec<(u32, u32)> = model.ties().iter().copied().take(16).collect();
    assert!(ties.len() >= 8, "model too small: {} ties", ties.len());
    let expected: Vec<f64> =
        ties.iter().map(|&(u, v)| model.score(NodeId(u), NodeId(v)).unwrap()).collect();

    const N_THREADS: usize = 8;
    const PER_THREAD: usize = 8; // 64 requests total
    dd_runtime::scope(|s| {
        for t in 0..N_THREADS {
            let addr = &addr;
            let ties = &ties;
            let expected = &expected;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let idx = (i + t * 3) % ties.len();
                    let (src, dst) = ties[idx];
                    let resp = client::get(addr, &format!("/score?src={src}&dst={dst}"))
                        .expect("request succeeds");
                    assert_eq!(resp.status, 200, "body: {}", resp.body);
                    let parsed: ScoreResponse =
                        serde_json::from_str(&resp.body).expect("valid score JSON");
                    let got = parsed.score.expect("known tie has a score");
                    assert_eq!(
                        got.to_bits(),
                        expected[idx].to_bits(),
                        "thread {t} req {i}: served {got} != offline {}",
                        expected[idx]
                    );
                }
            });
        }
    });

    let total = (N_THREADS * PER_THREAD) as u64;
    assert_eq!(counter(&handle, "serve.requests.score"), total);
    assert_eq!(handle.requests_total(), total);

    // The latency histogram must have recorded every request.
    let snapshot = handle.registry().snapshot();
    let (_, latency) = snapshot
        .iter()
        .find(|(n, _)| n == "serve.latency.score")
        .expect("latency histogram registered");
    let MetricSnapshot::Histogram(h) = latency else { panic!("latency is a histogram") };
    assert_eq!(h.count, total);
    assert!(h.sum > 0.0, "latency sum should be positive");
    assert!(h.buckets.iter().any(|&(_, c)| c > 0), "some bucket must be non-empty");

    // /metrics (the wire view) agrees with the registry (the in-process
    // view), in Prometheus text exposition format.
    let resp = client::get(&addr, "/metrics").expect("metrics");
    assert_eq!(resp.status, 200);
    assert!(
        resp.body.contains(&format!("dd_serve_requests_total{{endpoint=\"score\"}} {total}")),
        "metrics dump missing request count: {}",
        resp.body
    );
    assert!(resp.body.contains("# TYPE dd_serve_requests_total counter"), "{}", resp.body);
    assert!(
        resp.body
            .contains(&format!("dd_serve_latency_seconds_count{{endpoint=\"score\"}} {total}")),
        "{}",
        resp.body
    );
    assert!(
        resp.body.contains("dd_serve_latency_seconds_bucket{endpoint=\"score\",le=\"+Inf\"}"),
        "{}",
        resp.body
    );

    assert!(handle.shutdown() >= total);
}

/// The tracing acceptance test: one traced request shows a single trace ID
/// across the `serve.request` JSONL event and its child queue-wait /
/// handler / cache spans; a client-supplied `traceparent` is honored and
/// echoed back on the response.
#[test]
fn request_traces_share_one_trace_id_and_echo_traceparent() {
    let log = std::env::temp_dir().join(format!("dd_serve_trace_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log);
    let sink = dd_telemetry::JsonlSink::create(&log).expect("jsonl sink");
    let (model, handle) = start(|cfg| cfg.observer = ObserverHandle::new(Arc::new(sink)));
    let addr = handle.addr().to_string();
    let &(src, dst) = model.ties().first().expect("model has ties");

    // Request 1 joins a caller-supplied trace; the server must echo it.
    let supplied = "00-000000000000000000000000deadbeef-0000000000000001-01";
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(
        format!(
            "GET /score?src={src}&dst={dst} HTTP/1.1\r\nHost: x\r\ntraceparent: {supplied}\r\n\r\n"
        )
        .as_bytes(),
    )
    .unwrap();
    let mut resp = String::new();
    raw.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    let echoed = resp
        .lines()
        .find_map(|l| l.strip_prefix("traceparent: "))
        .expect("response echoes traceparent");
    assert!(echoed.starts_with("00-"), "echo keeps the 00 version: {echoed}");
    assert!(echoed.contains("deadbeef-"), "echo carries the supplied trace id, got: {echoed}");

    // Request 2 (same pair, cache warm → hit) and request 3 (fresh trace).
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(
        format!(
            "GET /score?src={src}&dst={dst} HTTP/1.1\r\nHost: x\r\ntraceparent: {supplied}\r\n\r\n"
        )
        .as_bytes(),
    )
    .unwrap();
    let mut resp2 = String::new();
    raw.read_to_string(&mut resp2).unwrap();
    assert!(resp2.starts_with("HTTP/1.1 200"), "{resp2}");
    assert_eq!(client::get(&addr, "/healthz").unwrap().status, 200);

    handle.shutdown(); // flushes the JSONL sink
    let events = dd_telemetry::read_jsonl(&log).expect("readable request log");
    let supplied_trace = "00000000deadbeef"; // low 64 bits of the 128-bit field

    let requests: Vec<_> = events
        .iter()
        .filter(|e| e.kind == "serve.request" && e.name.as_deref() == Some("score"))
        .collect();
    assert_eq!(requests.len(), 2, "two score requests logged");
    for r in &requests {
        assert_eq!(r.trace_id.as_deref(), Some(supplied_trace), "traceparent honored");
        assert!(r.span_id.is_some() && r.parent_span_id.is_none(), "request event is the root");
    }

    // Child spans parent to their request root and share its trace ID.
    let root_sid = requests[0].span_id.clone().unwrap();
    let children: Vec<_> = events
        .iter()
        .filter(|e| e.kind == "span" && e.parent_span_id.as_deref() == Some(root_sid.as_str()))
        .collect();
    let names: Vec<&str> = children.iter().filter_map(|e| e.name.as_deref()).collect();
    assert!(names.contains(&"serve.queue_wait"), "missing queue-wait span: {names:?}");
    assert!(names.contains(&"serve.handler.score"), "missing handler span: {names:?}");
    for c in &children {
        assert_eq!(c.trace_id.as_deref(), Some(supplied_trace), "one trace id per request");
    }

    // The warm second request tags its cache hit inside the same trace.
    assert!(
        events.iter().any(|e| e.kind == "span"
            && e.name.as_deref() == Some("serve.cache.hit")
            && e.trace_id.as_deref() == Some(supplied_trace)),
        "cache hit tagged in trace"
    );
    // The miss on the cold first request is tagged too.
    assert!(
        events.iter().any(|e| e.kind == "span"
            && e.name.as_deref() == Some("serve.cache.miss")
            && e.trace_id.as_deref() == Some(supplied_trace)),
        "cache miss tagged in trace"
    );

    // The untraced /healthz request opened its own (different) trace.
    let health = events
        .iter()
        .find(|e| e.kind == "serve.request" && e.name.as_deref() == Some("healthz"))
        .expect("healthz logged");
    assert!(health.trace_id.is_some());
    assert_ne!(health.trace_id.as_deref(), Some(supplied_trace));

    let _ = std::fs::remove_file(&log);
}

#[test]
fn batch_endpoint_scores_many_pairs_per_request() {
    let (model, handle) = start(|_| {});
    let addr = handle.addr().to_string();
    let ties: Vec<(u32, u32)> = model.ties().iter().copied().take(5).collect();

    let body: String = ties
        .iter()
        .map(|(s, d)| format!("{{\"src\":{s},\"dst\":{d}}}\n"))
        .chain(std::iter::once("{\"src\":4294967295,\"dst\":4294967295}\n".to_string()))
        .collect();
    let resp = client::post(&addr, "/batch", &body).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body);

    let lines: Vec<ScoreResponse> = resp
        .body
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).expect("valid line"))
        .collect();
    assert_eq!(lines.len(), ties.len() + 1);
    for (parsed, &(src, dst)) in lines.iter().zip(&ties) {
        assert_eq!((parsed.src, parsed.dst), (src, dst));
        let expected = model.score(NodeId(src), NodeId(dst)).unwrap();
        assert_eq!(parsed.score.unwrap().to_bits(), expected.to_bits());
        assert!(parsed.error.is_none());
    }
    let unknown = lines.last().unwrap();
    assert!(unknown.score.is_none(), "unknown tie must not get a score");
    assert!(unknown.error.is_some());

    // Malformed and empty batches are client errors.
    assert_eq!(client::post(&addr, "/batch", "not json\n").unwrap().status, 400);
    assert_eq!(client::post(&addr, "/batch", "\n\n").unwrap().status, 400);
}

#[test]
fn malformed_requests_get_4xx_not_hangs() {
    let (_model, handle) = start(|_| {});
    let addr = handle.addr().to_string();

    // Missing and unparseable query parameters.
    assert_eq!(client::get(&addr, "/score").unwrap().status, 400);
    assert_eq!(client::get(&addr, "/score?src=1").unwrap().status, 400);
    assert_eq!(client::get(&addr, "/score?src=x&dst=2").unwrap().status, 400);
    // Unknown route and bad method.
    assert_eq!(client::get(&addr, "/nope").unwrap().status, 404);
    assert_eq!(client::post(&addr, "/score?src=1&dst=2", "").unwrap().status, 405);
    assert_eq!(client::get(&addr, "/batch").unwrap().status, 405);

    // Raw garbage on the socket gets a 400, not a dropped worker.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(b"THIS IS NOT HTTP\r\n\r\n").unwrap();
    let mut buf = String::new();
    raw.read_to_string(&mut buf).unwrap();
    assert!(buf.starts_with("HTTP/1.1 400"), "got: {buf}");

    // The server is still healthy afterwards.
    assert_eq!(client::get(&addr, "/healthz").unwrap().status, 200);
    assert!(counter(&handle, "serve.requests.malformed") >= 1);
    handle.shutdown();
}

#[test]
fn slow_clients_hit_the_request_timeout() {
    let (_model, handle) = start(|cfg| cfg.request_timeout = Duration::from_millis(200));
    let addr = handle.addr().to_string();

    // Open a connection, send half a request line, then stall.
    let mut stalled = TcpStream::connect(&addr).unwrap();
    stalled.write_all(b"GET /score?src=").unwrap();
    stalled.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = String::new();
    stalled.read_to_string(&mut buf).unwrap();
    assert!(buf.starts_with("HTTP/1.1 408"), "stalled client should get 408, got: {buf}");

    assert!(counter(&handle, "serve.requests.timeout") >= 1);
    // Healthy clients are unaffected.
    assert_eq!(client::get(&addr, "/healthz").unwrap().status, 200);
    handle.shutdown();
}

#[test]
fn cache_eviction_is_counted_and_bounded() {
    let (model, handle) = start(|cfg| cfg.cache_size = 4);
    let addr = handle.addr().to_string();
    let ties: Vec<(u32, u32)> = model.ties().iter().copied().take(12).collect();
    assert!(ties.len() > 4, "need more ties than cache slots");

    // Two passes over 12 ties through a 4-entry cache: evictions guaranteed,
    // and every response still bit-exact (the cache can never go stale).
    for _ in 0..2 {
        for &(src, dst) in &ties {
            let resp = client::get(&addr, &format!("/score?src={src}&dst={dst}")).unwrap();
            assert_eq!(resp.status, 200);
            let parsed: ScoreResponse = serde_json::from_str(&resp.body).unwrap();
            let expected = model.score(NodeId(src), NodeId(dst)).unwrap();
            assert_eq!(parsed.score.unwrap().to_bits(), expected.to_bits());
        }
    }

    let hits = counter(&handle, "serve.cache.hits");
    let misses = counter(&handle, "serve.cache.misses");
    let evictions = counter(&handle, "serve.cache.evictions");
    assert_eq!(hits + misses, 2 * ties.len() as u64, "every lookup is a hit or a miss");
    assert!(misses >= ties.len() as u64, "first pass must miss");
    assert!(evictions > 0, "12 ties through 4 slots must evict");
    handle.shutdown();
}

#[test]
fn unknown_ties_are_never_cached() {
    let (_model, handle) = start(|_| {});
    let addr = handle.addr().to_string();
    for _ in 0..3 {
        let resp = client::get(&addr, "/score?src=4294967295&dst=4294967294").unwrap();
        assert_eq!(resp.status, 404);
    }
    assert_eq!(counter(&handle, "serve.cache.hits"), 0);
    assert_eq!(counter(&handle, "serve.cache.misses"), 0);
    handle.shutdown();
}

#[test]
fn shutdown_drains_and_further_connections_fail() {
    let (_model, handle) = start(|_| {});
    let addr = handle.addr().to_string();
    assert_eq!(client::get(&addr, "/healthz").unwrap().status, 200);

    let served = handle.shutdown();
    assert!(served >= 1);

    // After shutdown the port no longer accepts (or resets immediately).
    let still_up = client::get(&addr, "/healthz").is_ok();
    assert!(!still_up, "server should be down after shutdown");
}

#[test]
fn dropping_the_handle_shuts_down_cleanly() {
    let addr;
    {
        let (_model, handle) = start(|_| {});
        addr = handle.addr().to_string();
        assert_eq!(client::get(&addr, "/healthz").unwrap().status, 200);
        // Handle dropped here without an explicit shutdown() call.
    }
    assert!(client::get(&addr, "/healthz").is_err(), "drop must stop the server");
}

#[test]
fn rejects_zero_worker_config() {
    let model = Arc::new(fit_model());
    let cfg = ServeConfig { addr: "127.0.0.1:0".to_string(), workers: 0, ..ServeConfig::default() };
    assert!(Server::start(model, cfg).is_err());
}
