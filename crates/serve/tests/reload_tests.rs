//! Hot-reload integration tests: `POST /admin/reload` must swap models with
//! zero downtime. The acceptance test sustains multi-threaded load through
//! at least three swaps with zero failed requests, and checks every single
//! response bit-for-bit against offline scoring with whichever model the
//! response's `fingerprint` field says answered it — the strongest possible
//! statement that a reader never sees a torn or stale model.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dd_graph::generators::{social_network, SocialNetConfig};
use dd_graph::sampling::hide_directions;
use dd_graph::NodeId;
use dd_serve::client;
use dd_serve::{HealthResponse, ReloadResponse, ScoreResponse, ServeConfig, Server};
use deepdirect::{DeepDirect, DeepDirectConfig, DirectionalityModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fits several models over the *same* hidden network (identical tie set)
/// with different training seeds, so every model answers every query but
/// with distinguishable scores — exactly the hot-reload scenario.
fn fit_family(n: usize) -> Vec<DirectionalityModel> {
    let gen_cfg = SocialNetConfig { n_nodes: 60, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(11);
    let net = social_network(&gen_cfg, &mut rng).network;
    let hidden = hide_directions(&net, 0.5, &mut rng).network;
    (0..n)
        .map(|i| {
            let cfg = DeepDirectConfig {
                dim: 8,
                max_iterations: Some(5_000),
                seed: 100 + i as u64,
                ..DeepDirectConfig::default()
            };
            DeepDirect::new(cfg).fit(&hidden)
        })
        .collect()
}

#[test]
fn concurrent_load_across_three_reloads_never_fails_and_stays_bit_exact() {
    let models = fit_family(4);
    let by_fingerprint: HashMap<String, &DirectionalityModel> =
        models.iter().map(|m| (format!("{:016x}", m.fingerprint()), m)).collect();
    assert_eq!(by_fingerprint.len(), 4, "training seeds must produce distinct fingerprints");

    // Artifacts for generations 2..4, alternating JSON and binary so the
    // reload path exercises the format sniffer too.
    let dir = std::env::temp_dir().join(format!("dd_reload_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut artifacts = Vec::new();
    for (i, m) in models.iter().enumerate().skip(1) {
        let path = if i % 2 == 0 {
            let p = dir.join(format!("gen{i}.json"));
            m.save_to_path(&p).unwrap();
            p
        } else {
            let p = dir.join(format!("gen{i}.ddm"));
            m.save_binary_to_path(&p).unwrap();
            p
        };
        artifacts.push(path);
    }

    let first = Arc::new(models[0].clone());
    let ties: Vec<(u32, u32)> = first.ties().to_vec();
    let handle = Server::start(
        Arc::clone(&first),
        ServeConfig { addr: "127.0.0.1:0".to_string(), workers: 4, ..ServeConfig::default() },
    )
    .expect("server starts");
    let addr = handle.addr().to_string();

    let stop = AtomicBool::new(false);
    let completed = AtomicUsize::new(0);
    const N_CLIENTS: usize = 8;

    dd_runtime::scope(|s| {
        for t in 0..N_CLIENTS {
            let addr = &addr;
            let ties = &ties;
            let stop = &stop;
            let completed = &completed;
            let by_fingerprint = &by_fingerprint;
            s.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let (src, dst) = ties[(t * 131 + i) % ties.len()];
                    let resp = client::get(addr, &format!("/score?src={src}&dst={dst}"))
                        .expect("request must never fail during reload");
                    assert_eq!(resp.status, 200, "zero-downtime violated: {}", resp.body);
                    let parsed: ScoreResponse = serde_json::from_str(&resp.body).unwrap();
                    let fp = parsed.fingerprint.as_deref().expect("score carries fingerprint");
                    let offline = by_fingerprint
                        .get(fp)
                        .unwrap_or_else(|| panic!("unknown fingerprint {fp}"));
                    let want = offline.score(NodeId(src), NodeId(dst)).unwrap();
                    assert_eq!(
                        parsed.score.unwrap().to_bits(),
                        want.to_bits(),
                        "response not bit-identical to the model it claims ({fp})"
                    );
                    completed.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }

        // The admin thread: three reloads spaced across the sustained load.
        s.spawn(|| {
            for (i, path) in artifacts.iter().enumerate() {
                std::thread::sleep(Duration::from_millis(120));
                let body = format!(
                    "{{\"path\":{}}}",
                    serde_json::to_string(&path.display().to_string()).unwrap()
                );
                let resp = client::post(&addr, "/admin/reload", &body).expect("reload request");
                assert_eq!(resp.status, 200, "reload {i} failed: {}", resp.body);
                let parsed: ReloadResponse = serde_json::from_str(&resp.body).unwrap();
                assert_eq!(parsed.status, "reloaded");
                assert_eq!(parsed.generation, i as u64 + 2, "generation bumps per swap");
                assert_eq!(parsed.new_fingerprint, format!("{:016x}", models[i + 1].fingerprint()));
            }
            std::thread::sleep(Duration::from_millis(120));
            stop.store(true, Ordering::Relaxed);
        });
    });

    let total = completed.load(Ordering::Relaxed);
    assert!(total >= 200, "load loop too short to be meaningful: {total} requests");

    // After three swaps the fleet reports the final model and generation 4.
    let health = client::get(&addr, "/healthz").unwrap();
    let parsed: HealthResponse = serde_json::from_str(&health.body).unwrap();
    assert_eq!(parsed.generation, Some(4));
    assert_eq!(parsed.model_fingerprint, format!("{:016x}", models[3].fingerprint()));

    // /metrics carries the live fingerprint + generation as an info metric.
    let metrics = client::get(&addr, "/metrics").unwrap().body;
    assert!(
        metrics.contains(&format!(
            "dd_serve_model_info{{fingerprint=\"{:016x}\"}} 4",
            models[3].fingerprint()
        )),
        "missing model info metric: {metrics}"
    );
    assert!(metrics.contains("dd_serve_model_reloads_total 3"), "{metrics}");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reload_error_paths_reject_without_disturbing_the_served_model() {
    let models = fit_family(1);
    let model = Arc::new(models.into_iter().next().unwrap());
    let handle = Server::start(
        Arc::clone(&model),
        ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::default() },
    )
    .unwrap();
    let addr = handle.addr().to_string();
    let fingerprint = format!("{:016x}", model.fingerprint());

    // Nonexistent artifact, malformed body, wrong method.
    let resp = client::post(&addr, "/admin/reload", "{\"path\":\"/no/such/model.json\"}").unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert_eq!(client::post(&addr, "/admin/reload", "not json").unwrap().status, 400);
    assert_eq!(client::get(&addr, "/admin/reload").unwrap().status, 405);

    // A failed reload leaves generation and fingerprint untouched.
    let health: HealthResponse =
        serde_json::from_str(&client::get(&addr, "/healthz").unwrap().body).unwrap();
    assert_eq!(health.generation, Some(1));
    assert_eq!(health.model_fingerprint, fingerprint);
    handle.shutdown();
}
