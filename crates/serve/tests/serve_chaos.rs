//! Chaos suite for the query server: injected handler panics and a
//! thousand seeded fault schedules replayed against a live server.
//!
//! The contract: no matter what bytes arrive — malformed requests,
//! truncated sends, mid-message disconnects, handler panics — every
//! connection ends in a well-formed HTTP response or a clean close, the
//! metrics stay consistent, and graceful drain still completes. Every
//! schedule is a pure function of its seed, so a failure names one integer
//! and replays exactly.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dd_graph::generators::{social_network, SocialNetConfig};
use dd_graph::sampling::hide_directions;
use dd_graph::NodeId;
use dd_linalg::Pcg32;
use dd_serve::client;
use dd_serve::{ScoreResponse, ServeConfig, Server, ServerHandle};
use dd_telemetry::{Event, MetricSnapshot, ObserverHandle, TrainObserver};
use dd_testkit::gen::http_request_bytes;
use deepdirect::{DeepDirect, DeepDirectConfig, DirectionalityModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fit_model() -> DirectionalityModel {
    let gen_cfg = SocialNetConfig { n_nodes: 80, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(7);
    let net = social_network(&gen_cfg, &mut rng).network;
    let hidden = hide_directions(&net, 0.5, &mut rng).network;
    let cfg =
        DeepDirectConfig { dim: 8, max_iterations: Some(8_000), ..DeepDirectConfig::default() };
    DeepDirect::new(cfg).fit(&hidden)
}

fn start(cfg_mutator: impl FnOnce(&mut ServeConfig)) -> (Arc<DirectionalityModel>, ServerHandle) {
    let model = Arc::new(fit_model());
    let mut cfg = ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::default() };
    cfg_mutator(&mut cfg);
    let handle = Server::start(Arc::clone(&model), cfg).expect("server starts");
    (model, handle)
}

fn counter(handle: &ServerHandle, name: &str) -> u64 {
    handle
        .registry()
        .snapshot()
        .into_iter()
        .find(|(n, _)| n == name)
        .and_then(|(_, s)| match s {
            MetricSnapshot::Counter(c) => Some(c),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no counter named {name}"))
}

/// Observer that records every event, so tests can assert on the
/// `serve.panic` fault log.
#[derive(Default)]
struct CaptureSink(Mutex<Vec<Event>>);

impl TrainObserver for CaptureSink {
    fn on_event(&self, event: &Event) {
        self.0.lock().unwrap().push(event.clone());
    }
}

/// The panic-isolation acceptance test: kill a worker's handler
/// mid-request more times than there are workers, and the server must keep
/// serving — each panic answered with a `500`, `serve.panics` counting
/// every one, 64 subsequent concurrent queries bit-identical to the
/// offline model, and graceful drain completing.
#[test]
fn injected_worker_panic_gets_500_and_the_pool_keeps_serving() {
    const WORKERS: usize = 4;
    const PANICS: usize = WORKERS + 2; // more panics than workers

    let sink = Arc::new(CaptureSink::default());
    let observer = ObserverHandle::new(Arc::clone(&sink) as Arc<dyn TrainObserver>);
    let (model, handle) = start(|cfg| {
        cfg.workers = WORKERS;
        cfg.panic_route = true;
        cfg.observer = observer;
    });
    let addr = handle.addr().to_string();

    // If a panic killed its worker, the pool would shrink by one per
    // injected panic and the requests after `PANICS > WORKERS` of them
    // would hang with nobody left to serve.
    for i in 0..PANICS {
        let resp = client::get(&addr, "/__panic").unwrap_or_else(|e| panic!("panic req {i}: {e}"));
        assert_eq!(resp.status, 500, "panic {i} must be answered, body: {}", resp.body);
        assert!(resp.body.contains("panicked"), "500 body names the cause: {}", resp.body);
    }
    assert_eq!(counter(&handle, "serve.panics"), PANICS as u64);
    assert_eq!(counter(&handle, "serve.requests.panic"), PANICS as u64);

    // The fault log captured one serve.panic event per injection, each
    // naming the offending path.
    {
        let events = sink.0.lock().unwrap();
        let panics: Vec<_> = events.iter().filter(|e| e.kind == "serve.panic").collect();
        assert_eq!(panics.len(), PANICS);
        assert!(panics.iter().all(|e| e.name.as_deref() == Some("/__panic")));
    }

    // All workers survived: 64 concurrent queries, every response
    // bit-identical to the offline model.
    let ties: Vec<(u32, u32)> = model.ties().iter().copied().take(16).collect();
    assert!(ties.len() >= 8, "model too small: {} ties", ties.len());
    let expected: Vec<f64> =
        ties.iter().map(|&(u, v)| model.score(NodeId(u), NodeId(v)).unwrap()).collect();
    const N_THREADS: usize = 8;
    const PER_THREAD: usize = 8;
    dd_runtime::scope(|s| {
        for t in 0..N_THREADS {
            let addr = &addr;
            let ties = &ties;
            let expected = &expected;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let idx = (i + t * 3) % ties.len();
                    let (src, dst) = ties[idx];
                    let resp = client::get(addr, &format!("/score?src={src}&dst={dst}"))
                        .expect("post-panic request succeeds");
                    assert_eq!(resp.status, 200, "body: {}", resp.body);
                    let parsed: ScoreResponse =
                        serde_json::from_str(&resp.body).expect("valid score JSON");
                    assert_eq!(
                        parsed.score.expect("known tie").to_bits(),
                        expected[idx].to_bits(),
                        "thread {t} req {i}: score drifted after panics"
                    );
                }
            });
        }
    });

    let total = (PANICS + N_THREADS * PER_THREAD) as u64;
    assert_eq!(counter(&handle, "serve.requests.score"), (N_THREADS * PER_THREAD) as u64);

    // Drain still completes with a full accounting.
    let served = handle.shutdown();
    assert!(served >= total, "drain reported {served} served, expected >= {total}");
}

/// With the flag left at its production default, the injection route does
/// not exist.
#[test]
fn panic_route_is_a_404_unless_explicitly_enabled() {
    let (_model, handle) = start(|_| {});
    let addr = handle.addr().to_string();
    assert_eq!(client::get(&addr, "/__panic").unwrap().status, 404);
    assert_eq!(counter(&handle, "serve.panics"), 0);
    handle.shutdown();
}

/// Replays 1000 seeded fault schedules against a live server: generated
/// (mostly hostile) request bytes, seeded truncation, partial sends, and
/// mid-message client disconnects. Every connection must end in a
/// well-formed HTTP response or a clean close — zero hangs, zero panics —
/// and the server must still be healthy and drainable afterwards.
#[test]
fn a_thousand_seeded_fault_schedules_never_wedge_the_server() {
    const SCHEDULES: u64 = 1000;

    let (_model, handle) = start(|cfg| {
        cfg.workers = 4;
        // Tight but safely above scheduling noise; truncated requests that
        // keep the connection open resolve as 408s quickly.
        cfg.request_timeout = Duration::from_millis(500);
    });
    let addr = handle.addr();

    let mut responses_seen = 0u64;
    let mut clean_closes = 0u64;
    let mut early_disconnects = 0u64;

    for seed in 0..SCHEDULES {
        let mut rng = Pcg32::seed_from_u64(seed);
        let bytes = http_request_bytes(&mut rng);

        // Seeded truncation on top of whatever the generator produced.
        let cut = if rng.gen_bool(0.25) { 1 + rng.gen_range(bytes.len()) } else { bytes.len() };
        let payload = &bytes[..cut];

        let stream = TcpStream::connect(addr).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.set_write_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut stream = stream;

        // Partial sends: 1..=3 chunks. Write errors are legal — the server
        // may have answered-and-closed already (e.g. 400 on a hostile first
        // chunk), which surfaces as EPIPE/reset here.
        let n_chunks = 1 + rng.gen_range(3);
        let chunk_len = payload.len().div_ceil(n_chunks).max(1);
        let mut write_failed = false;
        for chunk in payload.chunks(chunk_len) {
            if stream.write_all(chunk).is_err() {
                write_failed = true;
                break;
            }
        }

        // Mid-message disconnect: hang up without ever reading the answer.
        if !write_failed && rng.gen_bool(0.15) {
            drop(stream);
            early_disconnects += 1;
            continue;
        }

        // Signal end-of-request so truncated payloads read as EOF instead
        // of stalling until the request timeout.
        let _ = stream.shutdown(Shutdown::Write);

        let mut reply = Vec::new();
        match stream.read_to_end(&mut reply) {
            // A reset from the server counts as a close; it must never be
            // half a response.
            Err(_) => clean_closes += 1,
            Ok(_) if reply.is_empty() => clean_closes += 1,
            Ok(_) => {
                assert!(
                    reply.starts_with(b"HTTP/1.1 "),
                    "seed {seed}: response does not start with a status line: {:?}",
                    String::from_utf8_lossy(&reply[..reply.len().min(80)])
                );
                assert!(
                    reply.windows(4).any(|w| w == b"\r\n\r\n"),
                    "seed {seed}: response missing header terminator"
                );
                responses_seen += 1;
            }
        }
    }

    // The schedule mix must have actually exercised both outcomes.
    assert!(responses_seen > 300, "only {responses_seen} responses across {SCHEDULES} schedules");
    assert!(
        clean_closes + early_disconnects > 50,
        "only {clean_closes} closes + {early_disconnects} disconnects"
    );

    // Metrics stayed consistent: no worker panicked, and every well-formed
    // response corresponds to a counted request.
    assert_eq!(counter(&handle, "serve.panics"), 0, "chaos bytes must never panic a handler");
    assert!(
        handle.requests_total() >= responses_seen,
        "requests_total {} < responses seen {responses_seen}",
        handle.requests_total()
    );

    // Still alive, still correct, still drains.
    assert_eq!(client::get(&addr.to_string(), "/healthz").unwrap().status, 200);
    let served = handle.shutdown();
    assert!(served >= responses_seen);
}
