//! The D-Step: learning the directionality function from the embeddings
//! (Sec. 4.5.2, Algorithm 1 lines 19–21).
//!
//! The labeled universe ties (directed ties and their mirrors) form the
//! training set; features are the embedding rows `m_e`. The paper's head is
//! a logistic regression with L2 regularization, warm-started from the
//! E-Step's joint classifier `(w', b')`. The future-work MLP head is also
//! available via [`DStepHead::Mlp`](crate::config::DStepHead).

use dd_linalg::logreg::{LogRegConfig, LogisticRegression};
use dd_linalg::mlp::{Mlp, MlpConfig};
use dd_linalg::rng::Pcg32;
use dd_telemetry::EpochProgress;
use serde::{Deserialize, Serialize};

use crate::config::{DStepHead, DeepDirectConfig};
use crate::estep::EStepParams;
use crate::universe::TieUniverse;

/// The trained directionality-function head.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DirectionalityHead {
    /// Logistic regression `d(e) = σ(w · m_e + b)` (Eq. 26).
    Logistic(LogisticRegression),
    /// Non-linear head (paper's future-work extension).
    Mlp(Mlp),
}

impl DirectionalityHead {
    /// Directionality value `d(e) ∈ [0, 1]` for a feature vector.
    ///
    /// The logistic head scores through [`dd_linalg::kernels::dot8_f64`]
    /// with f64 accumulation in the kernel's fixed lane order — the same
    /// policy as the model's hot path, so fold-in scores share its
    /// bit-compatibility guarantees. Training is untouched: it goes through
    /// [`dd_linalg::LogisticRegression`]'s own f32 loops.
    #[inline]
    pub fn score(&self, embedding: &[f32]) -> f64 {
        match self {
            DirectionalityHead::Logistic(lr) => dd_linalg::sigmoid64(
                dd_linalg::kernels::dot8_f64(&lr.w, embedding) + f64::from(lr.b),
            ),
            DirectionalityHead::Mlp(mlp) => mlp.predict_proba(embedding) as f64,
        }
    }
}

/// Builds the D-Step feature vector for universe tie row `i`: the embedding
/// `m_e`, optionally extended with the connection vector `n_e` (the
/// `context_features` extension).
pub fn tie_feature_vector(estep: &EStepParams, cfg: &DeepDirectConfig, i: usize) -> Vec<f32> {
    if cfg.context_features {
        let mut x = estep.m.row(i).to_vec();
        x.extend_from_slice(estep.n.row(i));
        x
    } else {
        estep.m.row(i).to_vec()
    }
}

/// Feature dimensionality of the D-Step under `cfg`.
pub fn feature_dim(cfg: &DeepDirectConfig) -> usize {
    if cfg.context_features {
        2 * cfg.dim
    } else {
        cfg.dim
    }
}

/// Trains the D-Step head on the labeled ties of the universe.
pub fn train(
    universe: &TieUniverse,
    estep: &EStepParams,
    cfg: &DeepDirectConfig,
) -> DirectionalityHead {
    let mut xs: Vec<Vec<f32>> = Vec::new();
    let mut ys: Vec<f32> = Vec::new();
    for (i, tie) in universe.labeled_ties() {
        xs.push(tie_feature_vector(estep, cfg, i));
        ys.push(tie.label.expect("labeled_ties yields labeled ties"));
    }
    assert!(!xs.is_empty(), "TDL requires at least one directed tie (Definition 1)");
    match cfg.head {
        DStepHead::Logistic => {
            // Warm start from (w', b') per Algorithm 1 line 20; the context
            // half (extension) starts at zero.
            let mut w0 = estep.w.clone();
            w0.resize(feature_dim(cfg), 0.0);
            let mut lr = LogisticRegression::from_params(w0, estep.b);
            let logreg_cfg = LogRegConfig {
                epochs: cfg.dstep_epochs,
                lr: 0.05,
                l2: cfg.dstep_l2,
                seed: cfg.seed ^ 0xd5,
            };
            if cfg.observer.is_enabled() {
                let total_epochs = cfg.dstep_epochs as u64;
                lr.fit_with_progress(&xs, &ys, None, &logreg_cfg, &mut |epoch, loss| {
                    cfg.observer.on_epoch(&EpochProgress {
                        stage: "dstep".to_string(),
                        epoch: epoch as u64,
                        total_epochs,
                        loss,
                    });
                });
            } else {
                lr.fit(&xs, &ys, None, &logreg_cfg);
            }
            DirectionalityHead::Logistic(lr)
        }
        DStepHead::Mlp => {
            let mut rng = Pcg32::seed_from_u64(cfg.seed ^ 0x31a9);
            let mut mlp = Mlp::new(feature_dim(cfg), cfg.mlp_hidden, &mut rng);
            mlp.fit(
                &xs,
                &ys,
                &MlpConfig {
                    hidden: cfg.mlp_hidden,
                    epochs: cfg.dstep_epochs,
                    lr: 0.05,
                    l2: cfg.dstep_l2,
                    seed: cfg.seed ^ 0x31aa,
                },
            );
            DirectionalityHead::Mlp(mlp)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estep;
    use dd_graph::generators::{social_network, SocialNetConfig};
    use dd_graph::sampling::hide_directions;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (TieUniverse, EStepParams, DeepDirectConfig) {
        let gen_cfg = SocialNetConfig { n_nodes: 120, ..Default::default() };
        let mut grng = StdRng::seed_from_u64(seed);
        let net = social_network(&gen_cfg, &mut grng).network;
        let hidden = hide_directions(&net, 0.5, &mut grng);
        let mut rng = Pcg32::seed_from_u64(seed);
        let u = TieUniverse::build(&hidden.network, 8, &mut rng);
        let cfg = DeepDirectConfig {
            dim: 16,
            max_iterations: Some(50_000),
            ..DeepDirectConfig::default()
        };
        let e = estep::train(&u, &cfg);
        (u, e.params, cfg)
    }

    #[test]
    fn logistic_head_fits_labels() {
        let (u, params, cfg) = setup(1);
        let head = train(&u, &params, &cfg);
        let mut correct = 0;
        let mut total = 0;
        for (i, tie) in u.labeled_ties() {
            let d = head.score(params.m.row(i));
            assert!((0.0..=1.0).contains(&d));
            if (d >= 0.5) == (tie.label.unwrap() >= 0.5) {
                correct += 1;
            }
            total += 1;
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.85, "D-Step train accuracy {acc}");
    }

    #[test]
    fn mlp_head_fits_labels() {
        let (u, params, mut cfg) = setup(2);
        cfg.head = DStepHead::Mlp;
        cfg.mlp_hidden = 16;
        let head = train(&u, &params, &cfg);
        assert!(matches!(head, DirectionalityHead::Mlp(_)));
        let mut correct = 0;
        let mut total = 0;
        for (i, tie) in u.labeled_ties() {
            let d = head.score(params.m.row(i));
            if (d >= 0.5) == (tie.label.unwrap() >= 0.5) {
                correct += 1;
            }
            total += 1;
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.8, "MLP D-Step train accuracy {acc}");
    }

    #[test]
    fn reverse_pairs_get_complementary_scores() {
        let (u, params, cfg) = setup(3);
        let head = train(&u, &params, &cfg);
        // For a directed tie and its mirror the scores should mostly
        // straddle 0.5 in opposite directions.
        let mut agree = 0usize;
        let mut total = 0usize;
        for (i, tie) in u.labeled_ties() {
            if tie.label == Some(1.0) {
                let rev = u.find(tie.dst, tie.src).unwrap();
                let d_fwd = head.score(params.m.row(i));
                let d_rev = head.score(params.m.row(rev));
                if d_fwd > d_rev {
                    agree += 1;
                }
                total += 1;
            }
        }
        let frac = agree as f64 / total as f64;
        assert!(frac > 0.85, "forward beats mirror on {frac} of ties");
    }
}
