//! # deepdirect — edge-based network embedding for tie direction learning
//!
//! A from-scratch Rust implementation of *DeepDirect: Learning Directions of
//! Social Ties with Edge-based Network Embedding* (Wang et al., TKDE 2018 /
//! ICDE 2019).
//!
//! DeepDirect solves the **tie direction learning (TDL)** problem: given a
//! mixed social network `G = (V, E_d ∪ E_b ∪ E_u)`, learn the
//! *directionality function* `d : E → [0, 1]` from the directed ties `E_d`.
//! It embeds *ordered ties* (not nodes) into `R^l` (the E-Step), minimizing
//!
//! ```text
//! L = L_topo + α · L_label + β · L_pattern
//! ```
//!
//! — skip-gram topology preservation over connected tie pairs, supervised
//! cross-entropy on labeled ties, and pattern-based pseudo-labels on
//! undirected ties — then fits a logistic regression head on the embeddings
//! (the D-Step).
//!
//! ## Crate map
//!
//! * [`config`] — hyper-parameters ([`DeepDirectConfig`]).
//! * [`universe`] — preprocessing: the augmented ordered-tie universe with
//!   mirrors, labels and pseudo-labels (Algorithm 1, lines 1–9).
//! * [`estep`] — sampled SGD over Eqs. 20–25, sequential or Hogwild.
//! * [`dstep`] — the directionality head (logistic regression or MLP).
//! * [`model`] — the public [`DeepDirect`] / [`DirectionalityModel`] API.
//! * [`binfmt`] — the checksummed little-endian binary model container
//!   (zero-copy loading; DESIGN.md §7.13).
//! * [`store`] — structure-of-arrays embedding storage behind the scoring
//!   hot path.
//! * [`apps`] — the two applications of Sec. 5 plus the bidirectionality
//!   future-work extension: direction discovery, direction quantification
//!   (directionality adjacency matrix), bidirectionality scoring.
//! * [`foldin`] — extension: scoring ordered pairs unseen at training time
//!   via head-cluster fold-in.
//!
//! ## Quickstart
//!
//! ```
//! use dd_graph::generators::{social_network, SocialNetConfig};
//! use dd_graph::sampling::hide_directions;
//! use deepdirect::apps::discovery::{discover_directions, discovery_accuracy};
//! use deepdirect::{DeepDirect, DeepDirectConfig};
//! use rand::SeedableRng;
//!
//! // A synthetic social network with status-driven directions.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let gen = SocialNetConfig { n_nodes: 120, ..Default::default() };
//! let net = social_network(&gen, &mut rng).network;
//!
//! // Hide half of the directions, keep the truth for scoring.
//! let hidden = hide_directions(&net, 0.5, &mut rng);
//!
//! // Fit DeepDirect and discover the hidden directions.
//! let mut cfg = DeepDirectConfig::fast();
//! cfg.dim = 16;
//! cfg.max_iterations = Some(30_000);
//! let model = DeepDirect::new(cfg).fit(&hidden.network);
//! let preds = discover_directions(&hidden.network, |u, v| {
//!     model.score(u, v).unwrap_or(0.5)
//! });
//! let acc = discovery_accuracy(&preds, &hidden.truth);
//! assert!(acc > 0.5, "better than coin-flipping: {acc}");
//! ```

#![warn(missing_docs)]

pub mod apps;
pub mod binfmt;
pub mod config;
pub mod dstep;
pub mod estep;
pub mod foldin;
pub mod model;
pub mod store;
pub mod universe;

pub use binfmt::BinaryFormatError;
pub use config::{DStepHead, DeepDirectConfig};
/// Re-export of the telemetry crate, so downstream users can build sinks
/// ([`telemetry::JsonlSink`], [`telemetry::ProgressSink`]) without a direct
/// dependency.
pub use dd_telemetry as telemetry;
pub use dstep::DirectionalityHead;
pub use foldin::{FoldInIndex, FoldInScorer};
pub use model::{DeepDirect, DirectionalityModel, MODEL_SCHEMA_VERSION};
pub use universe::{TieUniverse, UniverseKind, UniverseTie};
