//! The E-Step: learning the embedding matrix `M` (Sec. 4.2–4.5.1).
//!
//! Implements the sampled SGD of Algorithm 1, lines 11–18. Each iteration
//! draws a connected tie pair `(e, e')` — `e ~ P_c ∝ deg_tie`, `e'` uniform
//! from `c(e)` — plus `λ` negatives from `P_n ∝ deg_tie^{3/4}`, and applies
//! the closed-form gradients of Eqs. 21–25 for the combined per-pair loss
//! `L'` (Eq. 20):
//!
//! * topology: skip-gram with negative sampling over `M` and the connection
//!   matrix `N` (Eq. 10),
//! * labels: the joint logistic regression `(w', b')` on directed ties and
//!   mirrors, weighted by `α` (Eq. 13),
//! * patterns: the same regression against the pseudo-labels `y^d` (Eq. 14,
//!   thresholded by `T`) and `y^t` (Eq. 15, recomputed on the fly from the
//!   current predictions on the sampled common-neighbor ties), weighted by
//!   `β` (Eq. 16).
//!
//! With `threads > 1` the loop runs Hogwild-style: workers share `M`, `N`,
//! `w'`, `b'` without locks. Updates may race; on sparse graphs collisions
//! are rare and SGD tolerates the noise (Niu et al., 2011). All shared
//! access goes through raw-pointer reads/writes so no aliased `&mut`
//! references are ever formed.

use crossbeam::thread;
use dd_linalg::activations::sigmoid;
use dd_linalg::alias::AliasTable;
use dd_linalg::matrix::DenseMatrix;
use dd_linalg::rng::Pcg32;

use crate::config::DeepDirectConfig;
use crate::universe::{TieUniverse, UniverseKind};

/// Learned E-Step parameters.
#[derive(Debug, Clone)]
pub struct EStepParams {
    /// Embedding matrix `M` (one row per universe tie).
    pub m: DenseMatrix,
    /// Connection matrix `N` (one row per universe tie).
    pub n: DenseMatrix,
    /// Joint classifier weights `w'`.
    pub w: Vec<f32>,
    /// Joint classifier bias `b'`.
    pub b: f32,
    /// Number of SGD iterations actually run.
    pub iterations: u64,
}

/// Raw shared view of the trainable parameters for (possibly) lock-free
/// concurrent SGD.
#[derive(Clone, Copy)]
struct RawParams {
    m: *mut f32,
    n: *mut f32,
    w: *mut f32,
    b: *mut f32,
    dim: usize,
}

// SAFETY: used only under the Hogwild protocol — concurrent unsynchronized
// updates are an accepted approximation; see module docs.
unsafe impl Send for RawParams {}
unsafe impl Sync for RawParams {}

#[inline]
unsafe fn dot_raw(a: *const f32, b: *const f32, dim: usize) -> f32 {
    let mut acc = 0.0f32;
    for i in 0..dim {
        acc += *a.add(i) * *b.add(i);
    }
    acc
}

#[inline]
unsafe fn axpy_raw(alpha: f32, x: *const f32, y: *mut f32, dim: usize) {
    for i in 0..dim {
        *y.add(i) += alpha * *x.add(i);
    }
}

impl RawParams {
    #[inline]
    unsafe fn m_row(&self, e: usize) -> *mut f32 {
        self.m.add(e * self.dim)
    }

    #[inline]
    unsafe fn n_row(&self, e: usize) -> *mut f32 {
        self.n.add(e * self.dim)
    }

    /// Current joint-classifier probability for universe tie `e`:
    /// `σ(w' · m_e + b')` (Eq. 11).
    #[inline]
    unsafe fn predict(&self, e: usize) -> f32 {
        sigmoid(dot_raw(self.m_row(e), self.w, self.dim) + *self.b)
    }
}

/// One SGD iteration of Algorithm 1 (lines 13–17).
///
/// # Safety
/// `raw` must point to buffers of `universe.len() × dim` (matrices) and
/// `dim` (weights) floats that stay alive for the call. Concurrent callers
/// race benignly per the Hogwild protocol.
#[allow(clippy::too_many_arguments)]
unsafe fn sgd_iteration(
    raw: &RawParams,
    universe: &TieUniverse,
    pc: &AliasTable,
    pn: &AliasTable,
    cfg: &DeepDirectConfig,
    lr: f32,
    rng: &mut Pcg32,
    grad: &mut [f32],
) {
    let dim = raw.dim;
    debug_assert_eq!(grad.len(), dim);

    // Line 13: sample e ~ P_c, e' uniform from c(e).
    let e = pc.sample(rng);
    let Some(ep) = universe.sample_connected(e, rng) else {
        return; // deg_tie(e) = 0 has zero P_c mass; defensive only
    };
    let me = raw.m_row(e);
    for g in grad.iter_mut() {
        *g = 0.0;
    }
    let gptr = grad.as_mut_ptr();

    // --- Topology: positive pair (Eqs. 23–24) ---
    let nep = raw.n_row(ep);
    let g_pos = sigmoid(dot_raw(me, nep, dim)) - 1.0;
    axpy_raw(g_pos, nep, gptr, dim);
    axpy_raw(-lr * g_pos, me, nep, dim);

    // --- Topology: λ negatives (Eqs. 23, 25) ---
    for _ in 0..cfg.negatives {
        let ei = pn.sample(rng);
        if ei == ep {
            continue; // drawing the positive as noise would cancel it
        }
        let nei = raw.n_row(ei);
        let g_neg = sigmoid(dot_raw(me, nei, dim));
        axpy_raw(g_neg, nei, gptr, dim);
        axpy_raw(-lr * g_neg, me, nei, dim);
    }

    // --- Label / pattern terms (Eqs. 21–22 feeding Eq. 23) ---
    let tie = universe.tie(e);
    let mut g_coef = 0.0f32; // ∂L'/∂b'
    if let Some(y) = tie.label {
        if cfg.alpha > 0.0 {
            g_coef += cfg.alpha * (raw.predict(e) - y);
        }
    } else if tie.kind == UniverseKind::Undirected && cfg.beta > 0.0 {
        let p = raw.predict(e);
        // Triad Status pseudo-label y^t (Eq. 15), from current predictions.
        let samples = universe.triad_samples(e);
        if !samples.is_empty() {
            let mut yt = 0.0f32;
            for &(uw, vw) in samples {
                let puw = raw.predict(uw as usize);
                let pvw = raw.predict(vw as usize);
                yt += puw / (puw + pvw).max(1e-12);
            }
            yt /= samples.len() as f32;
            g_coef += cfg.beta * (p - yt);
        }
        // Degree Consistency pseudo-label y^d (Eq. 14), gated by T (Eq. 16).
        if let Some(yd) = tie.pseudo_degree {
            if yd as f64 > cfg.degree_threshold {
                g_coef += cfg.beta * (p - yd);
            }
        }
    }
    if g_coef != 0.0 {
        // ∂L'/∂m_e gains g_coef · w' (Eq. 23) — read w' before updating it.
        axpy_raw(g_coef, raw.w, gptr, dim);
        // w' ← w' − lr · g_coef · m_e (Eq. 22); b' ← b' − lr · g_coef (Eq. 21).
        axpy_raw(-lr * g_coef, me, raw.w, dim);
        *raw.b -= lr * g_coef;
    }

    // Apply the accumulated gradient to m_e (Eq. 23).
    axpy_raw(-lr, gptr, me, dim);
}

/// Output of [`train`] plus the sampling tables (reused by diagnostics).
pub struct EStep {
    /// Learned parameters.
    pub params: EStepParams,
    /// `P_c ∝ deg_tie` over universe ties.
    pub pc: AliasTable,
    /// `P_n ∝ deg_tie^{3/4}` over universe ties.
    pub pn: AliasTable,
}

/// Runs the E-Step on a prepared tie universe.
///
/// Returns initialized-but-untrained parameters when the universe has no
/// connected tie pairs (a degenerate graph with no length-2 paths).
pub fn train(universe: &TieUniverse, cfg: &DeepDirectConfig) -> EStep {
    cfg.validate().expect("invalid DeepDirect configuration");
    let mut rng = Pcg32::seed_from_u64(cfg.seed);
    let dim = cfg.dim;
    let rows = universe.len();
    let mut m = DenseMatrix::uniform_init(rows, dim, &mut rng);
    let mut n = DenseMatrix::zeros(rows, dim); // word2vec zero-inits contexts
    let mut w = vec![0.0f32; dim];
    let mut b = 0.0f32;

    let weights = universe.tie_degree_weights();
    let pc_weights: Vec<f64> = if cfg.uniform_context_sampling {
        // Ablation: uniform over ties with at least one connected tie.
        weights.iter().map(|&w| if w > 0.0 { 1.0 } else { 0.0 }).collect()
    } else {
        weights.clone()
    };
    let pc = AliasTable::new(&if pc_weights.iter().any(|&x| x > 0.0) {
        pc_weights
    } else {
        vec![1.0; rows.max(1)]
    });
    let pn = AliasTable::unigram_pow(&weights, cfg.noise_exponent);

    let planned = (cfg.tau * universe.n_connected_pairs() as f64).round() as u64;
    let total = cfg.max_iterations.map_or(planned, |cap| cap.min(planned));
    if total == 0 || universe.n_connected_pairs() == 0 {
        return EStep {
            params: EStepParams { m, n, w, b, iterations: 0 },
            pc,
            pn,
        };
    }

    let raw = RawParams {
        m: m.as_mut_slice().as_mut_ptr(),
        n: n.as_mut_slice().as_mut_ptr(),
        w: w.as_mut_ptr(),
        b: &mut b as *mut f32,
        dim,
    };

    if cfg.threads <= 1 {
        let mut grad = vec![0.0f32; dim];
        for it in 0..total {
            let lr = cfg.lr * (1.0 - it as f32 / total as f32).max(1e-4);
            // SAFETY: exclusive access — `m`, `n`, `w`, `b` outlive the loop
            // and no other reference touches them.
            unsafe {
                sgd_iteration(&raw, universe, &pc, &pn, cfg, lr, &mut rng, &mut grad);
            }
        }
    } else {
        let per_worker = total / cfg.threads as u64 + 1;
        let mut seeds: Vec<Pcg32> = (0..cfg.threads).map(|i| rng.split(i as u64)).collect();
        thread::scope(|s| {
            for mut wrng in seeds.drain(..) {
                let pc = &pc;
                let pn = &pn;
                s.spawn(move |_| {
                    let mut grad = vec![0.0f32; dim];
                    for it in 0..per_worker {
                        let lr = cfg.lr * (1.0 - it as f32 / per_worker as f32).max(1e-4);
                        // SAFETY: Hogwild protocol; see module docs.
                        unsafe {
                            sgd_iteration(&raw, universe, pc, pn, cfg, lr, &mut wrng, &mut grad);
                        }
                    }
                });
            }
        })
        .expect("E-Step worker panicked");
    }

    EStep {
        params: EStepParams { m, n, w, b, iterations: total },
        pc,
        pn,
    }
}

/// Monte-Carlo estimate of the per-pair loss `L'` (Eq. 20) under the current
/// parameters — used to verify that training decreases the objective.
pub fn estimate_loss(
    universe: &TieUniverse,
    params: &EStepParams,
    pc: &AliasTable,
    pn: &AliasTable,
    cfg: &DeepDirectConfig,
    samples: usize,
    rng: &mut Pcg32,
) -> f64 {
    use dd_linalg::activations::{cross_entropy, log_sigmoid};
    use dd_linalg::vecops::dot;
    let mut total = 0.0f64;
    let mut count = 0usize;
    for _ in 0..samples {
        let e = pc.sample(rng);
        let Some(ep) = universe.sample_connected(e, rng) else { continue };
        let me = params.m.row(e);
        let mut l = -(log_sigmoid(dot(me, params.n.row(ep))) as f64);
        for _ in 0..cfg.negatives {
            let ei = pn.sample(rng);
            if ei == ep {
                continue;
            }
            l -= log_sigmoid(-dot(me, params.n.row(ei))) as f64;
        }
        let p = sigmoid(dot(me, &params.w) + params.b) as f64;
        let tie = universe.tie(e);
        if let Some(y) = tie.label {
            l += cfg.alpha as f64 * cross_entropy(y as f64, p);
        } else if tie.kind == UniverseKind::Undirected {
            let samples_t = universe.triad_samples(e);
            if !samples_t.is_empty() {
                let mut yt = 0.0f64;
                for &(uw, vw) in samples_t {
                    let puw =
                        sigmoid(dot(params.m.row(uw as usize), &params.w) + params.b) as f64;
                    let pvw =
                        sigmoid(dot(params.m.row(vw as usize), &params.w) + params.b) as f64;
                    yt += puw / (puw + pvw).max(1e-12);
                }
                yt /= samples_t.len() as f64;
                l += cfg.beta as f64 * cross_entropy(yt, p);
            }
            if let Some(yd) = tie.pseudo_degree {
                if yd as f64 > cfg.degree_threshold {
                    l += cfg.beta as f64 * cross_entropy(yd as f64, p);
                }
            }
        }
        total += l;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_graph::generators::{social_network, SocialNetConfig};
    use dd_graph::sampling::hide_directions;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_universe(seed: u64) -> TieUniverse {
        let gen_cfg = SocialNetConfig { n_nodes: 150, m_per_node: 4, ..Default::default() };
        let mut grng = StdRng::seed_from_u64(seed);
        let net = social_network(&gen_cfg, &mut grng).network;
        let hidden = hide_directions(&net, 0.5, &mut grng);
        let mut rng = Pcg32::seed_from_u64(seed);
        TieUniverse::build(&hidden.network, 10, &mut rng)
    }

    fn small_cfg() -> DeepDirectConfig {
        DeepDirectConfig {
            dim: 16,
            max_iterations: Some(60_000),
            ..DeepDirectConfig::default()
        }
    }

    #[test]
    fn training_decreases_loss() {
        let u = test_universe(1);
        let cfg = small_cfg();
        let trained = train(&u, &cfg);
        // Untrained baseline: zero iterations.
        let cfg0 = DeepDirectConfig { max_iterations: Some(0), ..cfg.clone() };
        let init = train(&u, &cfg0);
        let mut rng = Pcg32::seed_from_u64(99);
        let l_init =
            estimate_loss(&u, &init.params, &init.pc, &init.pn, &cfg, 3000, &mut rng);
        let mut rng = Pcg32::seed_from_u64(99);
        let l_trained =
            estimate_loss(&u, &trained.params, &trained.pc, &trained.pn, &cfg, 3000, &mut rng);
        assert!(
            l_trained < l_init * 0.9,
            "loss should drop: init {l_init} → trained {l_trained}"
        );
    }

    #[test]
    fn joint_classifier_learns_labels() {
        let u = test_universe(2);
        let cfg = small_cfg();
        let trained = train(&u, &cfg);
        // Accuracy of σ(w'·m_e + b') on the labeled ties.
        let mut correct = 0usize;
        let mut total = 0usize;
        for (i, tie) in u.labeled_ties() {
            let p = sigmoid(dd_linalg::vecops::dot(
                trained.params.m.row(i),
                &trained.params.w,
            ) + trained.params.b);
            if (p >= 0.5) == (tie.label.unwrap() >= 0.5) {
                correct += 1;
            }
            total += 1;
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.8, "joint classifier train accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let u = test_universe(3);
        let cfg = DeepDirectConfig { max_iterations: Some(5_000), ..small_cfg() };
        let a = train(&u, &cfg);
        let b = train(&u, &cfg);
        assert_eq!(a.params.m.as_slice(), b.params.m.as_slice());
        assert_eq!(a.params.w, b.params.w);
        assert_eq!(a.params.b, b.params.b);
    }

    #[test]
    fn zero_iterations_returns_init() {
        let u = test_universe(4);
        let cfg = DeepDirectConfig { max_iterations: Some(0), ..small_cfg() };
        let out = train(&u, &cfg);
        assert_eq!(out.params.iterations, 0);
        assert_eq!(out.params.w, vec![0.0; cfg.dim]);
        assert_eq!(out.params.b, 0.0);
    }

    #[test]
    fn parallel_training_also_learns() {
        let u = test_universe(5);
        let cfg = DeepDirectConfig { threads: 3, ..small_cfg() };
        let trained = train(&u, &cfg);
        let cfg0 = DeepDirectConfig { max_iterations: Some(0), ..cfg.clone() };
        let init = train(&u, &cfg0);
        let mut rng = Pcg32::seed_from_u64(42);
        let l_init = estimate_loss(&u, &init.params, &init.pc, &init.pn, &cfg, 2000, &mut rng);
        let mut rng = Pcg32::seed_from_u64(42);
        let l_trained =
            estimate_loss(&u, &trained.params, &trained.pc, &trained.pn, &cfg, 2000, &mut rng);
        assert!(
            l_trained < l_init * 0.9,
            "parallel loss should drop: {l_init} → {l_trained}"
        );
    }

    #[test]
    fn alpha_zero_keeps_classifier_at_init() {
        let u = test_universe(6);
        let cfg = DeepDirectConfig { alpha: 0.0, beta: 0.0, ..small_cfg() };
        let out = train(&u, &cfg);
        // With both supervised losses off, w' and b' receive no gradient.
        assert_eq!(out.params.w, vec![0.0; cfg.dim]);
        assert_eq!(out.params.b, 0.0);
        // But the embeddings still moved (topology loss).
        assert!(out.params.iterations > 0);
    }
}
