//! The E-Step: learning the embedding matrix `M` (Sec. 4.2–4.5.1).
//!
//! Implements the sampled SGD of Algorithm 1, lines 11–18. Each iteration
//! draws a connected tie pair `(e, e')` — `e ~ P_c ∝ deg_tie`, `e'` uniform
//! from `c(e)` — plus `λ` negatives from `P_n ∝ deg_tie^{3/4}`, and applies
//! the closed-form gradients of Eqs. 21–25 for the combined per-pair loss
//! `L'` (Eq. 20):
//!
//! * topology: skip-gram with negative sampling over `M` and the connection
//!   matrix `N` (Eq. 10),
//! * labels: the joint logistic regression `(w', b')` on directed ties and
//!   mirrors, weighted by `α` (Eq. 13),
//! * patterns: the same regression against the pseudo-labels `y^d` (Eq. 14,
//!   thresholded by `T`) and `y^t` (Eq. 15, recomputed on the fly from the
//!   current predictions on the sampled common-neighbor ties), weighted by
//!   `β` (Eq. 16).
//!
//! With `threads > 1` the loop runs Hogwild-style: workers share `M`, `N`,
//! `w'`, `b'` without locks. Updates may race; on sparse graphs collisions
//! are rare and SGD tolerates the noise (Niu et al., 2011). All shared
//! access goes through raw-pointer reads/writes so no aliased `&mut`
//! references are ever formed.
//!
//! ## Progress telemetry
//!
//! When [`DeepDirectConfig::observer`] is attached, the loop periodically
//! reports [`EStepProgress`] samples: the sampled objective (via the same
//! Monte-Carlo estimator as [`estimate_loss`]), its α/β components,
//! throughput, and per-worker iteration counts. Estimation is strictly
//! read-only and uses its own RNG stream, so it never perturbs the SGD
//! trajectory; in Hogwild mode the monitor thread's reads race with worker
//! writes — the same accepted approximation as the updates themselves.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dd_linalg::activations::sigmoid;
use dd_linalg::alias::AliasTable;
use dd_linalg::matrix::DenseMatrix;
use dd_linalg::rng::Pcg32;
use dd_runtime::{split_streams, Latch};
use dd_telemetry::EStepProgress;

use crate::config::DeepDirectConfig;
use crate::universe::{TieUniverse, UniverseKind};

/// Salt for the progress-loss RNG stream, kept away from `cfg.seed` itself
/// so loss sampling never replays the training stream.
const PROGRESS_RNG_SALT: u64 = 0x7e1e_3e7a_11ce_0001;

/// Learned E-Step parameters.
#[derive(Debug, Clone)]
pub struct EStepParams {
    /// Embedding matrix `M` (one row per universe tie).
    pub m: DenseMatrix,
    /// Connection matrix `N` (one row per universe tie).
    pub n: DenseMatrix,
    /// Joint classifier weights `w'`.
    pub w: Vec<f32>,
    /// Joint classifier bias `b'`.
    pub b: f32,
    /// Number of SGD iterations actually run.
    pub iterations: u64,
}

/// Raw shared view of the trainable parameters for (possibly) lock-free
/// concurrent SGD.
#[derive(Clone, Copy)]
struct RawParams {
    m: *mut f32,
    n: *mut f32,
    w: *mut f32,
    b: *mut f32,
    dim: usize,
}

// SAFETY: used only under the Hogwild protocol — concurrent unsynchronized
// updates are an accepted approximation; see module docs.
unsafe impl Send for RawParams {}
unsafe impl Sync for RawParams {}

#[inline]
unsafe fn dot_raw(a: *const f32, b: *const f32, dim: usize) -> f32 {
    let mut acc = 0.0f32;
    for i in 0..dim {
        acc += *a.add(i) * *b.add(i);
    }
    acc
}

#[inline]
unsafe fn axpy_raw(alpha: f32, x: *const f32, y: *mut f32, dim: usize) {
    for i in 0..dim {
        *y.add(i) += alpha * *x.add(i);
    }
}

impl RawParams {
    #[inline]
    unsafe fn m_row(&self, e: usize) -> *mut f32 {
        self.m.add(e * self.dim)
    }

    #[inline]
    unsafe fn n_row(&self, e: usize) -> *mut f32 {
        self.n.add(e * self.dim)
    }

    /// Current joint-classifier probability for universe tie `e`:
    /// `σ(w' · m_e + b')` (Eq. 11).
    #[inline]
    unsafe fn predict(&self, e: usize) -> f32 {
        sigmoid(dot_raw(self.m_row(e), self.w, self.dim) + *self.b)
    }
}

/// One SGD iteration of Algorithm 1 (lines 13–17).
///
/// # Safety
/// `raw` must point to buffers of `universe.len() × dim` (matrices) and
/// `dim` (weights) floats that stay alive for the call. Concurrent callers
/// race benignly per the Hogwild protocol.
#[allow(clippy::too_many_arguments)]
unsafe fn sgd_iteration(
    raw: &RawParams,
    universe: &TieUniverse,
    pc: &AliasTable,
    pn: &AliasTable,
    cfg: &DeepDirectConfig,
    lr: f32,
    rng: &mut Pcg32,
    grad: &mut [f32],
) {
    let dim = raw.dim;
    debug_assert_eq!(grad.len(), dim);

    // Line 13: sample e ~ P_c, e' uniform from c(e).
    let e = pc.sample(rng);
    let Some(ep) = universe.sample_connected(e, rng) else {
        return; // deg_tie(e) = 0 has zero P_c mass; defensive only
    };
    let me = raw.m_row(e);
    for g in grad.iter_mut() {
        *g = 0.0;
    }
    let gptr = grad.as_mut_ptr();

    // --- Topology: positive pair (Eqs. 23–24) ---
    let nep = raw.n_row(ep);
    let g_pos = sigmoid(dot_raw(me, nep, dim)) - 1.0;
    axpy_raw(g_pos, nep, gptr, dim);
    axpy_raw(-lr * g_pos, me, nep, dim);

    // --- Topology: λ negatives (Eqs. 23, 25) ---
    for _ in 0..cfg.negatives {
        let ei = pn.sample(rng);
        if ei == ep {
            continue; // drawing the positive as noise would cancel it
        }
        let nei = raw.n_row(ei);
        let g_neg = sigmoid(dot_raw(me, nei, dim));
        axpy_raw(g_neg, nei, gptr, dim);
        axpy_raw(-lr * g_neg, me, nei, dim);
    }

    // --- Label / pattern terms (Eqs. 21–22 feeding Eq. 23) ---
    let tie = universe.tie(e);
    let mut g_coef = 0.0f32; // ∂L'/∂b'
    if let Some(y) = tie.label {
        if cfg.alpha > 0.0 {
            g_coef += cfg.alpha * (raw.predict(e) - y);
        }
    } else if tie.kind == UniverseKind::Undirected && cfg.beta > 0.0 {
        let p = raw.predict(e);
        // Triad Status pseudo-label y^t (Eq. 15), from current predictions.
        let samples = universe.triad_samples(e);
        if !samples.is_empty() {
            let mut yt = 0.0f32;
            for &(uw, vw) in samples {
                let puw = raw.predict(uw as usize);
                let pvw = raw.predict(vw as usize);
                yt += puw / (puw + pvw).max(1e-12);
            }
            yt /= samples.len() as f32;
            g_coef += cfg.beta * (p - yt);
        }
        // Degree Consistency pseudo-label y^d (Eq. 14), gated by T (Eq. 16).
        if let Some(yd) = tie.pseudo_degree {
            if yd as f64 > cfg.degree_threshold {
                g_coef += cfg.beta * (p - yd);
            }
        }
    }
    if !dd_linalg::is_zero32(g_coef) {
        // ∂L'/∂m_e gains g_coef · w' (Eq. 23) — read w' before updating it.
        axpy_raw(g_coef, raw.w, gptr, dim);
        // w' ← w' − lr · g_coef · m_e (Eq. 22); b' ← b' − lr · g_coef (Eq. 21).
        axpy_raw(-lr * g_coef, me, raw.w, dim);
        *raw.b -= lr * g_coef;
    }

    // Apply the accumulated gradient to m_e (Eq. 23).
    axpy_raw(-lr, gptr, me, dim);
}

/// Output of [`train`] plus the sampling tables (reused by diagnostics).
pub struct EStep {
    /// Learned parameters.
    pub params: EStepParams,
    /// `P_c ∝ deg_tie` over universe ties.
    pub pc: AliasTable,
    /// `P_n ∝ deg_tie^{3/4}` over universe ties.
    pub pn: AliasTable,
    /// Wall-clock seconds the SGD loop ran.
    pub elapsed_seconds: f64,
    /// Effective throughput: iterations executed (across all workers) per
    /// wall-clock second.
    pub iters_per_sec: f64,
    /// Iterations executed by each worker (one entry in sequential mode;
    /// empty for a degenerate zero-iteration run).
    pub per_worker_iterations: Vec<u64>,
}

/// Samples the current loss and reports one progress (or summary) event
/// through `cfg.observer`.
///
/// # Safety
/// Reads the parameter buffers behind `raw` without synchronization and
/// never writes. Callers must either hold exclusive access (sequential path,
/// between iterations) or accept the Hogwild-class benign race (monitor
/// thread); see module docs.
#[allow(clippy::too_many_arguments)]
unsafe fn report_progress(
    universe: &TieUniverse,
    raw: &RawParams,
    pc: &AliasTable,
    pn: &AliasTable,
    cfg: &DeepDirectConfig,
    total: u64,
    start: Instant,
    iteration: u64,
    per_worker: Vec<u64>,
    summary: bool,
    rng: &mut Pcg32,
) {
    let comp = estimate_components_raw(universe, raw, pc, pn, cfg, cfg.progress_samples, rng);
    let elapsed = start.elapsed().as_secs_f64();
    let p = EStepProgress {
        iteration,
        total_iterations: total,
        sampled_loss: comp.total,
        loss_topology: comp.topology,
        loss_label: comp.label,
        loss_pattern: comp.pattern,
        iters_per_sec: if elapsed > 0.0 { iteration as f64 / elapsed } else { 0.0 },
        per_worker_iterations: per_worker,
        elapsed_seconds: elapsed,
    };
    if summary {
        cfg.observer.on_estep_summary(&p);
    } else {
        cfg.observer.on_estep_progress(&p);
    }
}

/// Runs the E-Step on a prepared tie universe.
///
/// Returns initialized-but-untrained parameters when the universe has no
/// connected tie pairs (a degenerate graph with no length-2 paths).
pub fn train(universe: &TieUniverse, cfg: &DeepDirectConfig) -> EStep {
    cfg.validate().expect("invalid DeepDirect configuration");
    let mut rng = Pcg32::seed_from_u64(cfg.seed);
    let dim = cfg.dim;
    let rows = universe.len();
    let mut m = DenseMatrix::uniform_init(rows, dim, &mut rng);
    let mut n = DenseMatrix::zeros(rows, dim); // word2vec zero-inits contexts
    let mut w = vec![0.0f32; dim];
    let mut b = 0.0f32;

    let weights = universe.tie_degree_weights();
    let pc_weights: Vec<f64> = if cfg.uniform_context_sampling {
        // Ablation: uniform over ties with at least one connected tie.
        weights.iter().map(|&w| if w > 0.0 { 1.0 } else { 0.0 }).collect()
    } else {
        weights.clone()
    };
    let pc = AliasTable::new(&if pc_weights.iter().any(|&x| x > 0.0) {
        pc_weights
    } else {
        vec![1.0; rows.max(1)]
    });
    let pn = AliasTable::unigram_pow(&weights, cfg.noise_exponent);

    let planned = (cfg.tau * universe.n_connected_pairs() as f64).round() as u64;
    let total = cfg.max_iterations.map_or(planned, |cap| cap.min(planned));
    if total == 0 || universe.n_connected_pairs() == 0 {
        return EStep {
            params: EStepParams { m, n, w, b, iterations: 0 },
            pc,
            pn,
            elapsed_seconds: 0.0,
            iters_per_sec: 0.0,
            per_worker_iterations: Vec::new(),
        };
    }

    let raw = RawParams {
        m: m.as_mut_slice().as_mut_ptr(),
        n: n.as_mut_slice().as_mut_ptr(),
        w: w.as_mut_ptr(),
        b: &mut b as *mut f32,
        dim,
    };

    let observing = cfg.observer.is_enabled();
    // Iterations between progress reports. `u64::MAX` disables reporting at
    // the cost of one decrement-and-branch per iteration.
    let interval =
        if observing { cfg.progress_interval.unwrap_or((total / 20).max(1)) } else { u64::MAX };
    // dd-lint: allow(determinism) — progress-report pacing only; the clock
    // feeds telemetry timestamps, never the training arithmetic or the
    // iteration schedule (see DESIGN.md §7.11 exemptions)
    let start = Instant::now();
    let mut last_reported = 0u64;
    let per_worker_counts: Vec<u64>;

    if cfg.threads <= 1 {
        let mut grad = vec![0.0f32; dim];
        let mut loss_rng = Pcg32::seed_from_u64(cfg.seed ^ PROGRESS_RNG_SALT);
        let mut until_report = interval;
        for it in 0..total {
            let lr = cfg.lr * (1.0 - it as f32 / total as f32).max(1e-4);
            // SAFETY: exclusive access — `m`, `n`, `w`, `b` outlive the loop
            // and no other reference touches them.
            unsafe {
                sgd_iteration(&raw, universe, &pc, &pn, cfg, lr, &mut rng, &mut grad);
            }
            until_report -= 1;
            if until_report == 0 {
                until_report = interval;
                last_reported = it + 1;
                // SAFETY: single-threaded — estimation reads the buffers the
                // loop writes, between iterations.
                unsafe {
                    report_progress(
                        universe,
                        &raw,
                        &pc,
                        &pn,
                        cfg,
                        total,
                        start,
                        it + 1,
                        vec![it + 1],
                        false,
                        &mut loss_rng,
                    );
                }
            }
        }
        per_worker_counts = vec![total];
    } else {
        let per_worker = total / cfg.threads as u64 + 1;
        let mut seeds = split_streams(&mut rng, cfg.threads);
        let counters: Vec<AtomicU64> = (0..cfg.threads).map(|_| AtomicU64::new(0)).collect();
        // Workers arrive on the latch as they finish (via a drop guard, so
        // even a panicking worker arrives); the monitor parks on it instead
        // of sleep-polling a counter.
        let done = Latch::new(cfg.threads);
        let reported = AtomicU64::new(0);
        dd_runtime::scope(|s| {
            for (widx, mut wrng) in seeds.drain(..).enumerate() {
                let pc = &pc;
                let pn = &pn;
                let counter = &counters[widx];
                let done = &done;
                s.spawn(move || {
                    let _arrival = done.guard();
                    let mut grad = vec![0.0f32; dim];
                    for it in 0..per_worker {
                        let lr = cfg.lr * (1.0 - it as f32 / per_worker as f32).max(1e-4);
                        // SAFETY: Hogwild protocol; see module docs.
                        unsafe {
                            sgd_iteration(&raw, universe, pc, pn, cfg, lr, &mut wrng, &mut grad);
                        }
                        // Publish progress sparsely; one store per 4096
                        // iterations is invisible next to the SGD work.
                        if (it + 1) & 0xFFF == 0 {
                            counter.store(it + 1, Ordering::Relaxed);
                        }
                    }
                    counter.store(per_worker, Ordering::Relaxed);
                });
            }
            if observing {
                let pc = &pc;
                let pn = &pn;
                let counters = &counters;
                let done = &done;
                let reported = &reported;
                let mut loss_rng = Pcg32::seed_from_u64(cfg.seed ^ PROGRESS_RNG_SALT);
                s.spawn(move || {
                    let mut next = interval;
                    loop {
                        // Parks until either all workers arrived (wakes
                        // immediately, no poll latency) or the sampling
                        // interval elapsed and progress may be due.
                        let finished = done.wait_timeout(std::time::Duration::from_millis(20));
                        let snapshot: Vec<u64> =
                            counters.iter().map(|c| c.load(Ordering::Relaxed)).collect();
                        let iters: u64 = snapshot.iter().sum();
                        if finished {
                            break; // the final sample is reported post-join
                        }
                        if iters >= next {
                            reported.store(iters, Ordering::Relaxed);
                            // SAFETY: racy reads of live parameters — the
                            // Hogwild-class approximation; see module docs.
                            unsafe {
                                report_progress(
                                    universe,
                                    &raw,
                                    pc,
                                    pn,
                                    cfg,
                                    total,
                                    start,
                                    iters,
                                    snapshot,
                                    false,
                                    &mut loss_rng,
                                );
                            }
                            while next <= iters {
                                next += interval;
                            }
                        }
                    }
                });
            }
        });
        last_reported = reported.load(Ordering::Relaxed);
        per_worker_counts = counters.iter().map(|c| c.load(Ordering::Relaxed)).collect();
    }

    let elapsed = start.elapsed().as_secs_f64();
    let executed: u64 = per_worker_counts.iter().sum();
    let iters_per_sec = if elapsed > 0.0 { executed as f64 / elapsed } else { 0.0 };
    if observing {
        let mut loss_rng = Pcg32::seed_from_u64((cfg.seed ^ PROGRESS_RNG_SALT).wrapping_add(1));
        // SAFETY: workers have been joined; exclusive read-only access.
        unsafe {
            // Short runs may never hit the interval — guarantee at least one
            // progress sample before the end-of-E-Step summary.
            if last_reported < executed {
                report_progress(
                    universe,
                    &raw,
                    &pc,
                    &pn,
                    cfg,
                    total,
                    start,
                    executed,
                    per_worker_counts.clone(),
                    false,
                    &mut loss_rng,
                );
            }
            report_progress(
                universe,
                &raw,
                &pc,
                &pn,
                cfg,
                total,
                start,
                executed,
                per_worker_counts.clone(),
                true,
                &mut loss_rng,
            );
        }
    }

    EStep {
        params: EStepParams { m, n, w, b, iterations: total },
        pc,
        pn,
        elapsed_seconds: elapsed,
        iters_per_sec,
        per_worker_iterations: per_worker_counts,
    }
}

/// Component breakdown of the Monte-Carlo objective estimate (Eq. 20):
/// `total = topology + label + pattern`, each averaged per sampled pair and
/// already carrying its α/β weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossComponents {
    /// Combined per-pair objective `L'`.
    pub total: f64,
    /// Skip-gram topology term.
    pub topology: f64,
    /// α-weighted labeled-tie cross-entropy.
    pub label: f64,
    /// β-weighted pseudo-label cross-entropy.
    pub pattern: f64,
}

/// Core Monte-Carlo estimator over a raw parameter view.
///
/// # Safety
/// `raw` must point to live buffers of `universe.len() × dim` (matrices) and
/// `dim` (weights) floats. The function only reads; in Hogwild mode those
/// reads race benignly with worker writes (see module docs).
unsafe fn estimate_components_raw(
    universe: &TieUniverse,
    raw: &RawParams,
    pc: &AliasTable,
    pn: &AliasTable,
    cfg: &DeepDirectConfig,
    samples: usize,
    rng: &mut Pcg32,
) -> LossComponents {
    use dd_linalg::activations::{cross_entropy, log_sigmoid};
    let dim = raw.dim;
    let mut topology = 0.0f64;
    let mut label = 0.0f64;
    let mut pattern = 0.0f64;
    let mut count = 0usize;
    for _ in 0..samples {
        let e = pc.sample(rng);
        let Some(ep) = universe.sample_connected(e, rng) else { continue };
        let me = raw.m_row(e) as *const f32;
        topology -= log_sigmoid(dot_raw(me, raw.n_row(ep), dim)) as f64;
        for _ in 0..cfg.negatives {
            let ei = pn.sample(rng);
            if ei == ep {
                continue;
            }
            topology -= log_sigmoid(-dot_raw(me, raw.n_row(ei), dim)) as f64;
        }
        let p = raw.predict(e) as f64;
        let tie = universe.tie(e);
        if let Some(y) = tie.label {
            label += cfg.alpha as f64 * cross_entropy(y as f64, p);
        } else if tie.kind == UniverseKind::Undirected {
            let samples_t = universe.triad_samples(e);
            if !samples_t.is_empty() {
                let mut yt = 0.0f64;
                for &(uw, vw) in samples_t {
                    let puw = raw.predict(uw as usize) as f64;
                    let pvw = raw.predict(vw as usize) as f64;
                    yt += puw / (puw + pvw).max(1e-12);
                }
                yt /= samples_t.len() as f64;
                pattern += cfg.beta as f64 * cross_entropy(yt, p);
            }
            if let Some(yd) = tie.pseudo_degree {
                if yd as f64 > cfg.degree_threshold {
                    pattern += cfg.beta as f64 * cross_entropy(yd as f64, p);
                }
            }
        }
        count += 1;
    }
    if count == 0 {
        return LossComponents { total: 0.0, topology: 0.0, label: 0.0, pattern: 0.0 };
    }
    let n = count as f64;
    let (topology, label, pattern) = (topology / n, label / n, pattern / n);
    LossComponents { total: topology + label + pattern, topology, label, pattern }
}

/// Monte-Carlo estimate of the per-pair loss `L'` (Eq. 20) under frozen
/// parameters, broken into its topology / label / pattern components.
pub fn estimate_loss_components(
    universe: &TieUniverse,
    params: &EStepParams,
    pc: &AliasTable,
    pn: &AliasTable,
    cfg: &DeepDirectConfig,
    samples: usize,
    rng: &mut Pcg32,
) -> LossComponents {
    let raw = RawParams {
        // Estimation is strictly read-only; the `*mut` casts exist only to
        // reuse the RawParams accessors and are never written through.
        m: params.m.as_slice().as_ptr() as *mut f32,
        n: params.n.as_slice().as_ptr() as *mut f32,
        w: params.w.as_ptr() as *mut f32,
        b: &params.b as *const f32 as *mut f32,
        dim: params.m.cols(),
    };
    // SAFETY: buffers live for the call; access is read-only.
    unsafe { estimate_components_raw(universe, &raw, pc, pn, cfg, samples, rng) }
}

/// Monte-Carlo estimate of the per-pair loss `L'` (Eq. 20) under the current
/// parameters — used to verify that training decreases the objective.
pub fn estimate_loss(
    universe: &TieUniverse,
    params: &EStepParams,
    pc: &AliasTable,
    pn: &AliasTable,
    cfg: &DeepDirectConfig,
    samples: usize,
    rng: &mut Pcg32,
) -> f64 {
    estimate_loss_components(universe, params, pc, pn, cfg, samples, rng).total
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_graph::generators::{social_network, SocialNetConfig};
    use dd_graph::sampling::hide_directions;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_universe(seed: u64) -> TieUniverse {
        let gen_cfg = SocialNetConfig { n_nodes: 150, m_per_node: 4, ..Default::default() };
        let mut grng = StdRng::seed_from_u64(seed);
        let net = social_network(&gen_cfg, &mut grng).network;
        let hidden = hide_directions(&net, 0.5, &mut grng);
        let mut rng = Pcg32::seed_from_u64(seed);
        TieUniverse::build(&hidden.network, 10, &mut rng)
    }

    fn small_cfg() -> DeepDirectConfig {
        DeepDirectConfig { dim: 16, max_iterations: Some(60_000), ..DeepDirectConfig::default() }
    }

    #[test]
    fn training_decreases_loss() {
        let u = test_universe(1);
        let cfg = small_cfg();
        let trained = train(&u, &cfg);
        // Untrained baseline: zero iterations.
        let cfg0 = DeepDirectConfig { max_iterations: Some(0), ..cfg.clone() };
        let init = train(&u, &cfg0);
        let mut rng = Pcg32::seed_from_u64(99);
        let l_init = estimate_loss(&u, &init.params, &init.pc, &init.pn, &cfg, 3000, &mut rng);
        let mut rng = Pcg32::seed_from_u64(99);
        let l_trained =
            estimate_loss(&u, &trained.params, &trained.pc, &trained.pn, &cfg, 3000, &mut rng);
        assert!(l_trained < l_init * 0.9, "loss should drop: init {l_init} → trained {l_trained}");
    }

    #[test]
    fn joint_classifier_learns_labels() {
        let u = test_universe(2);
        let cfg = small_cfg();
        let trained = train(&u, &cfg);
        // Accuracy of σ(w'·m_e + b') on the labeled ties.
        let mut correct = 0usize;
        let mut total = 0usize;
        for (i, tie) in u.labeled_ties() {
            let p = sigmoid(
                dd_linalg::vecops::dot(trained.params.m.row(i), &trained.params.w)
                    + trained.params.b,
            );
            if (p >= 0.5) == (tie.label.unwrap() >= 0.5) {
                correct += 1;
            }
            total += 1;
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.8, "joint classifier train accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let u = test_universe(3);
        let cfg = DeepDirectConfig { max_iterations: Some(5_000), ..small_cfg() };
        let a = train(&u, &cfg);
        let b = train(&u, &cfg);
        assert_eq!(a.params.m.as_slice(), b.params.m.as_slice());
        assert_eq!(a.params.w, b.params.w);
        assert_eq!(a.params.b, b.params.b);
    }

    #[test]
    fn zero_iterations_returns_init() {
        let u = test_universe(4);
        let cfg = DeepDirectConfig { max_iterations: Some(0), ..small_cfg() };
        let out = train(&u, &cfg);
        assert_eq!(out.params.iterations, 0);
        assert_eq!(out.params.w, vec![0.0; cfg.dim]);
        assert_eq!(out.params.b, 0.0);
    }

    #[test]
    fn parallel_training_also_learns() {
        let u = test_universe(5);
        let cfg = DeepDirectConfig { threads: 3, ..small_cfg() };
        let trained = train(&u, &cfg);
        let cfg0 = DeepDirectConfig { max_iterations: Some(0), ..cfg.clone() };
        let init = train(&u, &cfg0);
        let mut rng = Pcg32::seed_from_u64(42);
        let l_init = estimate_loss(&u, &init.params, &init.pc, &init.pn, &cfg, 2000, &mut rng);
        let mut rng = Pcg32::seed_from_u64(42);
        let l_trained =
            estimate_loss(&u, &trained.params, &trained.pc, &trained.pn, &cfg, 2000, &mut rng);
        assert!(l_trained < l_init * 0.9, "parallel loss should drop: {l_init} → {l_trained}");
    }

    #[derive(Default)]
    struct Capture(std::sync::Mutex<Vec<dd_telemetry::Event>>);

    impl dd_telemetry::TrainObserver for Capture {
        fn on_event(&self, e: &dd_telemetry::Event) {
            self.0.lock().unwrap().push(e.clone());
        }
    }

    fn observed_cfg(cap: &std::sync::Arc<Capture>, base: DeepDirectConfig) -> DeepDirectConfig {
        DeepDirectConfig { observer: dd_telemetry::ObserverHandle::new(cap.clone()), ..base }
    }

    #[test]
    fn progress_events_are_monotonic_and_finite() {
        let u = test_universe(7);
        let cap = std::sync::Arc::new(Capture::default());
        let cfg = observed_cfg(
            &cap,
            DeepDirectConfig {
                max_iterations: Some(10_000),
                progress_interval: Some(2_000),
                progress_samples: 200,
                ..small_cfg()
            },
        );
        train(&u, &cfg);
        let events = cap.0.lock().unwrap();
        let progress: Vec<_> =
            events.iter().filter(|e| e.kind == dd_telemetry::kind::ESTEP_PROGRESS).collect();
        assert!(progress.len() >= 3, "expected several progress samples, got {}", progress.len());
        let mut prev = 0u64;
        for p in &progress {
            let it = p.iteration.unwrap();
            assert!(it > prev, "iterations must strictly increase: {prev} then {it}");
            prev = it;
            let loss = p.sampled_loss.unwrap();
            assert!(loss.is_finite() && loss > 0.0, "sampled loss {loss}");
            // Components sum to the total.
            let sum = p.loss_topology.unwrap() + p.loss_label.unwrap() + p.loss_pattern.unwrap();
            assert!((sum - loss).abs() < 1e-9, "components {sum} vs total {loss}");
        }
        let summaries: Vec<_> =
            events.iter().filter(|e| e.kind == dd_telemetry::kind::ESTEP_SUMMARY).collect();
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].iteration, Some(10_000));
    }

    #[test]
    fn observer_does_not_perturb_training() {
        let u = test_universe(8);
        let cfg = DeepDirectConfig { max_iterations: Some(5_000), ..small_cfg() };
        let plain = train(&u, &cfg);
        let cap = std::sync::Arc::new(Capture::default());
        let observed =
            observed_cfg(&cap, DeepDirectConfig { progress_interval: Some(500), ..cfg.clone() });
        let watched = train(&u, &observed);
        // Loss sampling is read-only on a separate RNG stream, so the
        // learned parameters must be bit-identical.
        assert_eq!(plain.params.m.as_slice(), watched.params.m.as_slice());
        assert_eq!(plain.params.w, watched.params.w);
        assert_eq!(plain.params.b, watched.params.b);
        assert!(!cap.0.lock().unwrap().is_empty());
    }

    #[test]
    fn parallel_training_reports_progress_and_throughput() {
        let u = test_universe(9);
        let cap = std::sync::Arc::new(Capture::default());
        let cfg = observed_cfg(
            &cap,
            DeepDirectConfig {
                threads: 3,
                max_iterations: Some(30_000),
                progress_samples: 100,
                ..small_cfg()
            },
        );
        let out = train(&u, &cfg);
        assert!(out.elapsed_seconds > 0.0);
        assert!(out.iters_per_sec > 0.0);
        assert_eq!(out.per_worker_iterations.len(), 3);
        let executed: u64 = out.per_worker_iterations.iter().sum();
        assert!(executed >= 30_000, "all workers must finish: {executed}");
        let events = cap.0.lock().unwrap();
        assert!(
            events.iter().any(|e| e.kind == dd_telemetry::kind::ESTEP_PROGRESS),
            "at least one progress event is guaranteed"
        );
        assert!(events.iter().any(|e| e.kind == dd_telemetry::kind::ESTEP_SUMMARY));
        // Every progress event names one count per worker.
        for e in events.iter().filter(|e| e.kind == dd_telemetry::kind::ESTEP_PROGRESS) {
            assert_eq!(e.per_worker_iterations.as_ref().unwrap().len(), 3);
        }
    }

    #[test]
    fn alpha_zero_keeps_classifier_at_init() {
        let u = test_universe(6);
        let cfg = DeepDirectConfig { alpha: 0.0, beta: 0.0, ..small_cfg() };
        let out = train(&u, &cfg);
        // With both supervised losses off, w' and b' receive no gradient.
        assert_eq!(out.params.w, vec![0.0; cfg.dim]);
        assert_eq!(out.params.b, 0.0);
        // But the embeddings still moved (topology loss).
        assert!(out.params.iterations > 0);
    }
}
