//! Bidirectionality analysis of undirected ties — the paper's third
//! future-work direction ("study the possibility that an undirected tie is
//! actually bidirectional and analyze its directionality of two directions").
//!
//! For an undirected tie `(u, v)` with directionality values `d(u, v)` and
//! `d(v, u)`, we read high values *in both directions* as evidence the tie is
//! really bidirectional, and a strong asymmetry as evidence of a single
//! direction. The bidirectionality score is the balance-weighted strength
//! `2 · min(d_uv, d_vu) · max(d_uv, d_vu) / (d_uv + d_vu)` — the harmonic
//! mean of the two direction values, which is near 1 only when both
//! directions are strong and near 0 when either is weak.

use dd_graph::{MixedSocialNetwork, NodeId};

/// Bidirectionality assessment of one undirected tie.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BidirScore {
    /// Canonical endpoints (`u < v`).
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
    /// `d(u, v)`.
    pub d_uv: f64,
    /// `d(v, u)`.
    pub d_vu: f64,
    /// Harmonic-mean bidirectionality score in `[0, 1]`.
    pub score: f64,
}

impl BidirScore {
    /// The stronger direction of the tie.
    pub fn dominant(&self) -> (NodeId, NodeId) {
        if self.d_uv >= self.d_vu {
            (self.u, self.v)
        } else {
            (self.v, self.u)
        }
    }
}

/// Scores how likely each undirected tie of `g` is to be bidirectional.
pub fn bidirectionality_scores<F>(g: &MixedSocialNetwork, mut score: F) -> Vec<BidirScore>
where
    F: FnMut(NodeId, NodeId) -> f64,
{
    let mut out = Vec::new();
    for (_, u, v) in g.undirected_pairs() {
        let d_uv = score(u, v);
        let d_vu = score(v, u);
        let s = if d_uv + d_vu > 0.0 { 2.0 * d_uv * d_vu / (d_uv + d_vu) } else { 0.0 };
        out.push(BidirScore { u, v, d_uv, d_vu, score: s });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_graph::NetworkBuilder;

    fn two_undirected() -> MixedSocialNetwork {
        let mut b = NetworkBuilder::new(4);
        b.add_directed(NodeId(0), NodeId(1)).unwrap();
        b.add_undirected(NodeId(1), NodeId(2)).unwrap();
        b.add_undirected(NodeId(2), NodeId(3)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn symmetric_strong_ties_score_high() {
        let g = two_undirected();
        let scores = bidirectionality_scores(&g, |_, _| 0.9);
        for s in &scores {
            assert!((s.score - 0.9).abs() < 1e-12, "harmonic mean of equal values");
        }
    }

    #[test]
    fn asymmetric_ties_score_low() {
        let g = two_undirected();
        let scores = bidirectionality_scores(&g, |u, v| if u < v { 0.95 } else { 0.05 });
        for s in &scores {
            assert!(s.score < 0.2, "asymmetric tie must look one-directional");
            assert_eq!(s.dominant(), (s.u, s.v));
        }
    }

    #[test]
    fn zero_scores_are_safe() {
        let g = two_undirected();
        let scores = bidirectionality_scores(&g, |_, _| 0.0);
        for s in &scores {
            assert_eq!(s.score, 0.0);
        }
    }

    #[test]
    fn canonical_order_and_dominance() {
        let g = two_undirected();
        let scores = bidirectionality_scores(&g, |u, v| if u > v { 0.8 } else { 0.3 });
        for s in &scores {
            assert!(s.u < s.v);
            assert_eq!(s.dominant(), (s.v, s.u));
        }
    }
}
