//! Direction discovery on undirected ties (Sec. 5.1, Eq. 28).
//!
//! For each undirected tie `(u, v)` the predicted direction is `u → v` when
//! `d(u, v) ≥ d(v, u)`, else `v → u`.

use dd_graph::{MixedSocialNetwork, NodeId};

/// One discovered direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscoveredDirection {
    /// Predicted source.
    pub src: NodeId,
    /// Predicted destination.
    pub dst: NodeId,
    /// `d(src, dst)` under the scorer.
    pub forward: f64,
    /// `d(dst, src)` under the scorer.
    pub backward: f64,
}

impl DiscoveredDirection {
    /// Confidence margin `d(src, dst) − d(dst, src) ∈ [0, 1]`.
    pub fn margin(&self) -> f64 {
        self.forward - self.backward
    }
}

/// Predicts directions for every undirected tie in `g` using `score`.
///
/// Ties are reported with their *predicted* orientation; `score` is queried
/// in both orders per Eq. 28.
pub fn discover_directions<F>(g: &MixedSocialNetwork, mut score: F) -> Vec<DiscoveredDirection>
where
    F: FnMut(NodeId, NodeId) -> f64,
{
    let mut out = Vec::new();
    for (_, u, v) in g.undirected_pairs() {
        let duv = score(u, v);
        let dvu = score(v, u);
        if duv >= dvu {
            out.push(DiscoveredDirection { src: u, dst: v, forward: duv, backward: dvu });
        } else {
            out.push(DiscoveredDirection { src: v, dst: u, forward: dvu, backward: duv });
        }
    }
    out
}

/// Fraction of hidden ties whose direction was predicted correctly
/// (the accuracy metric of Sec. 6.2).
///
/// `truth` holds the true orientations of the hidden ties, in any order.
pub fn discovery_accuracy(predictions: &[DiscoveredDirection], truth: &[(NodeId, NodeId)]) -> f64 {
    use dd_graph::hash::FxHashSet;
    if predictions.is_empty() {
        return 0.0;
    }
    let truth_set: FxHashSet<(u32, u32)> = truth.iter().map(|&(u, v)| (u.0, v.0)).collect();
    let correct = predictions.iter().filter(|p| truth_set.contains(&(p.src.0, p.dst.0))).count();
    correct as f64 / predictions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_graph::NetworkBuilder;

    fn net_with_undirected() -> MixedSocialNetwork {
        let mut b = NetworkBuilder::new(4);
        b.add_directed(NodeId(0), NodeId(1)).unwrap();
        b.add_undirected(NodeId(1), NodeId(2)).unwrap();
        b.add_undirected(NodeId(2), NodeId(3)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn picks_higher_scoring_orientation() {
        let g = net_with_undirected();
        // Score favors lower id → higher id.
        let preds = discover_directions(&g, |u, v| if u < v { 0.9 } else { 0.1 });
        assert_eq!(preds.len(), 2);
        for p in &preds {
            assert!(p.src < p.dst);
            assert_eq!(p.forward, 0.9);
            assert_eq!(p.backward, 0.1);
            assert!((p.margin() - 0.8).abs() < 1e-12);
        }
    }

    #[test]
    fn tie_breaks_toward_first_order() {
        let g = net_with_undirected();
        // Constant scorer: Eq. 28 assigns u → v on equality, where (u, v) is
        // the canonical (src < dst) instance.
        let preds = discover_directions(&g, |_, _| 0.5);
        for p in &preds {
            assert!(p.src < p.dst);
        }
    }

    #[test]
    fn accuracy_counts_matches() {
        let g = net_with_undirected();
        let preds = discover_directions(&g, |u, v| if u < v { 1.0 } else { 0.0 });
        // Truth: (1,2) correct, (3,2) means prediction (2,3) is wrong.
        let truth = vec![(NodeId(1), NodeId(2)), (NodeId(3), NodeId(2))];
        let acc = discovery_accuracy(&preds, &truth);
        assert!((acc - 0.5).abs() < 1e-12);
        assert_eq!(discovery_accuracy(&[], &truth), 0.0);
    }

    #[test]
    fn perfect_and_zero_accuracy() {
        let g = net_with_undirected();
        let preds = discover_directions(&g, |u, v| if u < v { 1.0 } else { 0.0 });
        let all_right: Vec<_> = preds.iter().map(|p| (p.src, p.dst)).collect();
        assert_eq!(discovery_accuracy(&preds, &all_right), 1.0);
        let all_wrong: Vec<_> = preds.iter().map(|p| (p.dst, p.src)).collect();
        assert_eq!(discovery_accuracy(&preds, &all_wrong), 0.0);
    }
}
