//! Applications of the directionality function (Sec. 5).
//!
//! All application entry points are generic over a scorer closure
//! `Fn(NodeId, NodeId) -> f64` returning `d(u, v)`, so they work identically
//! with [`crate::DirectionalityModel`] and with the baseline learners in
//! `dd-baselines`.

pub mod bidir;
pub mod discovery;
pub mod quantify;

pub use bidir::{bidirectionality_scores, BidirScore};
pub use discovery::{discover_directions, discovery_accuracy, DiscoveredDirection};
pub use quantify::DirectionalityAdjacency;
