//! Direction quantification on bidirectional ties: the *directionality
//! adjacency matrix* (Sec. 5.2).
//!
//! Starting from the 0/1 adjacency matrix, the two cells of every
//! bidirectional tie are replaced by the directionality values `d(u, v)` and
//! `d(v, u)`, quantifying which direction of the relationship is stronger.
//! The matrix is stored sparsely (CSR over rows plus a column index) so the
//! weighted Jaccard link predictor of Sec. 6.3 can stream rows and columns.

use dd_graph::hash::FxHashMap;
use dd_graph::{MixedSocialNetwork, NodeId, TieKind};

/// Sparse weighted adjacency matrix with directionality-quantified
/// bidirectional ties.
#[derive(Debug, Clone)]
pub struct DirectionalityAdjacency {
    n_nodes: usize,
    row_offsets: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
    /// Column view: for each node, (row, value) of incoming entries.
    col_offsets: Vec<u32>,
    row_idx: Vec<u32>,
    col_values: Vec<f64>,
    row_sums: Vec<f64>,
    col_sums: Vec<f64>,
}

impl DirectionalityAdjacency {
    /// Builds the plain 0/1 adjacency matrix of `g` (undirected ties
    /// contribute both orders with weight 1). This is the baseline the
    /// directionality matrix is compared against in Fig. 8.
    pub fn unweighted(g: &MixedSocialNetwork) -> Self {
        Self::build(g, |_, _| 1.0)
    }

    /// Builds the directionality adjacency matrix: directed and undirected
    /// entries keep weight 1, bidirectional entries are replaced by
    /// `score(u, v)`.
    pub fn quantified<F>(g: &MixedSocialNetwork, mut score: F) -> Self
    where
        F: FnMut(NodeId, NodeId) -> f64,
    {
        Self::build_kinded(g, |kind, u, v| match kind {
            TieKind::Bidirectional => score(u, v),
            _ => 1.0,
        })
    }

    fn build<F>(g: &MixedSocialNetwork, mut weight: F) -> Self
    where
        F: FnMut(NodeId, NodeId) -> f64,
    {
        Self::build_kinded(g, |_, u, v| weight(u, v))
    }

    fn build_kinded<F>(g: &MixedSocialNetwork, mut weight: F) -> Self
    where
        F: FnMut(TieKind, NodeId, NodeId) -> f64,
    {
        let n = g.n_nodes();
        let mut entries: Vec<(u32, u32, f64)> = Vec::with_capacity(g.n_ordered_ties());
        for (_, t) in g.iter_ties() {
            let w = weight(t.kind, t.src, t.dst);
            entries.push((t.src.0, t.dst.0, w));
        }
        // Row CSR via counting sort.
        let mut row_offsets = vec![0u32; n + 1];
        let mut col_offsets = vec![0u32; n + 1];
        for &(r, c, _) in &entries {
            row_offsets[r as usize + 1] += 1;
            col_offsets[c as usize + 1] += 1;
        }
        for i in 0..n {
            row_offsets[i + 1] += row_offsets[i];
            col_offsets[i + 1] += col_offsets[i];
        }
        let mut col_idx = vec![0u32; entries.len()];
        let mut values = vec![0.0f64; entries.len()];
        let mut row_idx = vec![0u32; entries.len()];
        let mut col_values = vec![0.0f64; entries.len()];
        let mut rcur: Vec<u32> = row_offsets[..n].to_vec();
        let mut ccur: Vec<u32> = col_offsets[..n].to_vec();
        let mut row_sums = vec![0.0f64; n];
        let mut col_sums = vec![0.0f64; n];
        for &(r, c, w) in &entries {
            let ri = &mut rcur[r as usize];
            col_idx[*ri as usize] = c;
            values[*ri as usize] = w;
            *ri += 1;
            let ci = &mut ccur[c as usize];
            row_idx[*ci as usize] = r;
            col_values[*ci as usize] = w;
            *ci += 1;
            row_sums[r as usize] += w;
            col_sums[c as usize] += w;
        }
        DirectionalityAdjacency {
            n_nodes: n,
            row_offsets,
            col_idx,
            values,
            col_offsets,
            row_idx,
            col_values,
            row_sums,
            col_sums,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Non-zero entries of row `u`: `(column, weight)`.
    pub fn row(&self, u: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let s = self.row_offsets[u.index()] as usize;
        let e = self.row_offsets[u.index() + 1] as usize;
        self.col_idx[s..e].iter().zip(&self.values[s..e]).map(|(&c, &w)| (NodeId(c), w))
    }

    /// Non-zero entries of column `v`: `(row, weight)`.
    pub fn col(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let s = self.col_offsets[v.index()] as usize;
        let e = self.col_offsets[v.index() + 1] as usize;
        self.row_idx[s..e].iter().zip(&self.col_values[s..e]).map(|(&r, &w)| (NodeId(r), w))
    }

    /// Sum of row `u` (`sum(A_{u,:})`).
    pub fn row_sum(&self, u: NodeId) -> f64 {
        self.row_sums[u.index()]
    }

    /// Sum of column `v` (`sum(A_{:,v})`).
    pub fn col_sum(&self, v: NodeId) -> f64 {
        self.col_sums[v.index()]
    }

    /// Entry `A[u][v]`, `0` when absent.
    pub fn get(&self, u: NodeId, v: NodeId) -> f64 {
        self.row(u).find(|&(c, _)| c == v).map_or(0.0, |(_, w)| w)
    }

    /// Weighted Jaccard coefficient of Eq. 29:
    /// `f(u → v) = sum(A_{u,:} · A_{:,v}) / (sum(A_{u,:}) + sum(A_{:,v}))`.
    ///
    /// The numerator is the weighted count of 2-hop paths `u → w → v`.
    pub fn jaccard(&self, u: NodeId, v: NodeId) -> f64 {
        let denom = self.row_sum(u) + self.col_sum(v);
        if denom <= 0.0 {
            return 0.0;
        }
        // Sparse dot of row u with column v via a hash of the shorter side.
        let ru = self.row_offsets[u.index() + 1] - self.row_offsets[u.index()];
        let cv = self.col_offsets[v.index() + 1] - self.col_offsets[v.index()];
        let mut num = 0.0;
        if ru <= cv {
            let lookup: FxHashMap<u32, f64> = self.row(u).map(|(c, w)| (c.0, w)).collect();
            for (r, w) in self.col(v) {
                if let Some(&wu) = lookup.get(&r.0) {
                    num += wu * w;
                }
            }
        } else {
            let lookup: FxHashMap<u32, f64> = self.col(v).map(|(r, w)| (r.0, w)).collect();
            for (c, w) in self.row(u) {
                if let Some(&wv) = lookup.get(&c.0) {
                    num += w * wv;
                }
            }
        }
        num / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_graph::NetworkBuilder;

    fn mixed_net() -> MixedSocialNetwork {
        let mut b = NetworkBuilder::new(4);
        b.add_directed(NodeId(0), NodeId(1)).unwrap();
        b.add_bidirectional(NodeId(1), NodeId(2)).unwrap();
        b.add_undirected(NodeId(2), NodeId(3)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn unweighted_matches_adjacency() {
        let g = mixed_net();
        let a = DirectionalityAdjacency::unweighted(&g);
        assert_eq!(a.n_nodes(), 4);
        assert_eq!(a.get(NodeId(0), NodeId(1)), 1.0);
        assert_eq!(a.get(NodeId(1), NodeId(0)), 0.0); // directed, one way
        assert_eq!(a.get(NodeId(1), NodeId(2)), 1.0);
        assert_eq!(a.get(NodeId(2), NodeId(1)), 1.0);
        assert_eq!(a.get(NodeId(2), NodeId(3)), 1.0);
        assert_eq!(a.get(NodeId(3), NodeId(2)), 1.0);
    }

    #[test]
    fn quantified_replaces_only_bidirectional_cells() {
        let g = mixed_net();
        let a = DirectionalityAdjacency::quantified(&g, |u, v| if u < v { 0.8 } else { 0.2 });
        // Directed and undirected cells keep weight 1.
        assert_eq!(a.get(NodeId(0), NodeId(1)), 1.0);
        assert_eq!(a.get(NodeId(2), NodeId(3)), 1.0);
        // Bidirectional cells carry d values.
        assert_eq!(a.get(NodeId(1), NodeId(2)), 0.8);
        assert_eq!(a.get(NodeId(2), NodeId(1)), 0.2);
    }

    #[test]
    fn sums_are_consistent() {
        let g = mixed_net();
        let a = DirectionalityAdjacency::unweighted(&g);
        for u in g.nodes() {
            let rs: f64 = a.row(u).map(|(_, w)| w).sum();
            assert!((rs - a.row_sum(u)).abs() < 1e-12);
            let cs: f64 = a.col(u).map(|(_, w)| w).sum();
            assert!((cs - a.col_sum(u)).abs() < 1e-12);
        }
    }

    #[test]
    fn jaccard_counts_two_hop_paths() {
        // 0 → 1 → 2 and 0 → 3 → 2: two 2-hop paths from 0 to 2.
        let mut b = NetworkBuilder::new(4);
        b.add_directed(NodeId(0), NodeId(1)).unwrap();
        b.add_directed(NodeId(1), NodeId(2)).unwrap();
        b.add_directed(NodeId(0), NodeId(3)).unwrap();
        b.add_directed(NodeId(3), NodeId(2)).unwrap();
        let g = b.build().unwrap();
        let a = DirectionalityAdjacency::unweighted(&g);
        // numerator 2, denominator row_sum(0)=2 + col_sum(2)=2 → 0.5.
        assert!((a.jaccard(NodeId(0), NodeId(2)) - 0.5).abs() < 1e-12);
        // No path 2 → 0.
        assert_eq!(a.jaccard(NodeId(2), NodeId(0)), 0.0);
    }

    #[test]
    fn jaccard_respects_weights() {
        let mut b = NetworkBuilder::new(3);
        b.add_bidirectional(NodeId(0), NodeId(1)).unwrap();
        b.add_bidirectional(NodeId(1), NodeId(2)).unwrap();
        let _ = b.add_directed(NodeId(2), NodeId(0));
        let g = b.build().unwrap();
        let full = DirectionalityAdjacency::unweighted(&g);
        let half = DirectionalityAdjacency::quantified(&g, |_, _| 0.5);
        // Weighted path strength through node 1 shrinks when bidirectional
        // cells drop to 0.5.
        assert!(half.jaccard(NodeId(0), NodeId(2)) < full.jaccard(NodeId(0), NodeId(2)));
    }
}
