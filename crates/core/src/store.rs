//! Structure-of-arrays storage for tie embeddings.
//!
//! [`TieStore`] keeps the embedding block (and the optional connection
//! block) as contiguous `f32` rows inside one 64-byte-aligned allocation,
//! so the scoring hot path streams cache-resident rows straight into the
//! unrolled kernels of [`dd_linalg::kernels`]. It is built by copying
//! (training, JSON load) or adopted zero-copy from a validated binary model
//! buffer (the block stays where the file bytes were read).

use dd_linalg::bytes::{self, AlignedBuf, BLOCK_ALIGN};

/// Rounds `n` up to the next multiple of [`BLOCK_ALIGN`].
pub(crate) fn align_up(n: usize) -> usize {
    n.div_ceil(BLOCK_ALIGN) * BLOCK_ALIGN
}

/// Contiguous row-major embedding storage, one row per universe tie, with
/// every block starting on a cache-line boundary.
#[derive(Debug, Clone)]
pub struct TieStore {
    buf: AlignedBuf,
    dim: usize,
    rows: usize,
    emb_off: usize,
    ctx_off: Option<usize>,
}

impl TieStore {
    /// Builds a store by copying `emb` (and optionally `ctx`), each of which
    /// must hold exactly `rows × dim` values.
    pub fn from_parts(
        dim: usize,
        rows: usize,
        emb: &[f32],
        ctx: Option<&[f32]>,
    ) -> Result<TieStore, String> {
        let want = rows.checked_mul(dim).ok_or("embedding shape overflows")?;
        if emb.len() != want {
            return Err(format!(
                "embedding block holds {} values, expected {rows} rows × {dim} dims = {want}",
                emb.len()
            ));
        }
        if let Some(c) = ctx {
            if c.len() != want {
                return Err(format!(
                    "context block holds {} values, expected {rows} rows × {dim} dims = {want}",
                    c.len()
                ));
            }
        }
        let emb_bytes = want * std::mem::size_of::<f32>();
        let ctx_off = ctx.map(|_| align_up(emb_bytes));
        let total = ctx_off.map_or(emb_bytes, |o| o + emb_bytes);
        let mut buf = AlignedBuf::zeroed(total);
        buf.as_mut_bytes()[..emb_bytes].copy_from_slice(bytes::f32_bytes(emb));
        if let (Some(c), Some(off)) = (ctx, ctx_off) {
            buf.as_mut_bytes()[off..off + emb_bytes].copy_from_slice(bytes::f32_bytes(c));
        }
        Ok(TieStore { buf, dim, rows, emb_off: 0, ctx_off })
    }

    /// Adopts an already-validated buffer zero-copy: the embedding block
    /// lives at `emb_off..emb_off + rows×dim×4` inside `buf` (likewise
    /// `ctx_off`). Offsets must be [`BLOCK_ALIGN`]-aligned and in bounds —
    /// the binary loader guarantees this before calling.
    pub(crate) fn adopt(
        buf: AlignedBuf,
        dim: usize,
        rows: usize,
        emb_off: usize,
        ctx_off: Option<usize>,
    ) -> Result<TieStore, String> {
        let block = rows
            .checked_mul(dim)
            .and_then(|n| n.checked_mul(std::mem::size_of::<f32>()))
            .ok_or("embedding shape overflows")?;
        for off in std::iter::once(emb_off).chain(ctx_off) {
            if off % BLOCK_ALIGN != 0 {
                return Err(format!("block offset {off} is not {BLOCK_ALIGN}-byte aligned"));
            }
            let end = off.checked_add(block).ok_or("block extends past the buffer")?;
            if end > buf.len() {
                return Err(format!(
                    "block {off}..{end} extends past the {}-byte buffer",
                    buf.len()
                ));
            }
            // Alignment + in-bounds established; prove the cast works now so
            // accessors can rely on it.
            bytes::f32_slice(&buf.as_bytes()[off..end]).map_err(|e| e.to_string())?;
        }
        Ok(TieStore { buf, dim, rows, emb_off, ctx_off })
    }

    /// Embedding dimension `d` (columns per row).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of embedded rows (ties).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether a connection (context) block is present.
    pub fn has_contexts(&self) -> bool {
        self.ctx_off.is_some()
    }

    fn block(&self, off: usize) -> &[f32] {
        let len = self.rows * self.dim * std::mem::size_of::<f32>();
        bytes::f32_slice(&self.buf.as_bytes()[off..off + len])
            .expect("TieStore invariant: blocks are aligned and sized (checked at construction)")
    }

    /// The whole embedding block, row-major.
    pub fn embeddings(&self) -> &[f32] {
        self.block(self.emb_off)
    }

    /// The whole context block, row-major, if present.
    pub fn contexts(&self) -> Option<&[f32]> {
        self.ctx_off.map(|off| self.block(off))
    }

    /// Embedding row `r`.
    pub fn embedding_row(&self, r: usize) -> &[f32] {
        &self.embeddings()[r * self.dim..(r + 1) * self.dim]
    }

    /// Context row `r`, if the store carries contexts.
    pub fn context_row(&self, r: usize) -> Option<&[f32]> {
        self.contexts().map(|c| &c[r * self.dim..(r + 1) * self.dim])
    }

    /// Native-endian bytes of the embedding block (fingerprinting).
    pub fn embedding_bytes(&self) -> &[u8] {
        bytes::f32_bytes(self.embeddings())
    }

    /// Native-endian bytes of the context block, if present.
    pub fn context_bytes(&self) -> Option<&[u8]> {
        self.contexts().map(bytes::f32_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_parts_lays_out_aligned_blocks() {
        let emb: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let ctx: Vec<f32> = (0..12).map(|i| (i as f32) * 0.5).collect();
        let s = TieStore::from_parts(4, 3, &emb, Some(&ctx)).unwrap();
        assert_eq!(s.dim(), 4);
        assert_eq!(s.rows(), 3);
        assert!(s.has_contexts());
        for (a, b) in s.embedding_row(1).iter().zip(&emb[4..8]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in s.context_row(2).unwrap().iter().zip(&ctx[8..12]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(s.embeddings().as_ptr() as usize % BLOCK_ALIGN, 0);
        assert_eq!(s.contexts().unwrap().as_ptr() as usize % BLOCK_ALIGN, 0);
    }

    #[test]
    fn from_parts_rejects_shape_mismatches() {
        let emb = vec![0.0f32; 11];
        assert!(TieStore::from_parts(4, 3, &emb, None).unwrap_err().contains("11 values"));
        let emb = vec![0.0f32; 12];
        let ctx = vec![0.0f32; 8];
        assert!(TieStore::from_parts(4, 3, &emb, Some(&ctx)).is_err());
    }

    #[test]
    fn adopt_checks_alignment_and_bounds() {
        let buf = AlignedBuf::zeroed(256);
        assert!(TieStore::adopt(buf.clone(), 4, 3, 0, Some(64)).is_ok());
        assert!(TieStore::adopt(buf.clone(), 4, 3, 8, None).unwrap_err().contains("aligned"));
        assert!(TieStore::adopt(buf, 8, 8, 64, None).unwrap_err().contains("past"));
    }
}
