//! The DeepDirect binary model container (`.ddm`) — spec in DESIGN.md §7.13.
//!
//! A compact little-endian format built for zero-copy loading: after one
//! `read` into a 64-byte-aligned buffer ([`dd_linalg::bytes::AlignedBuf`]),
//! the numeric sections are borrowed in place as typed slices — no parse, no
//! per-element conversion, no `mmap`.
//!
//! ```text
//! offset  size  field
//! 0       8     magic  89 44 44 4D 44 4C 0D 0A  ("\x89DDMDL\r\n")
//! 8       4     container format version (u32 LE) — currently 1
//! 12      4     model schema version (u32 LE) — must equal MODEL_SCHEMA_VERSION
//! 16      4     section count (u32 LE)
//! 20      4     CRC-32 (IEEE) of the section table bytes
//! 24      24×n  section table: { kind u32, crc32 u32, offset u64, len u64 }
//! ...           section payloads (numeric sections 64-byte aligned)
//! ```
//!
//! Section kinds: 1 = meta (JSON: config, head, training counters),
//! 2 = tie.src (u32 LE), 3 = tie.dst (u32 LE), 4 = embeddings (f32 LE,
//! row-major `rows × dim`), 5 = contexts (f32 LE, optional). The file ends
//! exactly at the last section — trailing bytes are rejected. Unknown
//! section kinds are rejected under container version 1; additive evolution
//! bumps the container version, value-interpretation changes bump the model
//! schema version.
//!
//! Every validation failure is a typed [`BinaryFormatError`] naming the
//! offending section — the loader never panics on hostile input (pinned by
//! the corrupt-binary chaos suite).

use std::io::Write;
use std::ops::Range;

use dd_linalg::bytes::{self, AlignedBuf, BLOCK_ALIGN};
use serde::{Deserialize, Serialize};

use crate::config::DeepDirectConfig;
use crate::dstep::DirectionalityHead;
use crate::model::MODEL_SCHEMA_VERSION;
use crate::store::{align_up, TieStore};

/// Magic bytes opening every binary model file. PNG-style: a non-ASCII lead
/// byte catches text-mode transfers, the trailing CR-LF catches newline
/// translation.
pub const MAGIC: [u8; 8] = [0x89, b'D', b'D', b'M', b'D', b'L', b'\r', b'\n'];

/// Container layout version written at byte 8. Bumped when the *container*
/// (header, table, section framing) changes shape.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed header length in bytes (magic through table checksum).
pub const HEADER_LEN: usize = 24;

/// Length of one section-table entry in bytes.
pub const ENTRY_LEN: usize = 24;

/// Section kind tags (the `kind` field of a table entry).
pub mod section {
    /// JSON metadata: config, head parameters, training counters.
    pub const META: u32 = 1;
    /// Tie source node ids, u32 LE, one per row.
    pub const TIE_SRC: u32 = 2;
    /// Tie destination node ids, u32 LE, one per row.
    pub const TIE_DST: u32 = 3;
    /// Embedding block, f32 LE, row-major `rows × dim`.
    pub const EMB: u32 = 4;
    /// Optional context (connection) block, f32 LE, row-major `rows × dim`.
    pub const CTX: u32 = 5;
}

/// Human-readable name of a section kind (used in every error message so
/// failures name the offending section).
pub fn section_name(kind: u32) -> &'static str {
    match kind {
        section::META => "meta",
        section::TIE_SRC => "tie.src",
        section::TIE_DST => "tie.dst",
        section::EMB => "embeddings",
        section::CTX => "contexts",
        _ => "unknown",
    }
}

/// Why a buffer is not a loadable binary model. Display output always names
/// the structural region or section at fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryFormatError {
    /// The buffer ends before the named region is complete.
    Truncated {
        /// Region being read when the bytes ran out.
        what: &'static str,
        /// Bytes required to hold the region.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The first eight bytes are not the DeepDirect magic.
    BadMagic,
    /// The container version is newer than this build understands.
    UnsupportedFormatVersion(u32),
    /// The embedded model schema differs from this build's.
    SchemaMismatch {
        /// Schema version found in the header.
        found: u32,
    },
    /// The section count is implausible (zero or far beyond the kinds
    /// defined by this container version).
    BadSectionCount(u32),
    /// The stored section-table checksum does not match the table bytes.
    HeaderChecksum {
        /// CRC stored in the header.
        stored: u32,
        /// CRC computed over the table bytes.
        computed: u32,
    },
    /// A table entry names a kind this container version does not define.
    UnknownSection(u32),
    /// The same section kind appears twice in the table.
    DuplicateSection(&'static str),
    /// A required section is absent.
    MissingSection(&'static str),
    /// A section's `offset + len` leaves the file.
    SectionBounds {
        /// Offending section.
        name: &'static str,
        /// Stored offset.
        offset: u64,
        /// Stored length.
        len: u64,
        /// Actual file size.
        file_len: usize,
    },
    /// A numeric section does not start on a [`BLOCK_ALIGN`] boundary.
    Misaligned {
        /// Offending section.
        name: &'static str,
        /// Stored offset.
        offset: u64,
    },
    /// A numeric section's byte length is not a multiple of its element
    /// size.
    BadSectionLength {
        /// Offending section.
        name: &'static str,
        /// Stored length.
        len: u64,
    },
    /// A section's payload fails its CRC-32.
    SectionChecksum {
        /// Offending section.
        name: &'static str,
        /// CRC stored in the table.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// Bytes remain after the last section.
    TrailingBytes {
        /// Expected file end (end of the last section).
        expected: usize,
        /// Actual file size.
        got: usize,
    },
    /// The meta section is not valid metadata JSON.
    Meta(String),
    /// A section's element count contradicts the shape declared in meta.
    ShapeMismatch {
        /// Offending section.
        name: &'static str,
        /// Elements the meta shape requires.
        expected: usize,
        /// Elements actually present.
        got: usize,
    },
    /// A float payload contains a non-finite value (NaN or ±inf).
    NonFinite {
        /// Offending section.
        name: &'static str,
        /// Element index of the first non-finite value.
        index: usize,
    },
}

impl std::fmt::Display for BinaryFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use BinaryFormatError::*;
        match self {
            Truncated { what, needed, got } => {
                write!(f, "truncated {what}: need {needed} bytes, file has {got}")
            }
            BadMagic => write!(f, "bad magic bytes (not a DeepDirect binary model)"),
            UnsupportedFormatVersion(v) => write!(
                f,
                "unsupported container format version {v} (this build reads version \
                 {FORMAT_VERSION}; the file was written by a newer build — upgrade dd)"
            ),
            SchemaMismatch { found } => write!(
                f,
                "unsupported model schema version {found} (this build reads schema \
                 {MODEL_SCHEMA_VERSION})"
            ),
            BadSectionCount(n) => write!(f, "implausible section count {n} in header"),
            HeaderChecksum { stored, computed } => write!(
                f,
                "section table checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            UnknownSection(kind) => write!(f, "unknown section kind {kind} in section table"),
            DuplicateSection(name) => write!(f, "duplicate section '{name}' in section table"),
            MissingSection(name) => write!(f, "missing required section '{name}'"),
            SectionBounds { name, offset, len, file_len } => write!(
                f,
                "section '{name}' at {offset}+{len} extends past the {file_len}-byte file"
            ),
            Misaligned { name, offset } => {
                write!(f, "section '{name}' offset {offset} is not {BLOCK_ALIGN}-byte aligned")
            }
            BadSectionLength { name, len } => {
                write!(f, "section '{name}' length {len} is not a whole number of elements")
            }
            SectionChecksum { name, stored, computed } => write!(
                f,
                "section '{name}' checksum mismatch (stored {stored:#010x}, computed \
                 {computed:#010x})"
            ),
            TrailingBytes { expected, got } => {
                write!(f, "trailing bytes after last section (expected {expected}, file has {got})")
            }
            Meta(e) => write!(f, "section 'meta' is not valid model metadata: {e}"),
            ShapeMismatch { name, expected, got } => {
                write!(f, "section '{name}' holds {got} elements, meta shape requires {expected}")
            }
            NonFinite { name, index } => {
                write!(f, "section '{name}' contains a non-finite value at element {index}")
            }
        }
    }
}

impl std::error::Error for BinaryFormatError {}

/// JSON metadata document stored in the `meta` section.
#[derive(Serialize, Deserialize)]
struct MetaDoc {
    schema: u32,
    dim: u32,
    rows: u32,
    context: bool,
    cfg: DeepDirectConfig,
    head: DirectionalityHead,
    estep_iterations: u64,
}

/// One parsed section-table entry.
#[derive(Debug, Clone, Copy)]
struct Entry {
    kind: u32,
    crc: u32,
    offset: u64,
    len: u64,
}

/// Whether `bytes` begins with the binary model magic — the format sniff
/// used by the unified loader.
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Everything [`decode`] extracts from a validated buffer.
pub(crate) struct DecodedModel {
    pub cfg: DeepDirectConfig,
    pub head: DirectionalityHead,
    pub estep_iterations: u64,
    pub ties: Vec<(u32, u32)>,
    pub store: TieStore,
}

fn read_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
}

fn read_u64(bytes: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Byte ranges of the validated sections, in kind order: meta, tie.src,
/// tie.dst, embeddings, and the optional contexts block.
type SectionRanges = (Range<usize>, Range<usize>, Range<usize>, Range<usize>, Option<Range<usize>>);

/// Structural validation: header, table checksum, section bounds, alignment
/// and payload checksums. Returns the byte range of each section. Runs
/// before any endianness fixup because every check is over raw LE bytes.
fn validate_structure(bytes: &[u8]) -> Result<SectionRanges, BinaryFormatError> {
    if bytes.len() < HEADER_LEN {
        return Err(BinaryFormatError::Truncated {
            what: "header",
            needed: HEADER_LEN,
            got: bytes.len(),
        });
    }
    if !is_binary(bytes) {
        return Err(BinaryFormatError::BadMagic);
    }
    let version = read_u32(bytes, 8);
    if version != FORMAT_VERSION {
        return Err(BinaryFormatError::UnsupportedFormatVersion(version));
    }
    let schema = read_u32(bytes, 12);
    if schema != MODEL_SCHEMA_VERSION {
        return Err(BinaryFormatError::SchemaMismatch { found: schema });
    }
    let n_sections = read_u32(bytes, 16);
    if n_sections == 0 || n_sections > 8 {
        return Err(BinaryFormatError::BadSectionCount(n_sections));
    }
    let table_len = n_sections as usize * ENTRY_LEN;
    let table_end = HEADER_LEN + table_len;
    if bytes.len() < table_end {
        return Err(BinaryFormatError::Truncated {
            what: "section table",
            needed: table_end,
            got: bytes.len(),
        });
    }
    let stored_crc = read_u32(bytes, 20);
    let computed_crc = bytes::crc32(&bytes[HEADER_LEN..table_end]);
    if stored_crc != computed_crc {
        return Err(BinaryFormatError::HeaderChecksum {
            stored: stored_crc,
            computed: computed_crc,
        });
    }

    let mut entries: Vec<Entry> = Vec::with_capacity(n_sections as usize);
    for i in 0..n_sections as usize {
        let base = HEADER_LEN + i * ENTRY_LEN;
        entries.push(Entry {
            kind: read_u32(bytes, base),
            crc: read_u32(bytes, base + 4),
            offset: read_u64(bytes, base + 8),
            len: read_u64(bytes, base + 16),
        });
    }

    let mut ranges: [Option<Range<usize>>; 5] = [None, None, None, None, None];
    let mut file_end = table_end;
    for e in &entries {
        if !(section::META..=section::CTX).contains(&e.kind) {
            return Err(BinaryFormatError::UnknownSection(e.kind));
        }
        let name = section_name(e.kind);
        let slot = &mut ranges[(e.kind - 1) as usize];
        if slot.is_some() {
            return Err(BinaryFormatError::DuplicateSection(name));
        }
        let end = e.offset.checked_add(e.len).filter(|&end| end <= bytes.len() as u64).ok_or(
            BinaryFormatError::SectionBounds {
                name,
                offset: e.offset,
                len: e.len,
                file_len: bytes.len(),
            },
        )?;
        if e.offset < table_end as u64 {
            return Err(BinaryFormatError::SectionBounds {
                name,
                offset: e.offset,
                len: e.len,
                file_len: bytes.len(),
            });
        }
        if e.kind != section::META {
            if e.offset % BLOCK_ALIGN as u64 != 0 {
                return Err(BinaryFormatError::Misaligned { name, offset: e.offset });
            }
            if e.len % 4 != 0 {
                return Err(BinaryFormatError::BadSectionLength { name, len: e.len });
            }
        }
        let range = e.offset as usize..end as usize;
        let computed = bytes::crc32(&bytes[range.clone()]);
        if computed != e.crc {
            return Err(BinaryFormatError::SectionChecksum { name, stored: e.crc, computed });
        }
        file_end = file_end.max(range.end);
        *slot = Some(range);
    }
    if file_end != bytes.len() {
        return Err(BinaryFormatError::TrailingBytes { expected: file_end, got: bytes.len() });
    }
    let [meta, src, dst, emb, ctx] = ranges;
    let meta = meta.ok_or(BinaryFormatError::MissingSection("meta"))?;
    let src = src.ok_or(BinaryFormatError::MissingSection("tie.src"))?;
    let dst = dst.ok_or(BinaryFormatError::MissingSection("tie.dst"))?;
    let emb = emb.ok_or(BinaryFormatError::MissingSection("embeddings"))?;
    Ok((meta, src, dst, emb, ctx))
}

/// LE→native fixup for the numeric sections: a no-op on little-endian
/// hosts, an in-place word swap on big-endian ones.
fn normalize_endianness(buf: &mut AlignedBuf, ranges: &[Range<usize>]) {
    #[cfg(target_endian = "big")]
    for r in ranges {
        bytes::swap_u32_bytes_in_place(&mut buf.as_mut_bytes()[r.clone()]);
    }
    #[cfg(not(target_endian = "big"))]
    let _ = (buf, ranges);
}

fn check_f32_block(
    bytes: &[u8],
    range: Range<usize>,
    name: &'static str,
    expected: usize,
) -> Result<(), BinaryFormatError> {
    let floats = bytes::f32_slice(&bytes[range])
        .map_err(|_| BinaryFormatError::BadSectionLength { name, len: 0 })?;
    if floats.len() != expected {
        return Err(BinaryFormatError::ShapeMismatch { name, expected, got: floats.len() });
    }
    if let Some(index) = floats.iter().position(|v| !v.is_finite()) {
        return Err(BinaryFormatError::NonFinite { name, index });
    }
    Ok(())
}

/// Validates `buf` fully and decodes it into model parts, adopting the
/// numeric blocks zero-copy (the embedding slices borrow the same
/// allocation the file was read into).
pub(crate) fn decode(mut buf: AlignedBuf) -> Result<DecodedModel, BinaryFormatError> {
    let (meta_r, src_r, dst_r, emb_r, ctx_r) = validate_structure(buf.as_bytes())?;

    let meta: MetaDoc = serde_json::from_str(
        std::str::from_utf8(&buf.as_bytes()[meta_r])
            .map_err(|e| BinaryFormatError::Meta(e.to_string()))?,
    )
    .map_err(|e| BinaryFormatError::Meta(e.to_string()))?;
    if meta.schema != MODEL_SCHEMA_VERSION {
        return Err(BinaryFormatError::SchemaMismatch { found: meta.schema });
    }
    let rows = meta.rows as usize;
    let dim = meta.dim as usize;

    // The payloads are little-endian on disk; flip each aligned word once on
    // big-endian targets (checksums were verified over the raw bytes above).
    let numeric: Vec<Range<usize>> =
        [src_r.clone(), dst_r.clone(), emb_r.clone()].into_iter().chain(ctx_r.clone()).collect();
    normalize_endianness(&mut buf, &numeric);

    let expected = rows.checked_mul(dim).ok_or(BinaryFormatError::ShapeMismatch {
        name: "embeddings",
        expected: usize::MAX,
        got: 0,
    })?;
    check_f32_block(buf.as_bytes(), emb_r.clone(), "embeddings", expected)?;
    match (&ctx_r, meta.context) {
        (Some(r), true) => check_f32_block(buf.as_bytes(), r.clone(), "contexts", expected)?,
        (None, false) => {}
        (Some(_), false) => return Err(BinaryFormatError::DuplicateSection("contexts")),
        (None, true) => return Err(BinaryFormatError::MissingSection("contexts")),
    }

    let ties = {
        let src = bytes::u32_slice(&buf.as_bytes()[src_r.clone()])
            .map_err(|_| BinaryFormatError::BadSectionLength { name: "tie.src", len: 0 })?;
        let dst = bytes::u32_slice(&buf.as_bytes()[dst_r.clone()])
            .map_err(|_| BinaryFormatError::BadSectionLength { name: "tie.dst", len: 0 })?;
        if src.len() != rows {
            return Err(BinaryFormatError::ShapeMismatch {
                name: "tie.src",
                expected: rows,
                got: src.len(),
            });
        }
        if dst.len() != rows {
            return Err(BinaryFormatError::ShapeMismatch {
                name: "tie.dst",
                expected: rows,
                got: dst.len(),
            });
        }
        src.iter().copied().zip(dst.iter().copied()).collect::<Vec<(u32, u32)>>()
    };

    let (emb_off, ctx_off) = (emb_r.start, ctx_r.map(|r| r.start));
    let store = TieStore::adopt(buf, dim, rows, emb_off, ctx_off).map_err(|e| {
        // adopt re-checks what validate_structure already proved; a failure
        // here means the shape arithmetic disagrees with the section length.
        BinaryFormatError::Meta(format!("block adoption failed: {e}"))
    })?;

    Ok(DecodedModel {
        cfg: meta.cfg,
        head: meta.head,
        estep_iterations: meta.estep_iterations,
        ties,
        store,
    })
}

fn push_padded(out: &mut Vec<u8>, target: usize) {
    debug_assert!(target >= out.len());
    out.resize(target, 0);
}

/// Serializes model parts into the binary container. The writer emits
/// little-endian bytes explicitly, so output is identical on any host.
pub(crate) fn encode<W: Write>(
    mut w: W,
    cfg: &DeepDirectConfig,
    head: &DirectionalityHead,
    estep_iterations: u64,
    ties: &[(u32, u32)],
    store: &TieStore,
) -> Result<(), String> {
    let meta = MetaDoc {
        schema: MODEL_SCHEMA_VERSION,
        dim: store.dim() as u32,
        rows: store.rows() as u32,
        context: store.has_contexts(),
        cfg: cfg.clone(),
        head: head.clone(),
        estep_iterations,
    };
    let meta_bytes = serde_json::to_string(&meta).map_err(|e| e.to_string())?.into_bytes();

    let mut src_bytes = Vec::with_capacity(ties.len() * 4);
    let mut dst_bytes = Vec::with_capacity(ties.len() * 4);
    for &(u, v) in ties {
        src_bytes.extend_from_slice(&u.to_le_bytes());
        dst_bytes.extend_from_slice(&v.to_le_bytes());
    }
    let mut emb_bytes = Vec::with_capacity(store.embeddings().len() * 4);
    for v in store.embeddings() {
        emb_bytes.extend_from_slice(&v.to_le_bytes());
    }
    let ctx_bytes: Option<Vec<u8>> = store.contexts().map(|c| {
        let mut b = Vec::with_capacity(c.len() * 4);
        for v in c {
            b.extend_from_slice(&v.to_le_bytes());
        }
        b
    });

    let mut sections: Vec<(u32, &[u8])> = vec![
        (section::META, &meta_bytes),
        (section::TIE_SRC, &src_bytes),
        (section::TIE_DST, &dst_bytes),
        (section::EMB, &emb_bytes),
    ];
    if let Some(c) = &ctx_bytes {
        sections.push((section::CTX, c));
    }

    let table_end = HEADER_LEN + sections.len() * ENTRY_LEN;
    // Lay out payloads: meta directly after the table, numeric sections on
    // 64-byte boundaries.
    let mut offsets = Vec::with_capacity(sections.len());
    let mut cursor = table_end;
    for &(kind, payload) in &sections {
        if kind != section::META {
            cursor = align_up(cursor);
        }
        offsets.push(cursor);
        cursor += payload.len();
    }

    let mut table = Vec::with_capacity(sections.len() * ENTRY_LEN);
    for (&(kind, payload), &off) in sections.iter().zip(&offsets) {
        table.extend_from_slice(&kind.to_le_bytes());
        table.extend_from_slice(&bytes::crc32(payload).to_le_bytes());
        table.extend_from_slice(&(off as u64).to_le_bytes());
        table.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    }

    let mut out = Vec::with_capacity(cursor);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&MODEL_SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    out.extend_from_slice(&bytes::crc32(&table).to_le_bytes());
    out.extend_from_slice(&table);
    for (&(_, payload), &off) in sections.iter().zip(&offsets) {
        push_padded(&mut out, off);
        out.extend_from_slice(payload);
    }
    debug_assert_eq!(out.len(), cursor);

    w.write_all(&out).map_err(|e| e.to_string())
}
