//! Hyper-parameters of the DeepDirect model (Table 1 / Sec. 6.1).

use dd_telemetry::ObserverHandle;
use serde::{Deserialize, Serialize};

/// Which classifier the D-Step trains on top of the tie embeddings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DStepHead {
    /// The paper's logistic regression (Eq. 26), warm-started from `w', b'`.
    Logistic,
    /// The future-work extension: a one-hidden-layer MLP for a non-linear
    /// directionality function. The hidden width is
    /// [`DeepDirectConfig::mlp_hidden`].
    Mlp,
}

/// Full configuration of DeepDirect.
///
/// Defaults follow Sec. 6.1: `l = 128`, `λ = 5`, `τ = 10`, with `α = 5` and
/// `β = 0.1` as the grid-search optima the ablations identify (Figs. 4–5).
/// `γ` (common neighbors sampled per undirected tie, Eq. 15) and the degree
/// threshold `T` (Eq. 16) are not given numeric values in the paper; the
/// defaults here were chosen by the same validation-split search and are
/// swept by the ablation benches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeepDirectConfig {
    /// Embedding dimensionality `l`.
    pub dim: usize,
    /// Weight `α` of the labeled-data loss `L_label`.
    pub alpha: f32,
    /// Weight `β` of the pattern loss `L_pattern`.
    pub beta: f32,
    /// Number of negative samples `λ` per positive connected-tie pair.
    pub negatives: usize,
    /// Maximum common neighbors `γ` sampled into `t(u, v)` per undirected
    /// tie.
    pub gamma: usize,
    /// Epoch multiplier `τ`: the E-Step runs `τ · |C(G)|` SGD iterations.
    pub tau: f64,
    /// Hard cap on E-Step iterations, overriding `τ · |C(G)|` when smaller.
    /// `None` means no cap. Intended for tests and benches.
    pub max_iterations: Option<u64>,
    /// Degree-pattern threshold `T`: the `y^d` pseudo-label term only fires
    /// when `y^d_e > T` (Eq. 16).
    pub degree_threshold: f64,
    /// Initial E-Step learning rate, decayed linearly.
    pub lr: f32,
    /// Number of Hogwild worker threads for the E-Step. `1` = sequential.
    pub threads: usize,
    /// RNG seed controlling initialization and sampling.
    pub seed: u64,
    /// D-Step classifier.
    pub head: DStepHead,
    /// Hidden width when `head == DStepHead::Mlp`.
    pub mlp_hidden: usize,
    /// D-Step epochs.
    pub dstep_epochs: usize,
    /// D-Step L2 regularization strength.
    pub dstep_l2: f32,
    /// Exponent of the negative-sampling noise distribution
    /// `P_n ∝ deg_tie^exponent` (word2vec's 3/4 by default). Ablation knob.
    pub noise_exponent: f64,
    /// Sample the focus tie uniformly instead of `P_c ∝ deg_tie`,
    /// removing the tie-degree weighting of Eqs. 13/16. Ablation knob.
    pub uniform_context_sampling: bool,
    /// Extension (not in the paper): feed the D-Step the concatenation
    /// `[m_e ‖ n_e]` instead of `m_e` alone. The connected-tie context of
    /// `(u, v)` covers only ties leaving the head `v`, so `m_e` carries
    /// head-side information only; the connection vector `n_e` aligns with
    /// ties *entering the tail* `u` and restores the tail side. See
    /// DESIGN.md §6.
    pub context_features: bool,
    /// E-Step iterations between progress reports when an observer is
    /// attached. `None` picks ~20 evenly spaced reports per run.
    pub progress_interval: Option<u64>,
    /// Monte-Carlo sample count per progress-loss estimate. Progress
    /// sampling reads the live parameters through the same estimator as
    /// [`estep::estimate_loss`](crate::estep::estimate_loss) and never
    /// perturbs the Hogwild updates.
    pub progress_samples: usize,
    /// Telemetry sink for training progress, spans, and epoch losses.
    /// Disabled (free) by default; not serialized with the config.
    #[serde(skip)]
    pub observer: ObserverHandle,
}

impl Default for DeepDirectConfig {
    fn default() -> Self {
        DeepDirectConfig {
            dim: 128,
            alpha: 5.0,
            beta: 0.1,
            negatives: 5,
            gamma: 10,
            tau: 10.0,
            max_iterations: None,
            degree_threshold: 0.6,
            lr: 0.05,
            threads: 1,
            seed: 0xdeed,
            head: DStepHead::Logistic,
            mlp_hidden: 32,
            dstep_epochs: 30,
            dstep_l2: 1e-4,
            noise_exponent: 0.75,
            uniform_context_sampling: false,
            context_features: false,
            progress_interval: None,
            progress_samples: 512,
            observer: ObserverHandle::none(),
        }
    }
}

impl DeepDirectConfig {
    /// A small, fast configuration for unit tests and examples: low
    /// dimension and a capped iteration count.
    pub fn fast() -> Self {
        DeepDirectConfig { dim: 32, tau: 5.0, max_iterations: Some(400_000), ..Default::default() }
    }

    /// Validates internal consistency; called by the trainer.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 {
            return Err("embedding dimension must be positive".into());
        }
        if self.negatives == 0 {
            return Err("need at least one negative sample".into());
        }
        if !self.alpha.is_finite() || self.alpha < 0.0 {
            return Err("alpha must be non-negative".into());
        }
        if !self.beta.is_finite() || self.beta < 0.0 {
            return Err("beta must be non-negative".into());
        }
        if !self.tau.is_finite() || self.tau <= 0.0 {
            return Err("tau must be positive".into());
        }
        if !self.lr.is_finite() || self.lr <= 0.0 {
            return Err("learning rate must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.degree_threshold) {
            return Err("degree threshold must be in [0, 1]".into());
        }
        if self.threads == 0 {
            return Err("need at least one thread".into());
        }
        if !self.noise_exponent.is_finite() || self.noise_exponent < 0.0 {
            return Err("noise exponent must be non-negative".into());
        }
        if self.progress_interval == Some(0) {
            return Err("progress interval must be positive".into());
        }
        if self.progress_samples == 0 {
            return Err("progress sampling needs at least one sample".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DeepDirectConfig::default();
        assert_eq!(c.dim, 128);
        assert_eq!(c.negatives, 5);
        assert_eq!(c.tau, 10.0);
        assert_eq!(c.alpha, 5.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn fast_config_is_valid() {
        assert!(DeepDirectConfig::fast().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        for f in [
            |c: &mut DeepDirectConfig| c.dim = 0,
            |c: &mut DeepDirectConfig| c.negatives = 0,
            |c: &mut DeepDirectConfig| c.alpha = -1.0,
            |c: &mut DeepDirectConfig| c.beta = f32::NAN,
            |c: &mut DeepDirectConfig| c.tau = 0.0,
            |c: &mut DeepDirectConfig| c.lr = 0.0,
            |c: &mut DeepDirectConfig| c.degree_threshold = 1.5,
            |c: &mut DeepDirectConfig| c.threads = 0,
            |c: &mut DeepDirectConfig| c.noise_exponent = -1.0,
            |c: &mut DeepDirectConfig| c.progress_interval = Some(0),
            |c: &mut DeepDirectConfig| c.progress_samples = 0,
        ] {
            let mut c = DeepDirectConfig::default();
            f(&mut c);
            assert!(c.validate().is_err());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let c = DeepDirectConfig::fast();
        let s = serde_json::to_string(&c).unwrap();
        let c2: DeepDirectConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(c2.dim, c.dim);
        assert_eq!(c2.max_iterations, c.max_iterations);
        assert_eq!(c2.head, DStepHead::Logistic);
    }
}
