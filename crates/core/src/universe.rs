//! The training tie universe: preprocessing of Algorithm 1, lines 1–9.
//!
//! The E-Step embeds *ordered* ties. The universe therefore contains:
//!
//! * every ordered instance of the mixed network (bidirectional and
//!   undirected ties already materialize in both orders), and
//! * a *mirror* `(v, u)` for every directed tie `(u, v) ∈ E_d`, as the paper
//!   prescribes ("we add `(v, u)` to `E_d` and record their labels"), with
//!   labels `y_{uv} = 1`, `y_{vu} = 0`.
//!
//! By construction every universe tie has its reverse present, so the tie
//! degree simplifies to `deg_tie(e=(u,v)) = outdeg(v) − 1`.
//!
//! For each undirected tie the universe precomputes the Degree Consistency
//! pseudo-label `y^d` (Eq. 14) and the sampled common-neighbor tie pairs
//! `t(u, v)` feeding the Triad Status pseudo-label `y^t` (Eq. 15).

use dd_graph::hash::FxHashMap;
use dd_graph::triads::common_neighbors;
use dd_graph::{MixedSocialNetwork, NodeId, TieKind};
use dd_linalg::rng::Pcg32;
use dd_runtime::{chunk_size, split_streams, Pool, Threads};
use serde::{Deserialize, Serialize};

/// Classification of a universe tie.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UniverseKind {
    /// An original directed tie (label 1).
    Directed,
    /// The added reverse of a directed tie (label 0).
    Mirror,
    /// One order of a bidirectional tie.
    Bidirectional,
    /// One order of an undirected tie.
    Undirected,
}

/// One ordered tie in the training universe.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UniverseTie {
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Kind within the universe.
    pub kind: UniverseKind,
    /// Supervision label: `Some(1.0)` for directed ties, `Some(0.0)` for
    /// mirrors, `None` otherwise.
    pub label: Option<f32>,
    /// Degree Consistency pseudo-label `y^d` (Eq. 14); `Some` only for
    /// undirected ties.
    pub pseudo_degree: Option<f32>,
}

/// The frozen training universe.
#[derive(Debug, Clone)]
pub struct TieUniverse {
    n_nodes: usize,
    ties: Vec<UniverseTie>,
    out_offsets: Vec<u32>,
    out_ties: Vec<u32>,
    pair_index: FxHashMap<(u32, u32), u32>,
    tie_degrees: Vec<u32>,
    /// For each undirected universe tie `e = (u, v)`: the universe indices of
    /// `(u, w)` and `(v, w)` for each sampled common neighbor `w ∈ t(u, v)`.
    triad_samples: Vec<Vec<(u32, u32)>>,
    n_connected_pairs: u64,
}

impl TieUniverse {
    /// Builds the universe from a mixed social network.
    ///
    /// `gamma` caps the number of common neighbors sampled into `t(u, v)`
    /// per undirected tie. Equivalent to [`TieUniverse::build_with_threads`]
    /// at one thread; the chunked structure is identical, so the serial and
    /// parallel builds agree bit-for-bit.
    pub fn build(g: &MixedSocialNetwork, gamma: usize, rng: &mut Pcg32) -> Self {
        Self::build_with_threads(g, gamma, rng, Threads::serial())
    }

    /// Builds the universe on `threads` workers.
    ///
    /// The connected-tie-pair enumeration (tie degrees) and the
    /// common-neighbor triad sampling are parallelized over fixed chunks of
    /// ties, each chunk drawing from its own [`Pcg32`] stream split off
    /// `rng` (stream `i` belongs to chunk `i`, not to a thread), so the
    /// universe is bit-identical at any thread count.
    pub fn build_with_threads(
        g: &MixedSocialNetwork,
        gamma: usize,
        rng: &mut Pcg32,
        threads: Threads,
    ) -> Self {
        Self::build_traced(g, gamma, rng, threads, None)
    }

    /// Builds the universe on `threads` workers, reporting the internal
    /// pool's call/chunk spans as children of `stage` when given.
    ///
    /// Tracing is observational only: the pool's chunk structure, RNG
    /// streams, and reduction order are identical with or without a stage
    /// span, so traced and untraced builds agree bit-for-bit (DESIGN.md
    /// §7.12).
    pub fn build_traced(
        g: &MixedSocialNetwork,
        gamma: usize,
        rng: &mut Pcg32,
        threads: Threads,
        stage: Option<&dd_telemetry::Span>,
    ) -> Self {
        let counts = g.counts();
        let n_universe = g.n_ordered_ties() + counts.directed;
        let mut ties: Vec<UniverseTie> = Vec::with_capacity(n_universe);
        // Original instances first (so network TieIds map 1:1 onto the first
        // `g.n_ordered_ties()` universe indices), then mirrors.
        for (_, t) in g.iter_ties() {
            let (kind, label, pseudo_degree) = match t.kind {
                TieKind::Directed => (UniverseKind::Directed, Some(1.0), None),
                TieKind::Bidirectional => (UniverseKind::Bidirectional, None, None),
                TieKind::Undirected => {
                    // Degree Consistency pseudo-label. Eq. 14 as printed
                    // (`y^d_uv = deg(u)/(deg(u)+deg(v))`) contradicts
                    // Definition 5 ("directed ties usually link from nodes
                    // with lower degrees to those with higher degrees"): it
                    // would assign a *low* pseudo-label exactly when the
                    // pattern predicts the direction u → v. We implement the
                    // pattern-consistent form `deg(v)/(deg(u)+deg(v))` and
                    // document the deviation in DESIGN.md.
                    let du = g.social_degree(t.src) as f64;
                    let dv = g.social_degree(t.dst) as f64;
                    let yd = if du + dv > 0.0 { (dv / (du + dv)) as f32 } else { 0.5 };
                    (UniverseKind::Undirected, None, Some(yd))
                }
            };
            ties.push(UniverseTie { src: t.src, dst: t.dst, kind, label, pseudo_degree });
        }
        for (_, u, v) in g.directed_ties() {
            ties.push(UniverseTie {
                src: v,
                dst: u,
                kind: UniverseKind::Mirror,
                label: Some(0.0),
                pseudo_degree: None,
            });
        }

        // CSR by source over universe ties.
        let n_nodes = g.n_nodes();
        let mut out_offsets = vec![0u32; n_nodes + 1];
        for t in &ties {
            out_offsets[t.src.index() + 1] += 1;
        }
        for i in 0..n_nodes {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut cursor: Vec<u32> = out_offsets[..n_nodes].to_vec();
        let mut out_ties = vec![0u32; ties.len()];
        for (i, t) in ties.iter().enumerate() {
            let c = &mut cursor[t.src.index()];
            out_ties[*c as usize] = i as u32;
            *c += 1;
        }

        let mut pair_index: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        pair_index.reserve(ties.len());
        for (i, t) in ties.iter().enumerate() {
            pair_index.insert((t.src.0, t.dst.0), i as u32);
        }

        let pool = Pool::new("universe.build", threads);
        if let Some(span) = stage {
            pool.set_trace(span.observer(), span.context());
        }

        // Every universe tie has its reverse present, so deg_tie = outdeg−1.
        // This is the connected-tie-pair enumeration: Σ deg_tie = |C(G)|.
        let tie_degrees: Vec<u32> = pool.par_map(ties.len(), |i| {
            let t = &ties[i];
            let od = out_offsets[t.dst.index() + 1] - out_offsets[t.dst.index()];
            debug_assert!(od >= 1, "reverse tie must exist");
            od - 1
        });
        let n_connected_pairs: u64 = tie_degrees.iter().map(|&d| d as u64).sum();

        // Sampled common-neighbor tie pairs for undirected ties, chunked
        // with one split RNG stream per chunk. Streams are derived from
        // `rng` serially up front, so the samples depend only on the root
        // RNG state and the tie count — never on the thread count.
        let csize = chunk_size(ties.len());
        let streams = split_streams(rng, ties.len().div_ceil(csize));
        let mut triad_samples: Vec<Vec<(u32, u32)>> = vec![Vec::new(); ties.len()];
        pool.par_chunks_mut(&mut triad_samples, csize, |offset, slots| {
            let mut chunk_rng = streams[offset / csize].clone();
            for (j, slot) in slots.iter_mut().enumerate() {
                let t = &ties[offset + j];
                if t.kind != UniverseKind::Undirected {
                    continue;
                }
                let mut cn = common_neighbors(g, t.src, t.dst);
                // Partial Fisher–Yates to sample up to γ without bias.
                let take = gamma.min(cn.len());
                for k in 0..take {
                    let j = k + chunk_rng.gen_range(cn.len() - k);
                    cn.swap(k, j);
                }
                let mut pairs = Vec::with_capacity(take);
                for &w in &cn[..take] {
                    let uw = pair_index.get(&(t.src.0, w.0));
                    let vw = pair_index.get(&(t.dst.0, w.0));
                    if let (Some(&uw), Some(&vw)) = (uw, vw) {
                        pairs.push((uw, vw));
                    }
                }
                *slot = pairs;
            }
        });

        TieUniverse {
            n_nodes,
            ties,
            out_offsets,
            out_ties,
            pair_index,
            tie_degrees,
            triad_samples,
            n_connected_pairs,
        }
    }

    /// Number of nodes in the underlying network.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of universe ties (`|E|` after the mirror augmentation).
    pub fn len(&self) -> usize {
        self.ties.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.ties.is_empty()
    }

    /// The universe tie at `idx`.
    #[inline]
    pub fn tie(&self, idx: usize) -> &UniverseTie {
        &self.ties[idx]
    }

    /// All universe ties.
    pub fn ties(&self) -> &[UniverseTie] {
        &self.ties
    }

    /// Universe index of the ordered pair `(u, v)`, if present.
    #[inline]
    pub fn find(&self, u: NodeId, v: NodeId) -> Option<usize> {
        self.pair_index.get(&(u.0, v.0)).map(|&i| i as usize)
    }

    /// Universe indices of ties leaving `u`.
    #[inline]
    pub fn out_ties(&self, u: NodeId) -> &[u32] {
        let s = self.out_offsets[u.index()] as usize;
        let e = self.out_offsets[u.index() + 1] as usize;
        &self.out_ties[s..e]
    }

    /// `deg_tie` of universe tie `idx` (back-tie excluded).
    #[inline]
    pub fn tie_degree(&self, idx: usize) -> u32 {
        self.tie_degrees[idx]
    }

    /// All tie degrees, as `f64` weights for the sampling distributions.
    pub fn tie_degree_weights(&self) -> Vec<f64> {
        self.tie_degrees.iter().map(|&d| d as f64).collect()
    }

    /// `|C(G)|`: the total number of connected tie pairs.
    pub fn n_connected_pairs(&self) -> u64 {
        self.n_connected_pairs
    }

    /// Sampled `t(u, v)` entries for an undirected universe tie: pairs of
    /// universe indices `((u, w), (v, w))`. Empty for other kinds.
    #[inline]
    pub fn triad_samples(&self, idx: usize) -> &[(u32, u32)] {
        &self.triad_samples[idx]
    }

    /// Samples a connected tie `e'` of universe tie `e` uniformly, or `None`
    /// if `deg_tie(e) = 0`.
    #[inline]
    pub fn sample_connected(&self, e: usize, rng: &mut Pcg32) -> Option<usize> {
        if self.tie_degrees[e] == 0 {
            return None;
        }
        let t = &self.ties[e];
        let outs = self.out_ties(t.dst);
        // Exactly one out-tie of `dst` is the back-tie to `src`; rejection
        // sampling terminates in ≤2 expected draws.
        loop {
            let cand = outs[rng.gen_range(outs.len())] as usize;
            if self.ties[cand].dst != t.src {
                return Some(cand);
            }
        }
    }

    /// Iterator over `(index, tie)` for labeled ties (directed + mirrors).
    pub fn labeled_ties(&self) -> impl Iterator<Item = (usize, &UniverseTie)> + '_ {
        self.ties.iter().enumerate().filter(|(_, t)| t.label.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_graph::NetworkBuilder;

    fn small_mixed() -> MixedSocialNetwork {
        // 0→1 directed, 1↔2 bidirectional, 0–2 undirected, 2→3 directed.
        let mut b = NetworkBuilder::new(4);
        b.add_directed(NodeId(0), NodeId(1)).unwrap();
        b.add_bidirectional(NodeId(1), NodeId(2)).unwrap();
        b.add_undirected(NodeId(0), NodeId(2)).unwrap();
        b.add_directed(NodeId(2), NodeId(3)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn universe_size_includes_mirrors() {
        let g = small_mixed();
        let mut rng = Pcg32::seed_from_u64(1);
        let u = TieUniverse::build(&g, 5, &mut rng);
        // Ordered instances: 2 directed + 2 bidi + 2 undir = 6; +2 mirrors.
        assert_eq!(u.len(), 8);
        assert!(!u.is_empty());
        assert_eq!(u.n_nodes(), 4);
    }

    #[test]
    fn labels_follow_the_paper() {
        let g = small_mixed();
        let mut rng = Pcg32::seed_from_u64(2);
        let u = TieUniverse::build(&g, 5, &mut rng);
        let d01 = u.find(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(u.tie(d01).label, Some(1.0));
        assert_eq!(u.tie(d01).kind, UniverseKind::Directed);
        let m10 = u.find(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(u.tie(m10).label, Some(0.0));
        assert_eq!(u.tie(m10).kind, UniverseKind::Mirror);
        let b12 = u.find(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(u.tie(b12).label, None);
        assert_eq!(u.labeled_ties().count(), 4);
    }

    #[test]
    fn pseudo_degree_matches_eq14() {
        let g = small_mixed();
        let mut rng = Pcg32::seed_from_u64(3);
        let u = TieUniverse::build(&g, 5, &mut rng);
        // deg(0) = |{1, 2}| = 2; deg(2) = |{0, 1, 3}| = 3. The (0, 2) tie
        // points toward the higher-degree node, so its pseudo-label is
        // deg(2) / (deg(0) + deg(2)) = 3/5 (pattern-consistent Eq. 14).
        let u02 = u.find(NodeId(0), NodeId(2)).unwrap();
        let yd = u.tie(u02).pseudo_degree.unwrap();
        assert!((yd - 3.0 / 5.0).abs() < 1e-6);
        let u20 = u.find(NodeId(2), NodeId(0)).unwrap();
        let yd2 = u.tie(u20).pseudo_degree.unwrap();
        assert!((yd2 - 2.0 / 5.0).abs() < 1e-6);
        assert!((yd + yd2 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn every_tie_has_reverse_and_degree() {
        let g = small_mixed();
        let mut rng = Pcg32::seed_from_u64(4);
        let u = TieUniverse::build(&g, 5, &mut rng);
        let mut total = 0u64;
        for i in 0..u.len() {
            let t = u.tie(i);
            assert!(u.find(t.dst, t.src).is_some(), "reverse of ({}, {})", t.src, t.dst);
            // deg_tie = outdeg(dst) − 1.
            assert_eq!(u.tie_degree(i) as usize, u.out_ties(t.dst).len() - 1);
            total += u.tie_degree(i) as u64;
        }
        assert_eq!(total, u.n_connected_pairs());
    }

    #[test]
    fn sample_connected_respects_definition() {
        let g = small_mixed();
        let mut rng = Pcg32::seed_from_u64(5);
        let u = TieUniverse::build(&g, 5, &mut rng);
        for i in 0..u.len() {
            let t = *u.tie(i);
            if u.tie_degree(i) == 0 {
                assert_eq!(u.sample_connected(i, &mut rng), None);
                continue;
            }
            for _ in 0..20 {
                let c = u.sample_connected(i, &mut rng).unwrap();
                let ct = u.tie(c);
                assert_eq!(ct.src, t.dst, "connected tie must start at head");
                assert_ne!(ct.dst, t.src, "connected tie must not double back");
            }
        }
    }

    #[test]
    fn triad_samples_reference_correct_ties() {
        // 0–1 undirected with common neighbors 2 and 3.
        let mut b = NetworkBuilder::new(4);
        b.add_undirected(NodeId(0), NodeId(1)).unwrap();
        b.add_directed(NodeId(2), NodeId(0)).unwrap();
        b.add_directed(NodeId(2), NodeId(1)).unwrap();
        b.add_directed(NodeId(0), NodeId(3)).unwrap();
        b.add_directed(NodeId(3), NodeId(1)).unwrap();
        let g = b.build().unwrap();
        let mut rng = Pcg32::seed_from_u64(6);
        let u = TieUniverse::build(&g, 10, &mut rng);
        let e = u.find(NodeId(0), NodeId(1)).unwrap();
        let samples = u.triad_samples(e);
        assert_eq!(samples.len(), 2, "two common neighbors");
        for &(uw, vw) in samples {
            let tuw = u.tie(uw as usize);
            let tvw = u.tie(vw as usize);
            assert_eq!(tuw.src, NodeId(0));
            assert_eq!(tvw.src, NodeId(1));
            assert_eq!(tuw.dst, tvw.dst, "same common neighbor");
        }
        // Non-undirected ties carry no samples.
        let d = u.find(NodeId(2), NodeId(0)).unwrap();
        assert!(u.triad_samples(d).is_empty());
    }

    #[test]
    fn build_is_bit_identical_across_thread_counts() {
        let g = small_mixed();
        let build = |threads: usize| {
            let mut rng = Pcg32::seed_from_u64(99);
            TieUniverse::build_with_threads(&g, 5, &mut rng, Threads::new(threads).unwrap())
        };
        let serial = build(1);
        for threads in [2, 8] {
            let par = build(threads);
            assert_eq!(serial.tie_degrees, par.tie_degrees);
            assert_eq!(serial.triad_samples, par.triad_samples, "threads={threads}");
            assert_eq!(serial.n_connected_pairs, par.n_connected_pairs);
        }
        // The default entry point is the same chunked computation.
        let mut rng = Pcg32::seed_from_u64(99);
        let default_build = TieUniverse::build(&g, 5, &mut rng);
        assert_eq!(serial.triad_samples, default_build.triad_samples);
    }

    #[test]
    fn gamma_caps_triad_samples() {
        let mut b = NetworkBuilder::new(8);
        b.add_undirected(NodeId(0), NodeId(1)).unwrap();
        for w in 2..8u32 {
            b.add_directed(NodeId(w), NodeId(0)).unwrap();
            b.add_directed(NodeId(w), NodeId(1)).unwrap();
        }
        let g = b.build().unwrap();
        let mut rng = Pcg32::seed_from_u64(7);
        let u = TieUniverse::build(&g, 3, &mut rng);
        let e = u.find(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(u.triad_samples(e).len(), 3);
    }
}
