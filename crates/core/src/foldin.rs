//! Fold-in inference: scoring ordered pairs that were **not** in the
//! training network.
//!
//! The paper's model only defines `d(e)` for embedded ties. For a new pair
//! `(u, v)` (e.g. a candidate link), we exploit the structure of the
//! connected-tie objective: at convergence the embedding of a tie `(x, v)`
//! aligns with the connection vectors of the out-ties of its head `v`, so
//! all ties sharing the head `v` cluster together. A new tie `(u, v)` would
//! land in that cluster; its fold-in embedding is therefore the mean of the
//! trained embeddings of the existing in-ties of `v`, excluding the pair
//! `(u, v)` itself — which can already be embedded as the universe mirror
//! of a trained `(v, u)` tie — so the estimate never leaks the very edge
//! being scored. (The reverse pair `(v, u)` points into `u`, not `v`, so it
//! is never part of `v`'s head cluster in the first place.)
//!
//! This is an extension of this implementation (documented in DESIGN.md §6),
//! not part of the paper.

use dd_graph::NodeId;

use crate::model::DirectionalityModel;

/// Owned per-head index of embedded ties, decoupled from any model borrow.
///
/// [`FoldInScorer`] wraps this with a borrowed model for one-shot use; the
/// streaming layer owns one alongside an `Arc`'d model so a long-lived
/// engine can answer fold-in queries without a self-referential borrow.
/// All methods take the model explicitly — callers must pass the same model
/// the index was built from (row numbers are meaningless across models).
pub struct FoldInIndex {
    /// For each node id, the embedding rows of ties pointing *into* it.
    in_rows: Vec<Vec<u32>>,
}

impl FoldInIndex {
    /// Builds the per-head in-tie index (`O(|ties|)`), under a
    /// `foldin.build` telemetry span when the model's config carries an
    /// observer.
    pub fn build(model: &DirectionalityModel) -> Self {
        let (index, _) = model.config().observer.time("foldin.build", || {
            let max_node =
                model.ties().iter().map(|&(u, v)| u.max(v)).max().map_or(0, |m| m as usize + 1);
            let mut in_rows: Vec<Vec<u32>> = vec![Vec::new(); max_node];
            for (row, &(_, dst)) in model.ties().iter().enumerate() {
                in_rows[dst as usize].push(row as u32);
            }
            FoldInIndex { in_rows }
        });
        index
    }

    /// Buffer-reusing fold-in: writes the mean embedding of `v`'s in-ties
    /// (excluding the pair `(u, v)` itself) into `acc` and returns `true`,
    /// or returns `false` when `v` has no usable in-ties (leaving `acc`
    /// cleared). Reusing `acc` across calls makes this the allocation-free
    /// hot path for streaming and serving; the arithmetic is identical to
    /// the allocating [`FoldInScorer::foldin_embedding`], bit for bit.
    pub fn foldin_embedding_into(
        &self,
        model: &DirectionalityModel,
        u: NodeId,
        v: NodeId,
        acc: &mut Vec<f32>,
    ) -> bool {
        acc.clear();
        let Some(rows) = self.in_rows.get(v.index()) else { return false };
        acc.resize(model.dim(), 0.0);
        let mut count = 0usize;
        for &row in rows {
            let (src, _) = model.ties()[row as usize];
            if src == u.0 {
                continue;
            }
            for (a, &b) in acc.iter_mut().zip(model.embedding_row(row as usize)) {
                *a += b;
            }
            count += 1;
        }
        if count == 0 {
            acc.clear();
            return false;
        }
        for a in acc.iter_mut() {
            *a /= count as f32;
        }
        true
    }

    /// Directionality value for any ordered pair: exact when embedded,
    /// fold-in otherwise, `0.5` when nothing is known about the head.
    /// `scratch` is the reusable fold-in buffer (see
    /// [`foldin_embedding_into`](Self::foldin_embedding_into)).
    ///
    /// Fold-in scoring uses the embedding half of the feature vector only;
    /// under the `context_features` extension the context half is
    /// approximated by zeros (its warm-start value).
    pub fn score_into(
        &self,
        model: &DirectionalityModel,
        u: NodeId,
        v: NodeId,
        scratch: &mut Vec<f32>,
    ) -> f64 {
        if let Some(d) = model.score(u, v) {
            return d;
        }
        self.foldin_score_into(model, u, v, scratch).unwrap_or(0.5)
    }

    /// Pure fold-in score (never consults the exact path): `None` when the
    /// head has no usable in-ties. The streaming engine uses this directly
    /// for dynamic ties, which are untrained by construction.
    pub fn foldin_score_into(
        &self,
        model: &DirectionalityModel,
        u: NodeId,
        v: NodeId,
        scratch: &mut Vec<f32>,
    ) -> Option<f64> {
        if !self.foldin_embedding_into(model, u, v, scratch) {
            return None;
        }
        if model.config().context_features {
            scratch.resize(2 * model.config().dim, 0.0);
        }
        Some(model.head().score(scratch))
    }
}

/// Fold-in scorer over a trained [`DirectionalityModel`].
///
/// Builds a per-head index of embedded ties once, then scores arbitrary
/// ordered pairs: known pairs exactly, unknown pairs via head-cluster
/// fold-in, and pairs with an unseen head neutrally (`0.5`).
pub struct FoldInScorer<'m> {
    model: &'m DirectionalityModel,
    index: FoldInIndex,
}

impl<'m> FoldInScorer<'m> {
    /// Builds the fold-in index (`O(|ties|)`), under a `foldin.build`
    /// telemetry span when the model's config carries an observer.
    pub fn new(model: &'m DirectionalityModel) -> Self {
        FoldInScorer { model, index: FoldInIndex::build(model) }
    }

    /// The fold-in embedding for an *unseen* pair `(u, v)`: the mean
    /// embedding of `v`'s existing in-ties, excluding the pair `(u, v)`
    /// itself. Returns `None` when `v` has no usable in-ties.
    ///
    /// Allocates a fresh buffer per call; hot paths should hold a scratch
    /// `Vec<f32>` and use [`foldin_embedding_into`](Self::foldin_embedding_into).
    pub fn foldin_embedding(&self, u: NodeId, v: NodeId) -> Option<Vec<f32>> {
        let mut acc = Vec::new();
        if self.index.foldin_embedding_into(self.model, u, v, &mut acc) {
            Some(acc)
        } else {
            None
        }
    }

    /// Buffer-reusing variant of [`foldin_embedding`](Self::foldin_embedding);
    /// see [`FoldInIndex::foldin_embedding_into`].
    pub fn foldin_embedding_into(&self, u: NodeId, v: NodeId, acc: &mut Vec<f32>) -> bool {
        self.index.foldin_embedding_into(self.model, u, v, acc)
    }

    /// Directionality value for any ordered pair: exact when embedded,
    /// fold-in otherwise, `0.5` when nothing is known about the head.
    ///
    /// Routed through the buffer-reusing path ([`score_into`](Self::score_into))
    /// so both spellings share one code path and stay bit-identical.
    pub fn score(&self, u: NodeId, v: NodeId) -> f64 {
        let mut scratch = Vec::new();
        self.score_into(u, v, &mut scratch)
    }

    /// Buffer-reusing variant of [`score`](Self::score) for hot loops;
    /// see [`FoldInIndex::score_into`].
    pub fn score_into(&self, u: NodeId, v: NodeId, scratch: &mut Vec<f32>) -> f64 {
        self.index.score_into(self.model, u, v, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeepDirect, DeepDirectConfig};
    use dd_graph::generators::{social_network, SocialNetConfig};
    use dd_graph::sampling::induced_subnetwork;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_model() -> (dd_graph::MixedSocialNetwork, DirectionalityModel) {
        let mut rng = StdRng::seed_from_u64(31);
        let g = social_network(&SocialNetConfig { n_nodes: 150, ..Default::default() }, &mut rng)
            .network;
        let cfg = DeepDirectConfig {
            dim: 16,
            max_iterations: Some(400_000),
            seed: 31,
            ..Default::default()
        };
        let model = DeepDirect::new(cfg).fit(&g);
        (g, model)
    }

    #[test]
    fn known_pairs_score_exactly() {
        let (g, model) = trained_model();
        let scorer = FoldInScorer::new(&model);
        for (_, t) in g.iter_ties().take(30) {
            assert_eq!(scorer.score(t.src, t.dst), model.score(t.src, t.dst).unwrap());
        }
    }

    #[test]
    fn unseen_pairs_get_foldin_scores() {
        let (g, model) = trained_model();
        let scorer = FoldInScorer::new(&model);
        // Find a non-adjacent pair where the head has in-ties.
        let mut tested = 0;
        'outer: for u in g.nodes() {
            for v in g.nodes() {
                if u == v || g.has_tie_between(u, v) {
                    continue;
                }
                if g.in_ties(v).is_empty() {
                    continue;
                }
                assert!(model.score(u, v).is_none(), "pair should be unseen");
                let d = scorer.score(u, v);
                assert!((0.0..=1.0).contains(&d));
                assert!(scorer.foldin_embedding(u, v).is_some());
                tested += 1;
                if tested > 10 {
                    break 'outer;
                }
            }
        }
        assert!(tested > 0, "found unseen pairs to test");
    }

    #[test]
    fn buffer_reuse_is_bit_identical_to_allocating_path() {
        let (g, model) = trained_model();
        let scorer = FoldInScorer::new(&model);
        // One scratch reused across every query — stale contents from the
        // previous iteration must not leak into the next result.
        let mut scratch = Vec::new();
        let mut checked_emb = 0usize;
        let nodes: Vec<NodeId> = g.nodes().collect();
        for (i, &u) in nodes.iter().enumerate().take(40) {
            let v = nodes[(i * 7 + 3) % nodes.len()];
            if u == v {
                continue;
            }
            assert_eq!(
                scorer.score(u, v).to_bits(),
                scorer.score_into(u, v, &mut scratch).to_bits()
            );
            let alloc = scorer.foldin_embedding(u, v);
            let mut reused = vec![f32::NAN; 3]; // poisoned: _into must clear it
            let ok = scorer.foldin_embedding_into(u, v, &mut reused);
            match alloc {
                Some(a) => {
                    assert!(ok);
                    assert_eq!(a.len(), reused.len());
                    for (x, y) in a.iter().zip(&reused) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                    checked_emb += 1;
                }
                None => {
                    assert!(!ok);
                    assert!(reused.is_empty(), "failed fold-in must clear the buffer");
                }
            }
        }
        assert!(checked_emb > 10, "exercised real fold-in embeddings");
    }

    #[test]
    fn foldin_excludes_the_queried_pair_itself_not_the_reverse() {
        // Pinning the satellite-3 decision: for a query (u, v) the mean over
        // v's in-ties drops exactly the row (u, v) — which exists whenever
        // the reverse (v, u) was a trained directed tie, because the
        // universe embeds its mirror — and keeps everything else. A reverse
        // row (v, u) points into u, never into v, so there is nothing else
        // to exclude.
        let (g, model) = trained_model();
        let scorer = FoldInScorer::new(&model);
        let dim = model.dim();
        let (_, v, u) = g
            .directed_ties()
            .find(|&(_, s, d)| {
                // A trained tie (v, u): its mirror (u, v) is embedded, and v
                // must keep at least one other in-tie so the mean exists.
                model.tie_row(d, s).is_some()
                    && model.ties().iter().filter(|&&(src, dst)| dst == s.0 && src != d.0).count()
                        >= 1
            })
            .expect("a directed tie with an embedded mirror");
        assert!(model.tie_row(u, v).is_some(), "mirror (u,v) must be embedded");

        // Manual mean over in-rows of v excluding src == u, mirroring the
        // documented contract, bit for bit.
        let mut mean = vec![0.0f32; dim];
        let mut count = 0usize;
        for (row, &(src, dst)) in model.ties().iter().enumerate() {
            if dst != v.0 || src == u.0 {
                continue;
            }
            for (a, &b) in mean.iter_mut().zip(model.embedding_row(row)) {
                *a += b;
            }
            count += 1;
        }
        assert!(count >= 1);
        for a in mean.iter_mut() {
            *a /= count as f32;
        }
        let got = scorer.foldin_embedding(u, v).expect("fold-in mean exists");
        for (x, y) in got.iter().zip(&mean) {
            assert_eq!(x.to_bits(), y.to_bits());
        }

        // And the excluded row really was in v's head cluster: including it
        // changes the mean, so the exclusion is observable.
        let mut mean_all = vec![0.0f32; dim];
        let mut count_all = 0usize;
        for (row, &(_, dst)) in model.ties().iter().enumerate() {
            if dst != v.0 {
                continue;
            }
            for (a, &b) in mean_all.iter_mut().zip(model.embedding_row(row)) {
                *a += b;
            }
            count_all += 1;
        }
        for a in mean_all.iter_mut() {
            *a /= count_all as f32;
        }
        assert_eq!(count_all, count + 1, "exactly the (u,v) row is excluded");
        assert!(
            got.iter().zip(&mean_all).any(|(x, y)| x.to_bits() != y.to_bits()),
            "excluding (u,v) must be observable in the mean"
        );
    }

    #[test]
    fn foldin_tracks_head_receiverness() {
        // The fold-in score toward a high-status head should exceed the
        // fold-in score toward a low-status head, on average.
        let mut rng = StdRng::seed_from_u64(32);
        let gen = social_network(&SocialNetConfig { n_nodes: 200, ..Default::default() }, &mut rng);
        let g = gen.network;
        let cfg = DeepDirectConfig {
            dim: 16,
            max_iterations: Some(600_000),
            seed: 32,
            ..Default::default()
        };
        let model = DeepDirect::new(cfg).fit(&g);
        let scorer = FoldInScorer::new(&model);
        // Rank nodes by status; compare fold-in scores into top vs bottom.
        let mut by_status: Vec<NodeId> = g.nodes().collect();
        by_status
            .sort_by(|a, b| gen.status[a.index()].partial_cmp(&gen.status[b.index()]).unwrap());
        let low = by_status[5];
        let high = by_status[by_status.len() - 6];
        let probe = by_status[by_status.len() / 2];
        let d_high = scorer.score(probe, high);
        let d_low = scorer.score(probe, low);
        assert!(d_high > d_low, "fold-in should prefer high-status heads: {d_high} vs {d_low}");
    }

    #[test]
    fn unseen_head_is_neutral() {
        let (g, model) = trained_model();
        // Model trained on the full network; restrict to a sub-universe by
        // querying a node id outside the network.
        let _ = g;
        let scorer = FoldInScorer::new(&model);
        assert_eq!(scorer.score(NodeId(0), NodeId(9_999)), 0.5);
    }

    #[test]
    fn foldin_generalizes_to_heldout_ties() {
        // Train on an induced subgraph missing some ties; fold-in must
        // orient held-out directed ties better than chance.
        let mut rng = StdRng::seed_from_u64(33);
        let g = social_network(&SocialNetConfig { n_nodes: 200, ..Default::default() }, &mut rng)
            .network;
        // Train on the sub-network of the first 170 nodes.
        let nodes: Vec<NodeId> = g.nodes().take(170).collect();
        let (sub, _) = induced_subnetwork(&g, &nodes);
        let cfg = DeepDirectConfig {
            dim: 16,
            max_iterations: Some(600_000),
            seed: 33,
            ..Default::default()
        };
        let model = DeepDirect::new(cfg).fit(&sub);
        let scorer = FoldInScorer::new(&model);
        // Held-out: directed ties of g inside the first 170 nodes that the
        // subgraph shares are "known"; instead evaluate on random unseen
        // pairs oriented by status via the full graph's directed ties that
        // are NOT in the sub-network — there are none by construction, so
        // evaluate orientation of known ties through pure fold-in instead.
        let mut ok = 0usize;
        let mut total = 0usize;
        for (_, u, v) in sub.directed_ties().take(300) {
            let fe_fwd = scorer.foldin_embedding(u, v);
            let fe_rev = scorer.foldin_embedding(v, u);
            if let (Some(f), Some(r)) = (fe_fwd, fe_rev) {
                let df = model.head().score(&f);
                let dr = model.head().score(&r);
                total += 1;
                if df > dr {
                    ok += 1;
                }
            }
        }
        assert!(total > 100);
        let acc = ok as f64 / total as f64;
        assert!(acc > 0.6, "fold-in orientation accuracy {acc}");
    }
}
