//! Fold-in inference: scoring ordered pairs that were **not** in the
//! training network.
//!
//! The paper's model only defines `d(e)` for embedded ties. For a new pair
//! `(u, v)` (e.g. a candidate link), we exploit the structure of the
//! connected-tie objective: at convergence the embedding of a tie `(x, v)`
//! aligns with the connection vectors of the out-ties of its head `v`, so
//! all ties sharing the head `v` cluster together. A new tie `(u, v)` would
//! land in that cluster; its fold-in embedding is therefore the mean of the
//! trained embeddings of the existing in-ties of `v` (excluding the reverse
//! pair `(v, u)`-mirrors if present).
//!
//! This is an extension of this implementation (documented in DESIGN.md §6),
//! not part of the paper.

use dd_graph::NodeId;

use crate::model::DirectionalityModel;

/// Fold-in scorer over a trained [`DirectionalityModel`].
///
/// Builds a per-head index of embedded ties once, then scores arbitrary
/// ordered pairs: known pairs exactly, unknown pairs via head-cluster
/// fold-in, and pairs with an unseen head neutrally (`0.5`).
pub struct FoldInScorer<'m> {
    model: &'m DirectionalityModel,
    /// For each node id, the embedding rows of ties pointing *into* it.
    in_rows: Vec<Vec<u32>>,
}

impl<'m> FoldInScorer<'m> {
    /// Builds the fold-in index (`O(|ties|)`), under a `foldin.build`
    /// telemetry span when the model's config carries an observer.
    pub fn new(model: &'m DirectionalityModel) -> Self {
        let (scorer, _) = model.config().observer.time("foldin.build", || {
            let max_node =
                model.ties().iter().map(|&(u, v)| u.max(v)).max().map_or(0, |m| m as usize + 1);
            let mut in_rows: Vec<Vec<u32>> = vec![Vec::new(); max_node];
            for (row, &(_, dst)) in model.ties().iter().enumerate() {
                in_rows[dst as usize].push(row as u32);
            }
            FoldInScorer { model, in_rows }
        });
        scorer
    }

    /// The fold-in embedding for an *unseen* pair `(u, v)`: the mean
    /// embedding of `v`'s existing in-ties, excluding any tie from `u`.
    /// Returns `None` when `v` has no usable in-ties.
    pub fn foldin_embedding(&self, u: NodeId, v: NodeId) -> Option<Vec<f32>> {
        let rows = self.in_rows.get(v.index())?;
        let mut acc = vec![0.0f32; self.model.dim()];
        let mut count = 0usize;
        for &row in rows {
            let (src, _) = self.model.ties()[row as usize];
            if src == u.0 {
                continue;
            }
            for (a, &b) in acc.iter_mut().zip(self.model.embedding_row(row as usize)) {
                *a += b;
            }
            count += 1;
        }
        if count == 0 {
            return None;
        }
        for a in &mut acc {
            *a /= count as f32;
        }
        Some(acc)
    }

    /// Directionality value for any ordered pair: exact when embedded,
    /// fold-in otherwise, `0.5` when nothing is known about the head.
    ///
    /// Fold-in scoring uses the embedding half of the feature vector only;
    /// under the `context_features` extension the context half is
    /// approximated by zeros (its warm-start value).
    pub fn score(&self, u: NodeId, v: NodeId) -> f64 {
        if let Some(d) = self.model.score(u, v) {
            return d;
        }
        match self.foldin_embedding(u, v) {
            None => 0.5,
            Some(mut x) => {
                if self.model.config().context_features {
                    x.resize(2 * self.model.config().dim, 0.0);
                }
                self.model.head().score(&x)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeepDirect, DeepDirectConfig};
    use dd_graph::generators::{social_network, SocialNetConfig};
    use dd_graph::sampling::induced_subnetwork;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_model() -> (dd_graph::MixedSocialNetwork, DirectionalityModel) {
        let mut rng = StdRng::seed_from_u64(31);
        let g = social_network(&SocialNetConfig { n_nodes: 150, ..Default::default() }, &mut rng)
            .network;
        let cfg = DeepDirectConfig {
            dim: 16,
            max_iterations: Some(400_000),
            seed: 31,
            ..Default::default()
        };
        let model = DeepDirect::new(cfg).fit(&g);
        (g, model)
    }

    #[test]
    fn known_pairs_score_exactly() {
        let (g, model) = trained_model();
        let scorer = FoldInScorer::new(&model);
        for (_, t) in g.iter_ties().take(30) {
            assert_eq!(scorer.score(t.src, t.dst), model.score(t.src, t.dst).unwrap());
        }
    }

    #[test]
    fn unseen_pairs_get_foldin_scores() {
        let (g, model) = trained_model();
        let scorer = FoldInScorer::new(&model);
        // Find a non-adjacent pair where the head has in-ties.
        let mut tested = 0;
        'outer: for u in g.nodes() {
            for v in g.nodes() {
                if u == v || g.has_tie_between(u, v) {
                    continue;
                }
                if g.in_ties(v).is_empty() {
                    continue;
                }
                assert!(model.score(u, v).is_none(), "pair should be unseen");
                let d = scorer.score(u, v);
                assert!((0.0..=1.0).contains(&d));
                assert!(scorer.foldin_embedding(u, v).is_some());
                tested += 1;
                if tested > 10 {
                    break 'outer;
                }
            }
        }
        assert!(tested > 0, "found unseen pairs to test");
    }

    #[test]
    fn foldin_tracks_head_receiverness() {
        // The fold-in score toward a high-status head should exceed the
        // fold-in score toward a low-status head, on average.
        let mut rng = StdRng::seed_from_u64(32);
        let gen = social_network(&SocialNetConfig { n_nodes: 200, ..Default::default() }, &mut rng);
        let g = gen.network;
        let cfg = DeepDirectConfig {
            dim: 16,
            max_iterations: Some(600_000),
            seed: 32,
            ..Default::default()
        };
        let model = DeepDirect::new(cfg).fit(&g);
        let scorer = FoldInScorer::new(&model);
        // Rank nodes by status; compare fold-in scores into top vs bottom.
        let mut by_status: Vec<NodeId> = g.nodes().collect();
        by_status
            .sort_by(|a, b| gen.status[a.index()].partial_cmp(&gen.status[b.index()]).unwrap());
        let low = by_status[5];
        let high = by_status[by_status.len() - 6];
        let probe = by_status[by_status.len() / 2];
        let d_high = scorer.score(probe, high);
        let d_low = scorer.score(probe, low);
        assert!(d_high > d_low, "fold-in should prefer high-status heads: {d_high} vs {d_low}");
    }

    #[test]
    fn unseen_head_is_neutral() {
        let (g, model) = trained_model();
        // Model trained on the full network; restrict to a sub-universe by
        // querying a node id outside the network.
        let _ = g;
        let scorer = FoldInScorer::new(&model);
        assert_eq!(scorer.score(NodeId(0), NodeId(9_999)), 0.5);
    }

    #[test]
    fn foldin_generalizes_to_heldout_ties() {
        // Train on an induced subgraph missing some ties; fold-in must
        // orient held-out directed ties better than chance.
        let mut rng = StdRng::seed_from_u64(33);
        let g = social_network(&SocialNetConfig { n_nodes: 200, ..Default::default() }, &mut rng)
            .network;
        // Train on the sub-network of the first 170 nodes.
        let nodes: Vec<NodeId> = g.nodes().take(170).collect();
        let (sub, _) = induced_subnetwork(&g, &nodes);
        let cfg = DeepDirectConfig {
            dim: 16,
            max_iterations: Some(600_000),
            seed: 33,
            ..Default::default()
        };
        let model = DeepDirect::new(cfg).fit(&sub);
        let scorer = FoldInScorer::new(&model);
        // Held-out: directed ties of g inside the first 170 nodes that the
        // subgraph shares are "known"; instead evaluate on random unseen
        // pairs oriented by status via the full graph's directed ties that
        // are NOT in the sub-network — there are none by construction, so
        // evaluate orientation of known ties through pure fold-in instead.
        let mut ok = 0usize;
        let mut total = 0usize;
        for (_, u, v) in sub.directed_ties().take(300) {
            let fe_fwd = scorer.foldin_embedding(u, v);
            let fe_rev = scorer.foldin_embedding(v, u);
            if let (Some(f), Some(r)) = (fe_fwd, fe_rev) {
                let df = model.head().score(&f);
                let dr = model.head().score(&r);
                total += 1;
                if df > dr {
                    ok += 1;
                }
            }
        }
        assert!(total > 100);
        let acc = ok as f64 / total as f64;
        assert!(acc > 0.6, "fold-in orientation accuracy {acc}");
    }
}
