//! Public model API: fit a [`DeepDirect`] on a mixed social network, get a
//! [`DirectionalityModel`] that scores ordered ties.

use std::io::{Read, Write};
use std::path::Path;

use dd_graph::hash::FxHashMap;
use dd_graph::{MixedSocialNetwork, NodeId};
use dd_linalg::bytes::{fnv1a64, AlignedBuf, FNV64_SEED};
use dd_linalg::kernels::{dot8_f64, dot_scalar_f64};
use dd_linalg::matrix::DenseMatrix;
use dd_linalg::rng::Pcg32;
use dd_linalg::sigmoid64;
use serde::{Deserialize, Serialize};

use crate::binfmt;
use crate::config::DeepDirectConfig;
use crate::dstep::{self, DirectionalityHead};
use crate::estep;
use crate::store::TieStore;
use crate::universe::TieUniverse;

/// The DeepDirect learner (Sec. 4). Construct with a config, call
/// [`DeepDirect::fit`].
///
/// ```
/// use dd_graph::{NetworkBuilder, NodeId};
/// use deepdirect::{DeepDirect, DeepDirectConfig};
///
/// let mut b = NetworkBuilder::new(4);
/// b.add_directed(NodeId(0), NodeId(1)).unwrap();
/// b.add_directed(NodeId(1), NodeId(2)).unwrap();
/// b.add_directed(NodeId(2), NodeId(3)).unwrap();
/// b.add_undirected(NodeId(3), NodeId(0)).unwrap();
/// let g = b.build().unwrap();
///
/// let mut cfg = DeepDirectConfig::fast();
/// cfg.dim = 8;
/// cfg.max_iterations = Some(2_000);
/// let model = DeepDirect::new(cfg).fit(&g);
/// let d = model.score(NodeId(3), NodeId(0)).unwrap();
/// assert!((0.0..=1.0).contains(&d));
/// ```
#[derive(Debug, Clone)]
pub struct DeepDirect {
    cfg: DeepDirectConfig,
}

impl DeepDirect {
    /// Creates a learner with the given configuration.
    pub fn new(cfg: DeepDirectConfig) -> Self {
        cfg.validate().expect("invalid DeepDirect configuration");
        DeepDirect { cfg }
    }

    /// Creates a learner with the paper's default hyper-parameters.
    pub fn with_defaults() -> Self {
        Self::new(DeepDirectConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &DeepDirectConfig {
        &self.cfg
    }

    /// Runs preprocessing, the E-Step, and the D-Step (Algorithm 1).
    ///
    /// The whole fit runs under a `model.fit` root span whose trace ID is
    /// derived from [`DeepDirectConfig::seed`], with each phase
    /// (`universe.build`, `estep.train`, `dstep.train`) a child span and the
    /// universe build's pool chunks grandchildren — so a re-run of the same
    /// config reproduces the same trace tree. All reporting goes through
    /// [`DeepDirectConfig::observer`]; the E-Step additionally reports
    /// periodic progress samples and the D-Step its epoch losses. Tracing is
    /// observational only: results are bit-identical with the observer on or
    /// off (DESIGN.md §7.12).
    pub fn fit(&self, g: &MixedSocialNetwork) -> DirectionalityModel {
        let obs = &self.cfg.observer;
        let mut rng = Pcg32::seed_from_u64(self.cfg.seed ^ 0x9e37);
        let threads = dd_runtime::Threads::new(self.cfg.threads)
            .expect("DeepDirectConfig.threads is zero; call validate() first");
        let root = obs.trace_root("model.fit", self.cfg.seed);
        let universe = {
            let span = root.child_named("universe.build");
            let u = TieUniverse::build_traced(g, self.cfg.gamma, &mut rng, threads, Some(&span));
            span.finish();
            u
        };
        let estep_out = {
            let _span = root.child_named("estep.train");
            estep::train(&universe, &self.cfg)
        };
        let head = {
            let _span = root.child_named("dstep.train");
            dstep::train(&universe, &estep_out.params, &self.cfg)
        };
        let contexts =
            if self.cfg.context_features { Some(estep_out.params.n.clone()) } else { None };
        let mut pair_index = FxHashMap::default();
        let mut ties = Vec::with_capacity(universe.len());
        for (i, t) in universe.ties().iter().enumerate() {
            pair_index.insert((t.src.0, t.dst.0), i as u32);
            ties.push((t.src.0, t.dst.0));
        }
        root.finish();
        obs.flush();
        let m = &estep_out.params.m;
        let store = TieStore::from_parts(
            m.cols(),
            m.rows(),
            m.as_slice(),
            contexts.as_ref().map(|c| c.as_slice()),
        )
        .expect("fit produced consistent embedding shapes");
        let fingerprint = fingerprint_of(&store, &ties, &head);
        DirectionalityModel {
            cfg: self.cfg.clone(),
            ties,
            pair_index,
            store,
            fingerprint,
            head,
            estep_iterations: estep_out.params.iterations,
            estep_seconds: estep_out.elapsed_seconds,
            estep_iters_per_sec: estep_out.iters_per_sec,
        }
    }
}

/// Version stamped into every saved model file; bump on breaking changes to
/// the on-disk snapshot layout. [`DirectionalityModel::load`] refuses files
/// with a different version instead of failing with a field-level serde
/// error deep inside the payload.
pub const MODEL_SCHEMA_VERSION: u32 = 1;

/// A learned directionality function `d : E → [0, 1]` with the tie
/// embeddings that produced it.
///
/// The model is frozen after `fit`/`load`: every accessor, including
/// [`Self::score`], takes `&self` and touches no interior mutability, so an
/// `Arc<DirectionalityModel>` can be shared across any number of threads
/// (e.g. the `dd-serve` worker pool) and concurrent scores are bit-identical
/// to single-threaded ones.
#[derive(Debug, Clone)]
pub struct DirectionalityModel {
    cfg: DeepDirectConfig,
    /// Ordered universe ties as raw id pairs, row-aligned with the store.
    ties: Vec<(u32, u32)>,
    pair_index: FxHashMap<(u32, u32), u32>,
    /// Structure-of-arrays embedding storage: the embedding block (and the
    /// optional connection block under the `context_features` extension) as
    /// contiguous cache-aligned rows the scoring kernels stream directly.
    store: TieStore,
    /// Content fingerprint over shapes, ties, blocks and head parameters —
    /// stable across save/load round-trips of both formats within one
    /// build/architecture. Namespaces the serve-side score cache.
    fingerprint: u64,
    head: DirectionalityHead,
    estep_iterations: u64,
    estep_seconds: f64,
    estep_iters_per_sec: f64,
}

/// FNV-1a fingerprint over everything that affects scores. Per-process
/// identity (native-endian block bytes), not a portable digest — the binary
/// format's CRC-32 sections cover on-disk integrity.
fn fingerprint_of(store: &TieStore, ties: &[(u32, u32)], head: &DirectionalityHead) -> u64 {
    let mut h = fnv1a64(&(store.dim() as u64).to_le_bytes(), FNV64_SEED);
    h = fnv1a64(&(store.rows() as u64).to_le_bytes(), h);
    for &(u, v) in ties {
        h = fnv1a64(&u.to_le_bytes(), h);
        h = fnv1a64(&v.to_le_bytes(), h);
    }
    h = fnv1a64(store.embedding_bytes(), h);
    if let Some(c) = store.context_bytes() {
        h = fnv1a64(c, h);
    }
    match serde_json::to_string(head) {
        Ok(js) => fnv1a64(js.as_bytes(), h),
        Err(_) => h,
    }
}

/// Serializable snapshot of a [`DirectionalityModel`].
#[derive(Serialize, Deserialize)]
struct ModelSnapshot {
    schema: u32,
    cfg: DeepDirectConfig,
    ties: Vec<(u32, u32)>,
    embeddings: DenseMatrix,
    contexts: Option<DenseMatrix>,
    head: DirectionalityHead,
    estep_iterations: u64,
    #[serde(skip)]
    estep_seconds: f64,
    #[serde(skip)]
    estep_iters_per_sec: f64,
}

impl DirectionalityModel {
    /// The configuration the model was trained with.
    pub fn config(&self) -> &DeepDirectConfig {
        &self.cfg
    }

    /// Number of embedded ordered ties.
    pub fn n_ties(&self) -> usize {
        self.ties.len()
    }

    /// E-Step iterations that were run.
    pub fn estep_iterations(&self) -> u64 {
        self.estep_iterations
    }

    /// Wall-clock seconds the E-Step ran. Training-run diagnostics only:
    /// reported as `0.0` on a model loaded from disk.
    pub fn estep_seconds(&self) -> f64 {
        self.estep_seconds
    }

    /// Effective E-Step throughput (iterations per wall-clock second across
    /// all workers). `0.0` on a model loaded from disk.
    pub fn estep_iters_per_sec(&self) -> f64 {
        self.estep_iters_per_sec
    }

    /// One-line human-readable training summary, available even when no
    /// observer was attached.
    pub fn fit_summary(&self) -> String {
        format!(
            "fit: {} ties, dim {} | estep {} iters in {:.2}s ({:.0} it/s, {} thread{}) | head: {}",
            self.n_ties(),
            self.cfg.dim,
            self.estep_iterations,
            self.estep_seconds,
            self.estep_iters_per_sec,
            self.cfg.threads,
            if self.cfg.threads == 1 { "" } else { "s" },
            match &self.head {
                DirectionalityHead::Logistic(_) => "logistic",
                DirectionalityHead::Mlp(_) => "mlp",
            },
        )
    }

    /// Row index for the ordered tie `(u, v)`, if embedded.
    pub fn tie_row(&self, u: NodeId, v: NodeId) -> Option<usize> {
        self.pair_index.get(&(u.0, v.0)).map(|&i| i as usize)
    }

    /// Embedding vector `m_{uv}`, if the ordered tie was embedded.
    pub fn embedding(&self, u: NodeId, v: NodeId) -> Option<&[f32]> {
        self.tie_row(u, v).map(|i| self.store.embedding_row(i))
    }

    /// Embedding dimension `d`.
    pub fn dim(&self) -> usize {
        self.store.dim()
    }

    /// Embedding row `m_e` by universe row index (rows align with
    /// [`Self::ties`]).
    pub fn embedding_row(&self, row: usize) -> &[f32] {
        self.store.embedding_row(row)
    }

    /// Content fingerprint over shapes, ties, embedding blocks and head
    /// parameters. Two models with the same fingerprint score identically;
    /// `dd-serve` uses it to namespace its score cache and report identity
    /// in `/healthz`. Not portable across architectures or builds.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The embedded ordered ties, row-aligned with the embedding matrix.
    pub fn ties(&self) -> &[(u32, u32)] {
        &self.ties
    }

    /// The trained directionality head (used by fold-in inference).
    pub fn head(&self) -> &DirectionalityHead {
        &self.head
    }

    /// Directionality value `d(u, v)`; `None` when `(u, v)` was not part of
    /// the trained universe.
    pub fn score(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.tie_row(u, v).map(|i| self.score_row(i))
    }

    /// Directionality value by embedding row.
    ///
    /// The logistic hot path is allocation-free: the weight vector is split
    /// at `dim` and each half dotted against its cache-aligned block with
    /// [`dd_linalg::kernels::dot8_f64`]. Accumulation order is fixed
    /// (kernel lanes, then `emb + ctx + b` left to right), so scores are
    /// bit-identical regardless of load path or thread count.
    pub fn score_row(&self, row: usize) -> f64 {
        let emb = self.store.embedding_row(row);
        match &self.head {
            DirectionalityHead::Logistic(lr) => {
                let (w_emb, w_ctx) = lr.w.split_at(self.store.dim().min(lr.w.len()));
                let mut z = dot8_f64(w_emb, emb);
                if let Some(ctx) = self.store.context_row(row) {
                    z += dot8_f64(w_ctx, ctx);
                }
                sigmoid64(z + f64::from(lr.b))
            }
            DirectionalityHead::Mlp(_) => match self.store.context_row(row) {
                None => self.head.score(emb),
                Some(ctx) => {
                    let mut x = emb.to_vec();
                    x.extend_from_slice(ctx);
                    self.head.score(&x)
                }
            },
        }
    }

    /// Reference scoring path: the same math as [`Self::score_row`] through
    /// the strict left-to-right scalar kernel instead of the unrolled one.
    /// Exists so `dd bench --model-io` can report what the 8-wide kernel
    /// buys; serving always goes through [`Self::score_row`]. The two may
    /// differ in the last ulp (different f64 accumulation order).
    pub fn score_row_scalar(&self, row: usize) -> f64 {
        let emb = self.store.embedding_row(row);
        match &self.head {
            DirectionalityHead::Logistic(lr) => {
                let (w_emb, w_ctx) = lr.w.split_at(self.store.dim().min(lr.w.len()));
                let mut z = dot_scalar_f64(w_emb, emb);
                if let Some(ctx) = self.store.context_row(row) {
                    z += dot_scalar_f64(w_ctx, ctx);
                }
                sigmoid64(z + f64::from(lr.b))
            }
            DirectionalityHead::Mlp(_) => self.score_row(row),
        }
    }

    /// Serializes the model as JSON (the portable interchange format).
    pub fn save<W: Write>(&self, w: W) -> Result<(), String> {
        let dim = self.store.dim();
        let rows = self.store.rows();
        let snap = ModelSnapshot {
            schema: MODEL_SCHEMA_VERSION,
            cfg: self.cfg.clone(),
            ties: self.ties.clone(),
            embeddings: DenseMatrix::from_fn(rows, dim, |r, c| self.store.embedding_row(r)[c]),
            contexts: self.store.has_contexts().then(|| {
                DenseMatrix::from_fn(rows, dim, |r, c| {
                    self.store.context_row(r).map_or(0.0, |x| x[c])
                })
            }),
            head: self.head.clone(),
            estep_iterations: self.estep_iterations,
            estep_seconds: 0.0,
            estep_iters_per_sec: 0.0,
        };
        serde_json::to_writer(w, &snap).map_err(|e| e.to_string())
    }

    /// Saves the model to a file (JSON).
    pub fn save_to_path<P: AsRef<Path>>(&self, path: P) -> Result<(), String> {
        let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
        self.save(std::io::BufWriter::new(f))
    }

    /// Serializes the model in the binary container format (DESIGN.md
    /// §7.13): little-endian, checksummed sections, 64-byte-aligned blocks.
    pub fn save_binary<W: Write>(&self, w: W) -> Result<(), String> {
        binfmt::encode(w, &self.cfg, &self.head, self.estep_iterations, &self.ties, &self.store)
    }

    /// Saves the model to a file in the binary container format.
    pub fn save_binary_to_path<P: AsRef<Path>>(&self, path: P) -> Result<(), String> {
        let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
        self.save_binary(std::io::BufWriter::new(f))
    }

    /// Builds a model from a validated binary buffer (zero-copy adoption of
    /// the embedding blocks).
    fn load_binary_buf(buf: AlignedBuf) -> Result<Self, String> {
        let decoded = binfmt::decode(buf).map_err(|e| format!("invalid binary model: {e}"))?;
        let mut pair_index = FxHashMap::default();
        pair_index.reserve(decoded.ties.len());
        for (i, &(u, v)) in decoded.ties.iter().enumerate() {
            pair_index.insert((u, v), i as u32);
        }
        let fingerprint = fingerprint_of(&decoded.store, &decoded.ties, &decoded.head);
        Ok(DirectionalityModel {
            cfg: decoded.cfg,
            ties: decoded.ties,
            pair_index,
            store: decoded.store,
            fingerprint,
            head: decoded.head,
            estep_iterations: decoded.estep_iterations,
            estep_seconds: 0.0,
            estep_iters_per_sec: 0.0,
        })
    }

    /// Deserializes a model saved with [`Self::save`] or
    /// [`Self::save_binary`] — the format is sniffed from the magic bytes.
    ///
    /// JSON failures carry a schema-version message (rather than a
    /// field-level serde error) when the file is not a model file at all,
    /// predates schema versioning, or was written by a newer build; binary
    /// failures name the offending section.
    pub fn load<R: Read>(mut r: R) -> Result<Self, String> {
        let mut raw = Vec::new();
        r.read_to_end(&mut raw).map_err(|e| format!("reading model: {e}"))?;
        if binfmt::is_binary(&raw) {
            return Self::load_binary_buf(AlignedBuf::from_slice(&raw));
        }
        let text = String::from_utf8(raw)
            .map_err(|e| format!("reading model: stream did not contain valid UTF-8 ({e})"))?;
        let value: serde_json::Value = serde_json::from_str(&text)
            .map_err(|e| format!("not a DeepDirect model file (invalid JSON: {e})"))?;
        let schema = match value.get("schema") {
            None => {
                return Err(format!(
                    "not a DeepDirect model file: missing `schema` version field \
                     (expected schema {MODEL_SCHEMA_VERSION}; files saved by pre-release \
                     builds must be re-trained)"
                ))
            }
            Some(v) => v.as_u64().ok_or_else(|| {
                format!("model `schema` field must be an integer, found {}", v.kind())
            })?,
        };
        if schema != u64::from(MODEL_SCHEMA_VERSION) {
            let hint = if schema > u64::from(MODEL_SCHEMA_VERSION) {
                "the file was saved by a newer build — upgrade dd"
            } else {
                "re-train to produce a current model file"
            };
            return Err(format!(
                "unsupported model schema version {schema} (this build reads schema \
                 {MODEL_SCHEMA_VERSION}; {hint})"
            ));
        }
        let snap: ModelSnapshot = serde_json::from_value(&value)
            .map_err(|e| format!("corrupt model file (schema {schema}): {e}"))?;
        if snap.embeddings.rows() != snap.ties.len() {
            return Err(format!(
                "corrupt model file (schema {schema}): {} embedding rows for {} ties",
                snap.embeddings.rows(),
                snap.ties.len()
            ));
        }
        let store = TieStore::from_parts(
            snap.embeddings.cols(),
            snap.embeddings.rows(),
            snap.embeddings.as_slice(),
            snap.contexts.as_ref().map(|c| c.as_slice()),
        )
        .map_err(|e| format!("corrupt model file (schema {schema}): {e}"))?;
        let mut pair_index = FxHashMap::default();
        pair_index.reserve(snap.ties.len());
        for (i, &(u, v)) in snap.ties.iter().enumerate() {
            pair_index.insert((u, v), i as u32);
        }
        let fingerprint = fingerprint_of(&store, &snap.ties, &snap.head);
        Ok(DirectionalityModel {
            cfg: snap.cfg,
            ties: snap.ties,
            pair_index,
            store,
            fingerprint,
            head: snap.head,
            estep_iterations: snap.estep_iterations,
            estep_seconds: snap.estep_seconds,
            estep_iters_per_sec: snap.estep_iters_per_sec,
        })
    }

    /// Loads a model from a file, sniffing JSON vs binary from the magic
    /// bytes. The binary path is read-once: the file lands directly in a
    /// 64-byte-aligned buffer whose embedding blocks the model borrows
    /// zero-copy. Errors name the offending path.
    pub fn load_from_path<P: AsRef<Path>>(path: P) -> Result<Self, String> {
        let path = path.as_ref();
        let wrap = |e: String| format!("loading model '{}': {e}", path.display());
        let mut f = std::fs::File::open(path)
            .map_err(|e| format!("opening model '{}': {e}", path.display()))?;
        let len =
            f.metadata().map_err(|e| format!("opening model '{}': {e}", path.display()))?.len();
        let len = usize::try_from(len).map_err(|e| wrap(format!("file too large: {e}")))?;
        let buf = AlignedBuf::read_exact_from(&mut f, len)
            .map_err(|e| wrap(format!("reading model: {e}")))?;
        if binfmt::is_binary(buf.as_bytes()) {
            return Self::load_binary_buf(buf).map_err(wrap);
        }
        Self::load(buf.as_bytes()).map_err(wrap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_graph::generators::{social_network, SocialNetConfig};
    use dd_graph::sampling::hide_directions;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fit_small(seed: u64) -> (MixedSocialNetwork, DirectionalityModel) {
        let gen_cfg = SocialNetConfig { n_nodes: 100, ..Default::default() };
        let mut grng = StdRng::seed_from_u64(seed);
        let net = social_network(&gen_cfg, &mut grng).network;
        let hidden = hide_directions(&net, 0.5, &mut grng).network;
        let cfg = DeepDirectConfig {
            dim: 16,
            max_iterations: Some(30_000),
            ..DeepDirectConfig::default()
        };
        let model = DeepDirect::new(cfg).fit(&hidden);
        (hidden, model)
    }

    #[test]
    fn scores_cover_all_ordered_ties() {
        let (g, model) = fit_small(1);
        for (_, t) in g.iter_ties() {
            let d = model.score(t.src, t.dst).expect("every ordered tie is embedded");
            assert!((0.0..=1.0).contains(&d));
        }
        // Mirrors of directed ties are scored too.
        let (_, u, v) = g.directed_ties().next().unwrap();
        assert!(model.score(v, u).is_some());
        // Absent pairs are None.
        assert_eq!(model.score(NodeId(0), NodeId(0)), None);
    }

    #[test]
    fn embeddings_have_configured_dim() {
        let (g, model) = fit_small(2);
        let (_, u, v) = g.directed_ties().next().unwrap();
        assert_eq!(model.embedding(u, v).unwrap().len(), 16);
        assert_eq!(model.dim(), 16);
        assert_eq!(model.n_ties(), model.ties().len());
        assert!(model.estep_iterations() > 0);
    }

    #[test]
    fn save_load_roundtrip_preserves_scores() {
        let (g, model) = fit_small(3);
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let loaded = DirectionalityModel::load(buf.as_slice()).unwrap();
        for (_, t) in g.iter_ties().take(50) {
            let a = model.score(t.src, t.dst).unwrap();
            let b = loaded.score(t.src, t.dst).unwrap();
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(loaded.config().dim, model.config().dim);
    }

    #[test]
    fn binary_roundtrip_is_bit_identical_and_sniffed() {
        let (g, model) = fit_small(6);
        let mut bin = Vec::new();
        model.save_binary(&mut bin).unwrap();
        assert!(crate::binfmt::is_binary(&bin));
        // `load` sniffs the format from the magic bytes.
        let loaded = DirectionalityModel::load(bin.as_slice()).unwrap();
        assert_eq!(loaded.n_ties(), model.n_ties());
        assert_eq!(loaded.dim(), model.dim());
        assert_eq!(loaded.fingerprint(), model.fingerprint());
        for (_, t) in g.iter_ties() {
            let a = model.score(t.src, t.dst).unwrap();
            let b = loaded.score(t.src, t.dst).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "binary-loaded score diverged");
        }
        // Binary is the compact format.
        let mut json = Vec::new();
        model.save(&mut json).unwrap();
        assert!(bin.len() < json.len(), "binary {} >= json {}", bin.len(), json.len());
    }

    #[test]
    fn binary_roundtrip_preserves_context_blocks() {
        let gen_cfg = SocialNetConfig { n_nodes: 60, ..Default::default() };
        let mut grng = StdRng::seed_from_u64(13);
        let net = social_network(&gen_cfg, &mut grng).network;
        let cfg = DeepDirectConfig {
            dim: 12,
            max_iterations: Some(10_000),
            context_features: true,
            ..DeepDirectConfig::default()
        };
        let model = DeepDirect::new(cfg).fit(&net);
        let mut bin = Vec::new();
        model.save_binary(&mut bin).unwrap();
        let loaded = DirectionalityModel::load(bin.as_slice()).unwrap();
        assert!(loaded.config().context_features);
        for row in 0..model.n_ties() {
            assert_eq!(
                model.score_row(row).to_bits(),
                loaded.score_row(row).to_bits(),
                "context-model score diverged at row {row}"
            );
        }
    }

    #[test]
    fn binary_load_rejects_each_corruption_class_with_named_sections() {
        use crate::binfmt::{BinaryFormatError as E, ENTRY_LEN, HEADER_LEN};
        let (_, model) = fit_small(7);
        let mut valid = Vec::new();
        model.save_binary(&mut valid).unwrap();

        let decode = |bytes: &[u8]| {
            DirectionalityModel::load(bytes).map_err(|e| {
                assert!(e.contains("invalid binary model"), "{e}");
                e
            })
        };
        // Truncated header.
        let err = decode(&valid[..10]).unwrap_err();
        assert!(err.contains("truncated header"), "{err}");
        // Wrong magic falls through to the JSON sniff and fails as JSON.
        let mut bad = valid.clone();
        bad[0] = b'X';
        let err = DirectionalityModel::load(&bad[..]).unwrap_err();
        assert!(err.contains("not a DeepDirect model file") || err.contains("UTF-8"), "{err}");
        // Future container version.
        let mut bad = valid.clone();
        bad[8..12].copy_from_slice(&9u32.to_le_bytes());
        let err = decode(&bad).unwrap_err();
        assert!(err.contains("container format version 9"), "{err}");
        // Schema mismatch.
        let mut bad = valid.clone();
        bad[12..16].copy_from_slice(&77u32.to_le_bytes());
        let err = decode(&bad).unwrap_err();
        assert!(err.contains("model schema version 77"), "{err}");
        // Corrupted section table (checksum named).
        let mut bad = valid.clone();
        bad[HEADER_LEN + 8] ^= 0x01;
        let err = decode(&bad).unwrap_err();
        assert!(err.contains("section table checksum"), "{err}");
        // Misaligned block: patch the embeddings offset *and* re-checksum the
        // table so only the alignment check can fire.
        let mut bad = valid.clone();
        let n_sections = u32::from_le_bytes(bad[16..20].try_into().unwrap()) as usize;
        let table = HEADER_LEN..HEADER_LEN + n_sections * ENTRY_LEN;
        let emb_entry = (0..n_sections)
            .map(|i| HEADER_LEN + i * ENTRY_LEN)
            .find(|&e| u32::from_le_bytes(bad[e..e + 4].try_into().unwrap()) == 4)
            .unwrap();
        let off = u64::from_le_bytes(bad[emb_entry + 8..emb_entry + 16].try_into().unwrap());
        let len = u64::from_le_bytes(bad[emb_entry + 16..emb_entry + 24].try_into().unwrap());
        bad[emb_entry + 8..emb_entry + 16].copy_from_slice(&(off + 4).to_le_bytes());
        bad[emb_entry + 16..emb_entry + 24].copy_from_slice(&(len - 4).to_le_bytes());
        let crc = dd_linalg::bytes::crc32(&bad[table.clone()]);
        bad[20..24].copy_from_slice(&crc.to_le_bytes());
        let err = decode(&bad).unwrap_err();
        assert!(err.contains("'embeddings'") && err.contains("aligned"), "{err}");
        // NaN payload with a fixed-up section checksum: only the finiteness
        // scan can reject it, naming the section and element.
        let mut bad = valid.clone();
        let off =
            u64::from_le_bytes(bad[emb_entry + 8..emb_entry + 16].try_into().unwrap()) as usize;
        let len =
            u64::from_le_bytes(bad[emb_entry + 16..emb_entry + 24].try_into().unwrap()) as usize;
        bad[off..off + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        let crc = dd_linalg::bytes::crc32(&bad[off..off + len]);
        bad[emb_entry + 4..emb_entry + 8].copy_from_slice(&crc.to_le_bytes());
        let crc = dd_linalg::bytes::crc32(&bad[table.clone()]);
        bad[20..24].copy_from_slice(&crc.to_le_bytes());
        let err = decode(&bad).unwrap_err();
        assert!(err.contains("'embeddings'") && err.contains("non-finite"), "{err}");
        // Flipped payload byte without checksum fix-up.
        let mut bad = valid.clone();
        bad[off + 1] ^= 0xFF;
        let err = decode(&bad).unwrap_err();
        assert!(err.contains("'embeddings'") && err.contains("checksum"), "{err}");
        // Trailing garbage.
        let mut bad = valid.clone();
        bad.extend_from_slice(b"junk");
        let err = decode(&bad).unwrap_err();
        assert!(err.contains("trailing bytes"), "{err}");
        // The typed error enum is reachable directly for programmatic use.
        assert_eq!(E::MissingSection("meta").to_string(), "missing required section 'meta'");
        // And the pristine file still loads.
        assert!(decode(&valid).is_ok());
    }

    #[test]
    fn load_rejects_corrupt_and_mismatched_schema_files() {
        // Invalid JSON.
        let err = DirectionalityModel::load("{not json".as_bytes()).unwrap_err();
        assert!(err.contains("invalid JSON"), "{err}");
        // Valid JSON, but no schema field (pre-release or foreign file).
        let err = DirectionalityModel::load(r#"{"cfg":{}}"#.as_bytes()).unwrap_err();
        assert!(err.contains("missing `schema`"), "{err}");
        // Non-integer schema.
        let err = DirectionalityModel::load(r#"{"schema":"v1"}"#.as_bytes()).unwrap_err();
        assert!(err.contains("must be an integer"), "{err}");
        // Future-versioned file.
        let err = DirectionalityModel::load(r#"{"schema":99}"#.as_bytes()).unwrap_err();
        assert!(err.contains("unsupported model schema version 99"), "{err}");
        assert!(err.contains("upgrade"), "{err}");
        // Right schema, corrupt payload: the error names the schema, not a
        // bare serde message.
        let err = DirectionalityModel::load(r#"{"schema":1,"ties":42}"#.as_bytes()).unwrap_err();
        assert!(err.contains("corrupt model file (schema 1)"), "{err}");
    }

    #[test]
    fn load_from_path_errors_name_the_path() {
        let err = DirectionalityModel::load_from_path("/nonexistent/model.json").unwrap_err();
        assert!(err.contains("/nonexistent/model.json"), "{err}");
        let dir = std::env::temp_dir().join("dd_model_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk.json");
        std::fs::write(&path, "{\"schema\":99}").unwrap();
        let err = DirectionalityModel::load_from_path(&path).unwrap_err();
        assert!(err.contains("junk.json"), "{err}");
        assert!(err.contains("unsupported model schema version"), "{err}");
    }

    #[test]
    fn saved_models_carry_the_current_schema_version() {
        let (_, model) = fit_small(5);
        let mut buf = Vec::new();
        model.save(&mut buf).unwrap();
        let value: serde_json::Value = serde_json::from_str(std::str::from_utf8(&buf).unwrap())
            .expect("saved model is valid JSON");
        assert_eq!(
            value.get("schema").and_then(|v| v.as_u64()),
            Some(u64::from(MODEL_SCHEMA_VERSION))
        );
    }

    #[test]
    fn fit_emits_phase_spans_and_summary() {
        #[derive(Default)]
        struct Capture(std::sync::Mutex<Vec<dd_telemetry::Event>>);
        impl dd_telemetry::TrainObserver for Capture {
            fn on_event(&self, e: &dd_telemetry::Event) {
                self.0.lock().unwrap().push(e.clone());
            }
        }
        let gen_cfg = SocialNetConfig { n_nodes: 80, ..Default::default() };
        let mut grng = StdRng::seed_from_u64(11);
        let net = social_network(&gen_cfg, &mut grng).network;
        let cap = std::sync::Arc::new(Capture::default());
        let cfg = DeepDirectConfig {
            dim: 8,
            max_iterations: Some(5_000),
            observer: dd_telemetry::ObserverHandle::new(cap.clone()),
            ..DeepDirectConfig::default()
        };
        let model = DeepDirect::new(cfg).fit(&net);
        let events = cap.0.lock().unwrap();
        let spans: Vec<&str> = events
            .iter()
            .filter(|e| e.kind == dd_telemetry::kind::SPAN)
            .filter_map(|e| e.name.as_deref())
            .collect();
        for expected in ["universe.build", "estep.train", "dstep.train"] {
            assert!(spans.contains(&expected), "missing span {expected}: {spans:?}");
        }
        assert!(events.iter().any(|e| e.kind == dd_telemetry::kind::ESTEP_PROGRESS));
        assert!(events.iter().any(|e| e.kind == dd_telemetry::kind::DSTEP_EPOCH));
        // The whole fit shares one trace: the root span's ID is derived from
        // the config seed, and every phase span parents to it.
        let root = events
            .iter()
            .find(|e| e.name.as_deref() == Some("model.fit"))
            .expect("fit emits a root span");
        let expect_trace =
            dd_telemetry::trace::hex16(dd_telemetry::trace::derive_trace_id(0xdeed, "model.fit"));
        assert_eq!(root.trace_id.as_deref(), Some(expect_trace.as_str()), "default seed 0xdeed");
        for phase in ["universe.build", "estep.train", "dstep.train"] {
            let e = events.iter().find(|e| e.name.as_deref() == Some(phase)).unwrap();
            assert_eq!(e.trace_id, root.trace_id, "{phase} shares the fit trace");
            assert_eq!(e.parent_span_id, root.span_id, "{phase} parents to model.fit");
        }
        // The universe build's pool call appears as a grandchild.
        let pool_call = events
            .iter()
            .find(|e| e.name.as_deref() == Some("pool.universe.build"))
            .expect("universe pool call is traced");
        let ub = events.iter().find(|e| e.name.as_deref() == Some("universe.build")).unwrap();
        assert_eq!(pool_call.trace_id, root.trace_id);
        assert_eq!(pool_call.parent_span_id, ub.span_id);
        let summary = model.fit_summary();
        assert!(summary.contains("estep 5000 iters"), "{summary}");
        assert!(model.estep_seconds() > 0.0);
        assert!(model.estep_iters_per_sec() > 0.0);
    }

    #[test]
    fn tracing_and_profiling_do_not_perturb_training() {
        // The acceptance bar for DESIGN.md §7.12: a fully-traced, profiled
        // fit must be bit-identical to a silent one. Tracing only *observes*
        // (span IDs from logical inputs, allocation counting that never
        // changes allocation behaviour), so every embedding bit must match.
        let gen_cfg = SocialNetConfig { n_nodes: 90, ..Default::default() };
        let mut grng = StdRng::seed_from_u64(7);
        let net = social_network(&gen_cfg, &mut grng).network;
        // Serial threads: the Hogwild E-Step is the one documented
        // determinism exemption (§7.9), so run-to-run comparison needs one
        // worker. Tracing still exercises the universe pool's span path.
        let base = DeepDirectConfig {
            dim: 8,
            max_iterations: Some(4_000),
            threads: 1,
            ..DeepDirectConfig::default()
        };

        let silent = DeepDirect::new(base.clone()).fit(&net);

        dd_telemetry::alloc::enable_profiling();
        let sink = dd_telemetry::JsonlSink::from_writer(Box::new(std::io::sink()));
        let traced_cfg = DeepDirectConfig {
            observer: dd_telemetry::ObserverHandle::new(std::sync::Arc::new(sink)),
            ..base
        };
        let traced = DeepDirect::new(traced_cfg).fit(&net);

        assert_eq!(silent.n_ties(), traced.n_ties());
        assert_eq!(silent.dim(), traced.dim());
        for r in 0..silent.n_ties() {
            for (x, y) in silent.embedding_row(r).iter().zip(traced.embedding_row(r)) {
                assert_eq!(x.to_bits(), y.to_bits(), "embedding row {r} diverged under tracing");
            }
        }
        assert_eq!(silent.fingerprint(), traced.fingerprint(), "fingerprints diverged");
        for (i, _) in silent.ties().iter().enumerate() {
            assert_eq!(
                silent.score_row(i).to_bits(),
                traced.score_row(i).to_bits(),
                "score for tie row {i} diverged under tracing"
            );
        }
    }

    #[test]
    fn directed_ties_score_above_mirrors_on_average() {
        let (g, model) = fit_small(4);
        let mut wins = 0usize;
        let mut total = 0usize;
        for (_, u, v) in g.directed_ties() {
            let fwd = model.score(u, v).unwrap();
            let rev = model.score(v, u).unwrap();
            if fwd > rev {
                wins += 1;
            }
            total += 1;
        }
        let frac = wins as f64 / total as f64;
        assert!(frac > 0.8, "training ties correctly oriented: {frac}");
    }
}
