//! Fuzz-style hostile-input sweep for the binary model loader — the mirror
//! of the corrupt-JSON suite in `dd-serve`'s http_chaos tests.
//!
//! 2000 seeded corruptions of a valid `.ddm` go through the loader. The
//! contract: every buffer that still differs from the pristine file must
//! produce a typed `Err` naming the offending section or structural region
//! — and nothing may panic. (A few strategies can no-op — e.g. a byte flip
//! writing the byte already there — those must load and score identically.)

use dd_graph::generators::{social_network, SocialNetConfig};
use dd_linalg::Pcg32;
use dd_testkit::gen::corrupt_binary;
use deepdirect::{DeepDirect, DeepDirectConfig, DirectionalityModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every region/section name the loader's errors are allowed to cite. An
/// error naming none of these is a vague error and fails the sweep.
const KNOWN_REGIONS: &[&str] = &[
    "header",
    "section table",
    "section count",
    "magic",
    "format version",
    "schema version",
    "'meta'",
    "'tie.src'",
    "'tie.dst'",
    "'embeddings'",
    "'contexts'",
    "unknown section",
    "trailing bytes",
    "reading model",
    // Wrong-magic buffers fall through to the JSON sniff, whose errors are
    // typed too.
    "not a DeepDirect model file",
    "UTF-8",
];

fn valid_container() -> (DirectionalityModel, Vec<u8>) {
    let gen_cfg = SocialNetConfig { n_nodes: 70, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(501);
    let net = social_network(&gen_cfg, &mut rng).network;
    let cfg =
        DeepDirectConfig { dim: 12, max_iterations: Some(8_000), ..DeepDirectConfig::default() };
    let model = DeepDirect::new(cfg).fit(&net);
    let mut bytes = Vec::new();
    model.save_binary(&mut bytes).unwrap();
    (model, bytes)
}

#[test]
fn loader_survives_2000_corrupt_binaries_with_typed_errors() {
    let (model, valid) = valid_container();
    assert!(DirectionalityModel::load(valid.as_slice()).is_ok(), "pristine file must load");

    let mut n_err = 0usize;
    let mut n_noop = 0usize;
    for seed in 0..2000u64 {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mangled = corrupt_binary(&mut rng, &valid);
        if mangled == valid {
            n_noop += 1;
            continue;
        }
        match DirectionalityModel::load(mangled.as_slice()) {
            Err(e) => {
                n_err += 1;
                assert!(
                    KNOWN_REGIONS.iter().any(|r| e.contains(r)),
                    "seed {seed}: error does not name a known region/section: {e}"
                );
            }
            Ok(loaded) => {
                // Corruption survived validation — only acceptable if it was
                // semantically invisible (e.g. a flip restoring a byte):
                // every score must be bit-identical to the original.
                assert_eq!(loaded.n_ties(), model.n_ties(), "seed {seed}: ties changed");
                for row in 0..model.n_ties() {
                    assert_eq!(
                        loaded.score_row(row).to_bits(),
                        model.score_row(row).to_bits(),
                        "seed {seed}: corrupted-but-accepted file scores differently at row {row}"
                    );
                }
            }
        }
    }
    // The sweep is only meaningful if corruption overwhelmingly produced
    // typed rejections.
    assert!(n_err >= 1800, "expected ≥1800 rejections out of 2000, got {n_err} ({n_noop} no-ops)");
}

#[test]
fn loader_rejects_short_and_empty_buffers() {
    for bytes in [&b""[..], &b"\x89"[..], &b"\x89DDMDL\r\n"[..]] {
        let err = DirectionalityModel::load(bytes).unwrap_err();
        assert!(
            KNOWN_REGIONS.iter().any(|r| err.contains(r)),
            "short buffer error is vague: {err}"
        );
    }
}
