//! Property-based tests for DeepDirect's preprocessing invariants (the tie
//! universe of Algorithm 1, lines 1–9).

use dd_graph::{NetworkBuilder, NodeId};
use dd_linalg::rng::Pcg32;
use deepdirect::{TieUniverse, UniverseKind};
use proptest::prelude::*;

fn arb_network() -> impl Strategy<Value = dd_graph::MixedSocialNetwork> {
    (4usize..25, proptest::collection::vec((0u8..3, 0u32..25, 0u32..25), 1..80)).prop_map(
        |(n, proposals)| {
            let mut b = NetworkBuilder::new(n);
            let _ = b.add_directed(NodeId(0), NodeId(1));
            for (kind, u, v) in proposals {
                let (u, v) = (NodeId(u % n as u32), NodeId(v % n as u32));
                let _ = match kind {
                    0 => b.add_directed(u, v),
                    1 => b.add_bidirectional(u, v),
                    _ => b.add_undirected(u, v),
                };
            }
            b.build().expect("seeded directed tie")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn universe_counts_add_up(g in arb_network(), gamma in 1usize..12, seed in 0u64..100) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let u = TieUniverse::build(&g, gamma, &mut rng);
        let c = g.counts();
        prop_assert_eq!(u.len(), g.n_ordered_ties() + c.directed);
        let mirrors = u.ties().iter().filter(|t| t.kind == UniverseKind::Mirror).count();
        prop_assert_eq!(mirrors, c.directed);
        prop_assert_eq!(u.labeled_ties().count(), 2 * c.directed);
    }

    #[test]
    fn every_universe_tie_has_its_reverse(g in arb_network(), seed in 0u64..100) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let u = TieUniverse::build(&g, 5, &mut rng);
        for i in 0..u.len() {
            let t = u.tie(i);
            let rev = u.find(t.dst, t.src);
            prop_assert!(rev.is_some(), "missing reverse of ({}, {})", t.src, t.dst);
            // deg_tie = outdeg(head) − 1 (the back tie is excluded).
            prop_assert_eq!(u.tie_degree(i) as usize, u.out_ties(t.dst).len() - 1);
        }
    }

    #[test]
    fn labels_are_antisymmetric(g in arb_network(), seed in 0u64..100) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let u = TieUniverse::build(&g, 5, &mut rng);
        for (i, t) in u.labeled_ties() {
            let rev = u.find(t.dst, t.src).unwrap();
            let y = t.label.unwrap();
            let y_rev = u.tie(rev).label.unwrap();
            prop_assert!((y + y_rev - 1.0).abs() < 1e-6, "labels of {i} and reverse");
        }
    }

    #[test]
    fn pseudo_labels_are_complementary_probabilities(g in arb_network(), seed in 0u64..100) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let u = TieUniverse::build(&g, 5, &mut rng);
        for t in u.ties() {
            match t.kind {
                UniverseKind::Undirected => {
                    let yd = t.pseudo_degree.expect("undirected ties carry y^d");
                    prop_assert!((0.0..=1.0).contains(&yd));
                    let rev = u.find(t.dst, t.src).unwrap();
                    let yd_rev = u.tie(rev).pseudo_degree.unwrap();
                    prop_assert!((yd + yd_rev - 1.0).abs() < 1e-5);
                }
                _ => prop_assert!(t.pseudo_degree.is_none()),
            }
        }
    }

    #[test]
    fn triad_samples_respect_gamma_and_structure(g in arb_network(), gamma in 1usize..6, seed in 0u64..100) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let u = TieUniverse::build(&g, gamma, &mut rng);
        for i in 0..u.len() {
            let t = u.tie(i);
            let samples = u.triad_samples(i);
            if t.kind != UniverseKind::Undirected {
                prop_assert!(samples.is_empty());
                continue;
            }
            prop_assert!(samples.len() <= gamma);
            for &(uw, vw) in samples {
                let tuw = u.tie(uw as usize);
                let tvw = u.tie(vw as usize);
                prop_assert_eq!(tuw.src, t.src);
                prop_assert_eq!(tvw.src, t.dst);
                prop_assert_eq!(tuw.dst, tvw.dst, "shared common neighbor");
            }
        }
    }

    #[test]
    fn connected_sampling_never_doubles_back(g in arb_network(), seed in 0u64..100) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let u = TieUniverse::build(&g, 5, &mut rng);
        for i in 0..u.len() {
            if u.tie_degree(i) == 0 {
                prop_assert_eq!(u.sample_connected(i, &mut rng), None);
                continue;
            }
            let t = *u.tie(i);
            for _ in 0..5 {
                let c = u.sample_connected(i, &mut rng).unwrap();
                let ct = u.tie(c);
                prop_assert_eq!(ct.src, t.dst);
                prop_assert_ne!(ct.dst, t.src);
            }
        }
    }
}
