//! Thread-safety audit for the frozen [`DirectionalityModel`]: scoring
//! through an `Arc` from many threads must be bit-identical to scoring
//! single-threaded. This is the contract `dd-serve`'s worker pool relies on.

use std::sync::Arc;

use dd_graph::generators::{social_network, SocialNetConfig};
use dd_graph::sampling::hide_directions;
use deepdirect::{DeepDirect, DeepDirectConfig, DirectionalityModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Compile-time audit: the model (and everything it contains) is shareable
/// across threads without synchronization.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DirectionalityModel>();
    assert_send_sync::<Arc<DirectionalityModel>>();
};

fn fit_model() -> (Vec<(u32, u32)>, DirectionalityModel) {
    let gen_cfg = SocialNetConfig { n_nodes: 120, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(42);
    let net = social_network(&gen_cfg, &mut rng).network;
    let hidden = hide_directions(&net, 0.5, &mut rng).network;
    let cfg =
        DeepDirectConfig { dim: 16, max_iterations: Some(20_000), ..DeepDirectConfig::default() };
    let model = DeepDirect::new(cfg).fit(&hidden);
    let ties = model.ties().to_vec();
    (ties, model)
}

#[test]
fn concurrent_scores_match_single_threaded_bit_for_bit() {
    let (ties, model) = fit_model();
    assert!(ties.len() >= 64, "need a non-trivial universe, got {}", ties.len());

    // Reference pass: single-threaded scores for every embedded tie.
    let expected: Vec<f64> = ties
        .iter()
        .map(|&(u, v)| model.score(dd_graph::NodeId(u), dd_graph::NodeId(v)).unwrap())
        .collect();

    let model = Arc::new(model);
    const N_THREADS: usize = 8;
    const ROUNDS: usize = 4;
    let results: Vec<Vec<f64>> = dd_runtime::scope(|s| {
        let handles: Vec<_> = (0..N_THREADS)
            .map(|t| {
                let model = Arc::clone(&model);
                let ties = &ties;
                s.spawn(move || {
                    let mut out = Vec::with_capacity(ties.len());
                    for _ in 0..ROUNDS {
                        out.clear();
                        // Stagger the iteration order per thread so threads
                        // hit different rows at the same instant.
                        for i in 0..ties.len() {
                            let (u, v) = ties[(i + t * 17) % ties.len()];
                            out.push(
                                model.score(dd_graph::NodeId(u), dd_graph::NodeId(v)).unwrap(),
                            );
                        }
                    }
                    // Un-stagger back to universe order for comparison.
                    let mut ordered = vec![0.0f64; ties.len()];
                    for i in 0..ties.len() {
                        ordered[(i + t * 17) % ties.len()] = out[i];
                    }
                    ordered
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (t, got) in results.iter().enumerate() {
        for (i, (&g, &e)) in got.iter().zip(expected.iter()).enumerate() {
            assert!(
                g.to_bits() == e.to_bits(),
                "thread {t}, tie {i}: concurrent score {g} != single-threaded {e}"
            );
        }
    }
}
