//! Stress tests for the Hogwild-parallel E-Step: under heavy thread
//! contention the racy updates must stay numerically sane and preserve the
//! model's learning behavior.

use dd_graph::generators::{social_network, SocialNetConfig};
use dd_graph::sampling::hide_directions;
use dd_linalg::rng::Pcg32;
use deepdirect::{estep, DeepDirectConfig, TieUniverse};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn universe(seed: u64, nodes: usize) -> TieUniverse {
    let mut rng = StdRng::seed_from_u64(seed);
    let g =
        social_network(&SocialNetConfig { n_nodes: nodes, ..Default::default() }, &mut rng).network;
    let hidden = hide_directions(&g, 0.5, &mut rng).network;
    let mut prng = Pcg32::seed_from_u64(seed);
    TieUniverse::build(&hidden, 10, &mut prng)
}

#[test]
fn many_threads_produce_finite_parameters() {
    let u = universe(1, 300);
    // Deliberately oversubscribe threads relative to cores.
    let cfg = DeepDirectConfig {
        dim: 32,
        threads: 8,
        max_iterations: Some(800_000),
        ..DeepDirectConfig::default()
    };
    let out = estep::train(&u, &cfg);
    for &x in out.params.m.as_slice() {
        assert!(x.is_finite(), "embedding NaN/inf under contention");
    }
    for &x in out.params.n.as_slice() {
        assert!(x.is_finite(), "context NaN/inf under contention");
    }
    assert!(out.params.w.iter().all(|x| x.is_finite()));
    assert!(out.params.b.is_finite());
}

#[test]
fn parallel_quality_matches_sequential_within_tolerance() {
    let u = universe(2, 250);
    let mk = |threads: usize| DeepDirectConfig {
        dim: 32,
        threads,
        max_iterations: Some(700_000),
        ..DeepDirectConfig::default()
    };
    let seq = estep::train(&u, &mk(1));
    let par = estep::train(&u, &mk(4));
    let mut rng = Pcg32::seed_from_u64(5);
    let cfg = mk(1);
    let l_seq = estep::estimate_loss(&u, &seq.params, &seq.pc, &seq.pn, &cfg, 3000, &mut rng);
    let mut rng = Pcg32::seed_from_u64(5);
    let l_par = estep::estimate_loss(&u, &par.params, &par.pc, &par.pn, &cfg, 3000, &mut rng);
    // Hogwild noise should cost little objective quality.
    assert!(l_par < l_seq * 1.25, "parallel loss {l_par} should be close to sequential {l_seq}");
}

#[test]
fn repeated_parallel_runs_do_not_corrupt_state() {
    // Re-running training on the same universe from different seeds should
    // always produce usable models (guards against latent UB surfacing as
    // flaky corruption).
    let u = universe(3, 200);
    for seed in 0..4u64 {
        let cfg = DeepDirectConfig {
            dim: 16,
            threads: 4,
            seed,
            max_iterations: Some(300_000),
            ..DeepDirectConfig::default()
        };
        let out = estep::train(&u, &cfg);
        let norm: f32 = out.params.m.as_slice().iter().map(|x| x * x).sum();
        assert!(norm.is_finite() && norm > 0.0, "degenerate embedding at seed {seed}");
    }
}
