//! Cross-format bit-compatibility acceptance: the same model exported to
//! JSON and to the binary container must produce **bit-identical** scores
//! for every tie — single-threaded and from 8 concurrent threads. This is
//! the contract that lets `dd serve` swap a JSON artifact for a `.ddm`
//! without any score drifting (the model-io CI smoke asserts the same thing
//! end-to-end over HTTP).

use std::sync::Arc;

use dd_graph::generators::{social_network, SocialNetConfig};
use dd_graph::sampling::hide_directions;
use deepdirect::{DeepDirect, DeepDirectConfig, DirectionalityModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fit_model(context_features: bool) -> DirectionalityModel {
    let gen_cfg = SocialNetConfig { n_nodes: 110, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(90);
    let net = social_network(&gen_cfg, &mut rng).network;
    let hidden = hide_directions(&net, 0.5, &mut rng).network;
    let cfg = DeepDirectConfig {
        dim: 20,
        max_iterations: Some(25_000),
        context_features,
        ..DeepDirectConfig::default()
    };
    DeepDirect::new(cfg).fit(&hidden)
}

/// Round-trips `model` through both formats and returns the two loaded
/// copies.
fn export_both(model: &DirectionalityModel) -> (DirectionalityModel, DirectionalityModel) {
    let mut json = Vec::new();
    model.save(&mut json).unwrap();
    let mut bin = Vec::new();
    model.save_binary(&mut bin).unwrap();
    let from_json = DirectionalityModel::load(json.as_slice()).unwrap();
    let from_bin = DirectionalityModel::load(bin.as_slice()).unwrap();
    (from_json, from_bin)
}

#[test]
fn json_and_binary_loads_score_bit_identically() {
    for context_features in [false, true] {
        let model = fit_model(context_features);
        let (from_json, from_bin) = export_both(&model);
        assert_eq!(from_json.n_ties(), from_bin.n_ties());
        assert_eq!(from_json.ties(), from_bin.ties());
        assert_eq!(
            from_json.fingerprint(),
            from_bin.fingerprint(),
            "fingerprints must agree across formats (context={context_features})"
        );
        for row in 0..from_json.n_ties() {
            assert_eq!(
                from_json.score_row(row).to_bits(),
                from_bin.score_row(row).to_bits(),
                "score diverged between JSON and binary at row {row} \
                 (context={context_features})"
            );
        }
    }
}

#[test]
fn cross_format_scores_are_bit_identical_across_8_threads() {
    let model = fit_model(false);
    let (from_json, from_bin) = export_both(&model);
    let n = from_json.n_ties();

    // Reference: single-threaded scores from the JSON-loaded copy.
    let expected: Vec<u64> = (0..n).map(|r| from_json.score_row(r).to_bits()).collect();

    // 8 threads score the *binary-loaded* copy concurrently, each with a
    // staggered iteration order; every bit must match the reference.
    let from_bin = Arc::new(from_bin);
    const N_THREADS: usize = 8;
    let results: Vec<Vec<u64>> = dd_runtime::scope(|s| {
        let handles: Vec<_> = (0..N_THREADS)
            .map(|t| {
                let m = Arc::clone(&from_bin);
                s.spawn(move || {
                    (0..n).map(|i| m.score_row((i + t * 31) % n).to_bits()).collect::<Vec<u64>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("scoring thread panicked")).collect()
    });
    for (t, bits) in results.iter().enumerate() {
        for (i, &b) in bits.iter().enumerate() {
            let row = (i + t * 31) % n;
            assert_eq!(b, expected[row], "thread {t} diverged from JSON reference at row {row}");
        }
    }
}
