//! Tie events and their JSONL wire format.
//!
//! One event per line, e.g. `{"op":"follow","src":3,"dst":17}`. The format
//! is deliberately minimal: an ordered pair plus an operation. Timestamps
//! are intentionally absent — replay order is the event-log order, which
//! keeps the determinism contract (DESIGN.md §7.15) free of wall clocks.

use serde::{Deserialize, Serialize};

/// What happened to the ordered pair `(src, dst)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventOp {
    /// `src` now follows `dst`: the ordered tie `(src, dst)` exists.
    Follow,
    /// `src` no longer follows `dst`: the ordered tie `(src, dst)` is gone.
    Unfollow,
    /// `src` and `dst` now follow each other (both ordered pairs exist).
    Reciprocate,
}

impl EventOp {
    /// Lowercase wire name (`follow` / `unfollow` / `reciprocate`).
    pub fn wire_name(self) -> &'static str {
        match self {
            EventOp::Follow => "follow",
            EventOp::Unfollow => "unfollow",
            EventOp::Reciprocate => "reciprocate",
        }
    }

    /// Parses a lowercase wire name.
    pub fn from_wire_name(s: &str) -> Option<Self> {
        match s {
            "follow" => Some(EventOp::Follow),
            "unfollow" => Some(EventOp::Unfollow),
            "reciprocate" => Some(EventOp::Reciprocate),
            _ => None,
        }
    }
}

// Hand-rolled (de)serialization: the vendored derive emits exact variant
// names, but the wire contract is lowercase.
impl Serialize for EventOp {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Str(self.wire_name().to_string())
    }
}

impl Deserialize for EventOp {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::Error> {
        match v {
            serde::value::Value::Str(s) => EventOp::from_wire_name(s).ok_or_else(|| {
                serde::Error::custom(format!(
                    "unknown op '{s}' (expected follow|unfollow|reciprocate)"
                ))
            }),
            other => Err(serde::Error::custom(format!("op must be a string, found {other:?}"))),
        }
    }
}

/// One tie event: an operation on the ordered pair `(src, dst)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TieEvent {
    /// The operation.
    pub op: EventOp,
    /// Tail node (the follower).
    pub src: u32,
    /// Head node (the followee).
    pub dst: u32,
}

impl TieEvent {
    /// Convenience constructor.
    pub fn new(op: EventOp, src: u32, dst: u32) -> Self {
        TieEvent { op, src, dst }
    }
}

/// Parses a JSONL event batch. Blank lines are skipped; any malformed line
/// fails the whole batch with a 1-based line number, so a torn or corrupted
/// batch is rejected atomically instead of half-applied.
pub fn parse_events(text: &str) -> Result<Vec<TieEvent>, String> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let ev: TieEvent =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        if ev.src == ev.dst {
            return Err(format!("line {}: self tie ({} -> {})", idx + 1, ev.src, ev.dst));
        }
        events.push(ev);
    }
    Ok(events)
}

/// Consecutive zero-progress `WouldBlock`/`TimedOut` retries before
/// [`read_events`] gives up on a stream that is never ready.
const MAX_STALL_RETRIES: u32 = 256;

/// Reads a JSONL event batch from any [`Read`](std::io::Read) stream
/// (stdin, a file, a chaos-wrapped socket): `Interrupted` is retried
/// silently (no bytes moved; the call can simply be reissued), while
/// `WouldBlock`/`TimedOut` back off for a millisecond per retry and fail
/// after [`MAX_STALL_RETRIES`] consecutive retries without progress — so a
/// non-blocking reader that is never ready errors out instead of
/// busy-spinning forever. EOF ends the stream, and the collected text goes
/// through [`parse_events`] — so a stream torn mid-line rejects the whole
/// batch, and a stream torn on a line boundary yields a clean prefix of
/// the log, never a half-parsed event.
pub fn read_events<R: std::io::Read>(mut r: R) -> Result<Vec<TieEvent>, String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut stalls = 0u32;
    loop {
        match r.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                stalls = 0;
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                stalls += 1;
                if stalls >= MAX_STALL_RETRIES {
                    return Err(format!(
                        "event stream stalled: {e} ({MAX_STALL_RETRIES} consecutive retries \
                         without progress)"
                    ));
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Err(e) => return Err(format!("reading event stream: {e}")),
        }
    }
    let text = String::from_utf8(buf).map_err(|e| format!("event stream is not UTF-8: {e}"))?;
    parse_events(&text)
}

/// Renders events as JSONL (one event per line, trailing newline when
/// non-empty) — the exact format [`parse_events`] accepts.
pub fn to_jsonl(events: &[TieEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        // Serialization of this struct cannot fail; the expect documents it.
        match serde_json::to_string(ev) {
            Ok(line) => {
                out.push_str(&line);
                out.push('\n');
            }
            Err(_) => unreachable!("TieEvent serialization is infallible"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_round_trips() {
        let events = vec![
            TieEvent::new(EventOp::Follow, 1, 2),
            TieEvent::new(EventOp::Unfollow, 3, 4),
            TieEvent::new(EventOp::Reciprocate, 5, 6),
        ];
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("\"op\":\"follow\""), "lowercase wire names: {text}");
        assert_eq!(parse_events(&text).unwrap(), events);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "\n{\"op\":\"follow\",\"src\":1,\"dst\":2}\n\n";
        assert_eq!(parse_events(text).unwrap(), vec![TieEvent::new(EventOp::Follow, 1, 2)]);
        assert!(parse_events("").unwrap().is_empty());
    }

    /// A non-blocking reader that is never ready.
    struct NeverReady;

    impl std::io::Read for NeverReady {
        fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "not ready"))
        }
    }

    #[test]
    fn permanently_stalled_stream_errors_instead_of_spinning_forever() {
        // Regression: WouldBlock used to be retried with a bare `continue`,
        // so a never-ready non-blocking reader busy-spun at 100% CPU and
        // read_events never returned.
        let err = read_events(NeverReady).unwrap_err();
        assert!(err.contains("stalled"), "{err}");
    }

    #[test]
    fn malformed_lines_fail_the_whole_batch_with_a_line_number() {
        let text = "{\"op\":\"follow\",\"src\":1,\"dst\":2}\n{\"op\":\"follow\",\"src\":3";
        let err = parse_events(text).unwrap_err();
        assert!(err.starts_with("line 2:"), "torn tail line must name line 2: {err}");

        let err = parse_events("{\"op\":\"defollow\",\"src\":1,\"dst\":2}").unwrap_err();
        assert!(err.contains("unknown op"), "{err}");

        let err = parse_events("{\"op\":\"follow\",\"src\":7,\"dst\":7}").unwrap_err();
        assert!(err.contains("self tie"), "{err}");
    }
}
