//! `dd-stream` — streaming tie ingestion with incremental fold-in.
//!
//! A live social network emits follow/unfollow/reciprocation events; this
//! crate makes direction queries reflect them seconds later **without
//! retraining**. Events arrive as JSONL (over stdin via `dd ingest`, or
//! `POST /ingest` on dd-serve) and fold into the frozen embedding space of
//! a trained [`DirectionalityModel`](deepdirect::DirectionalityModel):
//!
//! - a **follow** of an untrained pair becomes a *dynamic tie* scored by
//!   the head-cluster fold-in mean (DESIGN.md §6, via
//!   [`FoldInIndex`](deepdirect::FoldInIndex));
//! - an **unfollow** of a trained tie tombstones it (the pair stops
//!   scoring, exactly like an unknown tie);
//! - a **reciprocation** is a follow of both orders.
//!
//! The whole layer lives under the repo's determinism contract
//! (DESIGN.md §7.9/§7.15): the engine is a pure fold over an append-only
//! event log, so the log plus the training seed replays to bit-identical
//! state and served scores — regardless of batch sizes, thread counts, or
//! process restarts. Batches are atomic: a torn or malformed batch is
//! rejected whole, never half-applied.
//!
//! | Item | Role |
//! |---|---|
//! | [`TieEvent`] / [`EventOp`] | the JSONL wire format |
//! | [`parse_events`] / [`to_jsonl`] | atomic batch parse / render |
//! | [`StreamEngine`] | overlay + fold-in scoring + replay/rebind |
//! | [`ApplyReport`] | what a batch touched (drives cache invalidation) |

#![warn(missing_docs)]

pub mod engine;
pub mod event;

pub use engine::{ApplyReport, StreamEngine};
pub use event::{parse_events, read_events, to_jsonl, EventOp, TieEvent};
