//! The streaming engine: an overlay of live tie deltas over a frozen model.
//!
//! [`StreamEngine`] owns an `Arc`'d [`DirectionalityModel`] plus a
//! [`FoldInIndex`] and folds follow/unfollow/reciprocation events into the
//! frozen embedding space without retraining: a dynamic tie's score is the
//! head-cluster fold-in mean (DESIGN.md §6), an unfollowed trained tie stops
//! scoring, and everything untouched keeps its exact trained score.
//!
//! # Determinism and replay (DESIGN.md §7.15)
//!
//! The engine is a pure fold over its append-only event log: state is
//! normalized against the *trained* tie set only (never against arrival
//! order), fold-in means are computed over trained rows only, and the
//! overlay lives in a `BTreeMap`. Replaying the same log against the same
//! model therefore reproduces bit-identical state and scores regardless of
//! how the log was batched — pinned by [`state_digest`](StreamEngine::state_digest)
//! tests here and end-to-end in the CI `stream-smoke` job.

use std::collections::BTreeMap;
use std::sync::Arc;

use dd_graph::NodeId;
use deepdirect::{DirectionalityModel, FoldInIndex};

use crate::event::{EventOp, TieEvent};

/// Overlay verdict for one ordered pair, relative to the trained tie set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Overlay {
    /// Untrained pair made live by a follow/reciprocate event.
    Added,
    /// Trained pair tombstoned by an unfollow event.
    Removed,
}

/// Summary of one applied event batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplyReport {
    /// Events applied (the whole batch — application is atomic).
    pub applied: usize,
    /// Deduplicated, sorted ordered pairs whose scores may have changed;
    /// the serving layer invalidates exactly these cache keys.
    pub touched: Vec<(u32, u32)>,
}

/// Incremental fold-in state over a frozen embedding space.
///
/// See the [module docs](self) for semantics. The engine is `Sync`-friendly
/// by design: scoring takes `&self` plus a caller-owned scratch buffer, so
/// a server can wrap one engine in an `RwLock` and score under read locks.
pub struct StreamEngine {
    model: Arc<DirectionalityModel>,
    index: FoldInIndex,
    overlay: BTreeMap<(u32, u32), Overlay>,
    log: Vec<TieEvent>,
}

impl StreamEngine {
    /// An engine with an empty event log over `model`.
    pub fn new(model: Arc<DirectionalityModel>) -> Self {
        let index = FoldInIndex::build(&model);
        StreamEngine { model, index, overlay: BTreeMap::new(), log: Vec::new() }
    }

    /// An engine with `events` already applied — the replay constructor.
    pub fn replay(model: Arc<DirectionalityModel>, events: &[TieEvent]) -> Self {
        let mut engine = Self::new(model);
        engine.apply_all(events);
        engine
    }

    /// The bound model.
    pub fn model(&self) -> &Arc<DirectionalityModel> {
        &self.model
    }

    /// The bound model's content fingerprint (the cache generation all of
    /// this engine's scores belong to).
    pub fn fingerprint(&self) -> u64 {
        self.model.fingerprint()
    }

    /// The append-only event log (everything ever applied, in order).
    pub fn log(&self) -> &[TieEvent] {
        &self.log
    }

    /// Events applied so far.
    pub fn events_applied(&self) -> usize {
        self.log.len()
    }

    /// Live dynamic ties (untrained pairs currently followed).
    pub fn live_dynamic(&self) -> usize {
        self.overlay.values().filter(|&&s| s == Overlay::Added).count()
    }

    /// Trained ties currently tombstoned by an unfollow.
    pub fn removed_trained(&self) -> usize {
        self.overlay.values().filter(|&&s| s == Overlay::Removed).count()
    }

    fn trained(&self, u: u32, v: u32) -> bool {
        self.model.tie_row(NodeId(u), NodeId(v)).is_some()
    }

    /// Makes `(u, v)` live, returning whether the pair's score changed.
    fn apply_follow(&mut self, u: u32, v: u32) -> bool {
        if self.trained(u, v) {
            // A trained pair is live unless tombstoned; a follow clears the
            // tombstone (back to the exact trained score).
            self.overlay.remove(&(u, v)) == Some(Overlay::Removed)
        } else {
            self.overlay.insert((u, v), Overlay::Added) != Some(Overlay::Added)
        }
    }

    /// Makes `(u, v)` dead, returning whether the pair's score changed.
    fn apply_unfollow(&mut self, u: u32, v: u32) -> bool {
        if self.trained(u, v) {
            self.overlay.insert((u, v), Overlay::Removed) != Some(Overlay::Removed)
        } else {
            self.overlay.remove(&(u, v)) == Some(Overlay::Added)
        }
    }

    /// Applies one event's op to the overlay — the single dispatch point
    /// shared by [`apply`](Self::apply) (live ingestion) and
    /// [`rebind`](Self::rebind) (replay after a reload), so the two paths
    /// cannot drift semantically. Returns the ordered pairs the op touched
    /// (changed or not — invalidating an unchanged pair is cheap and
    /// always safe). Does not log the event.
    fn apply_op(&mut self, ev: TieEvent) -> Vec<(u32, u32)> {
        match ev.op {
            EventOp::Follow => {
                self.apply_follow(ev.src, ev.dst);
                vec![(ev.src, ev.dst)]
            }
            EventOp::Unfollow => {
                self.apply_unfollow(ev.src, ev.dst);
                vec![(ev.src, ev.dst)]
            }
            EventOp::Reciprocate => {
                self.apply_follow(ev.src, ev.dst);
                self.apply_follow(ev.dst, ev.src);
                vec![(ev.src, ev.dst), (ev.dst, ev.src)]
            }
        }
    }

    /// Applies one event; returns the ordered pairs it touched (changed or
    /// not — invalidating an unchanged pair is cheap and always safe).
    pub fn apply(&mut self, ev: TieEvent) -> Vec<(u32, u32)> {
        let touched = self.apply_op(ev);
        self.log.push(ev);
        touched
    }

    /// Applies a whole batch; the report's `touched` list is deduplicated
    /// and sorted (deterministic invalidation order).
    pub fn apply_all(&mut self, events: &[TieEvent]) -> ApplyReport {
        let mut touched = std::collections::BTreeSet::new();
        for &ev in events {
            for pair in self.apply(ev) {
                touched.insert(pair);
            }
        }
        ApplyReport { applied: events.len(), touched: touched.into_iter().collect() }
    }

    /// Whether the ordered pair currently exists (trained and not
    /// tombstoned, or dynamically added).
    pub fn is_live(&self, u: NodeId, v: NodeId) -> bool {
        match self.overlay.get(&(u.0, v.0)) {
            Some(Overlay::Added) => true,
            Some(Overlay::Removed) => false,
            None => self.trained(u.0, v.0),
        }
    }

    /// Directionality score for `(u, v)` under the current overlay:
    /// `None` when the pair does not exist, the exact trained score for
    /// untouched trained pairs, and the fold-in score (neutral `0.5` when
    /// the head is unseen) for dynamic pairs. `scratch` is the reusable
    /// fold-in buffer — hold one per worker and this path never allocates.
    pub fn score(&self, u: NodeId, v: NodeId, scratch: &mut Vec<f32>) -> Option<f64> {
        match self.overlay.get(&(u.0, v.0)) {
            Some(Overlay::Removed) => None,
            Some(Overlay::Added) => {
                Some(self.index.foldin_score_into(&self.model, u, v, scratch).unwrap_or(0.5))
            }
            None => self.model.score(u, v),
        }
    }

    /// Rebinds the engine to a new model (hot reload): rebuilds the fold-in
    /// index and re-normalizes the retained event log against the new
    /// trained tie set. Equivalent to `StreamEngine::replay(new_model, log)`
    /// — the log, not the old overlay, is the source of truth.
    pub fn rebind(&mut self, model: Arc<DirectionalityModel>) {
        self.index = FoldInIndex::build(&model);
        self.model = model;
        self.overlay.clear();
        let log = std::mem::take(&mut self.log);
        for &ev in &log {
            self.apply_op(ev);
        }
        self.log = log;
    }

    /// FNV-1a digest of the engine state: model fingerprint, log length,
    /// and every overlay entry in sorted order. Two engines with the same
    /// digest serve bit-identical scores for every pair; replay tests pin
    /// batch-size and thread-count invariance on it.
    pub fn state_digest(&self) -> u64 {
        let mut h = fnv1a64_seed();
        h = fnv1a64_u64(h, self.model.fingerprint());
        h = fnv1a64_u64(h, self.log.len() as u64);
        for (&(u, v), &state) in &self.overlay {
            h = fnv1a64_u64(h, u64::from(u));
            h = fnv1a64_u64(h, u64::from(v));
            h = fnv1a64_u64(
                h,
                match state {
                    Overlay::Added => 1,
                    Overlay::Removed => 2,
                },
            );
        }
        h
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64_seed() -> u64 {
    FNV_OFFSET
}

fn fnv1a64_u64(mut h: u64, x: u64) -> u64 {
    for byte in x.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_graph::generators::{social_network, SocialNetConfig};
    use dd_graph::MixedSocialNetwork;
    use deepdirect::{DeepDirect, DeepDirectConfig, FoldInScorer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_model(seed: u64) -> (MixedSocialNetwork, Arc<DirectionalityModel>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = social_network(&SocialNetConfig { n_nodes: 80, ..Default::default() }, &mut rng)
            .network;
        let cfg =
            DeepDirectConfig { dim: 8, max_iterations: Some(150_000), seed, ..Default::default() };
        (g.clone(), Arc::new(DeepDirect::new(cfg).fit(&g)))
    }

    /// An untrained ordered pair whose head has in-ties (so fold-in works).
    fn unseen_pair(g: &MixedSocialNetwork, model: &DirectionalityModel) -> (u32, u32) {
        for u in g.nodes() {
            for v in g.nodes() {
                if u != v
                    && model.tie_row(u, v).is_none()
                    && model.tie_row(v, u).is_none()
                    && !g.in_ties(v).is_empty()
                {
                    return (u.0, v.0);
                }
            }
        }
        panic!("no unseen pair in the generated network");
    }

    #[test]
    fn followed_unseen_tie_scores_via_foldin_and_matches_foldin_scorer() {
        let (g, model) = trained_model(41);
        let (u, v) = unseen_pair(&g, &model);
        let mut engine = StreamEngine::new(Arc::clone(&model));
        let mut scratch = Vec::new();
        assert_eq!(engine.score(NodeId(u), NodeId(v), &mut scratch), None, "unseen pair is 404");

        engine.apply(TieEvent::new(EventOp::Follow, u, v));
        let got = engine.score(NodeId(u), NodeId(v), &mut scratch).expect("live after follow");
        let want = FoldInScorer::new(&model).score(NodeId(u), NodeId(v));
        assert_eq!(got.to_bits(), want.to_bits(), "engine fold-in must match FoldInScorer");
        assert_eq!(engine.live_dynamic(), 1);
    }

    #[test]
    fn unfollow_tombstones_trained_ties_and_refollow_restores_them() {
        let (g, model) = trained_model(42);
        let (_, t) = g.iter_ties().next().expect("a trained tie");
        let (u, v) = (t.src, t.dst);
        let exact = model.score(u, v).expect("trained pair scores");
        let mut engine = StreamEngine::new(Arc::clone(&model));
        let mut scratch = Vec::new();

        engine.apply(TieEvent::new(EventOp::Unfollow, u.0, v.0));
        assert_eq!(engine.score(u, v, &mut scratch), None, "tombstoned");
        assert!(!engine.is_live(u, v));
        assert_eq!(engine.removed_trained(), 1);

        engine.apply(TieEvent::new(EventOp::Follow, u.0, v.0));
        assert_eq!(
            engine.score(u, v, &mut scratch).unwrap().to_bits(),
            exact.to_bits(),
            "re-follow restores the exact trained score"
        );
        assert_eq!(engine.removed_trained(), 0);
    }

    #[test]
    fn reciprocate_adds_both_orders_and_reports_both_pairs() {
        let (g, model) = trained_model(43);
        let (u, v) = unseen_pair(&g, &model);
        let mut engine = StreamEngine::new(Arc::clone(&model));
        let touched = engine.apply(TieEvent::new(EventOp::Reciprocate, u, v));
        assert_eq!(touched, vec![(u, v), (v, u)]);
        let mut scratch = Vec::new();
        assert!(engine.score(NodeId(u), NodeId(v), &mut scratch).is_some());
        assert!(engine.score(NodeId(v), NodeId(u), &mut scratch).is_some());
    }

    #[test]
    fn unfollow_of_never_followed_pair_is_a_noop() {
        let (g, model) = trained_model(44);
        let (u, v) = unseen_pair(&g, &model);
        let mut engine = StreamEngine::new(Arc::clone(&model));
        let before = engine.state_digest();
        engine.apply(TieEvent::new(EventOp::Unfollow, u, v));
        let mut scratch = Vec::new();
        assert_eq!(engine.score(NodeId(u), NodeId(v), &mut scratch), None);
        // The log grew (digests differ) but the overlay stayed empty.
        assert_ne!(engine.state_digest(), before, "digest covers the log");
        assert_eq!(engine.live_dynamic() + engine.removed_trained(), 0);
    }

    /// A deterministic synthetic log exercising all three ops, including
    /// churn (follow-then-unfollow) on both trained and untrained pairs.
    fn synthetic_log(g: &MixedSocialNetwork, model: &DirectionalityModel) -> Vec<TieEvent> {
        let mut events = Vec::new();
        let trained: Vec<(u32, u32)> =
            g.iter_ties().take(6).map(|(_, t)| (t.src.0, t.dst.0)).collect();
        let (u, v) = unseen_pair(g, model);
        events.push(TieEvent::new(EventOp::Follow, u, v));
        for &(a, b) in trained.iter().take(3) {
            events.push(TieEvent::new(EventOp::Unfollow, a, b));
        }
        events.push(TieEvent::new(EventOp::Reciprocate, u, v));
        for &(a, b) in trained.iter().skip(3) {
            events.push(TieEvent::new(EventOp::Unfollow, a, b));
            events.push(TieEvent::new(EventOp::Follow, a, b));
        }
        events.push(TieEvent::new(EventOp::Unfollow, u, v));
        events.push(TieEvent::new(EventOp::Follow, u, v));
        events
    }

    #[test]
    fn replay_is_batch_size_invariant_bit_for_bit() {
        let (g, model) = trained_model(45);
        let log = synthetic_log(&g, &model);
        let mut digests = Vec::new();
        let mut score_bits: Vec<Vec<Option<u64>>> = Vec::new();
        for batch in [1usize, 7, log.len()] {
            let mut engine = StreamEngine::new(Arc::clone(&model));
            for chunk in log.chunks(batch) {
                engine.apply_all(chunk);
            }
            digests.push(engine.state_digest());
            let mut scratch = Vec::new();
            let probes: Vec<Option<u64>> = g
                .nodes()
                .flat_map(|u| g.nodes().map(move |v| (u, v)))
                .take(500)
                .map(|(u, v)| engine.score(u, v, &mut scratch).map(f64::to_bits))
                .collect();
            score_bits.push(probes);
        }
        assert_eq!(digests[0], digests[1], "batch 1 vs 7");
        assert_eq!(digests[0], digests[2], "batch 1 vs all-at-once");
        assert_eq!(score_bits[0], score_bits[1], "served bits, batch 1 vs 7");
        assert_eq!(score_bits[0], score_bits[2], "served bits, batch 1 vs all");
    }

    #[test]
    fn replay_constructor_matches_incremental_application() {
        let (g, model) = trained_model(46);
        let log = synthetic_log(&g, &model);
        let mut incremental = StreamEngine::new(Arc::clone(&model));
        for &ev in &log {
            incremental.apply(ev);
        }
        let replayed = StreamEngine::replay(Arc::clone(&model), &log);
        assert_eq!(incremental.state_digest(), replayed.state_digest());
    }

    #[test]
    fn rebind_refolds_the_log_against_the_new_model() {
        let (g, model) = trained_model(47);
        let log = synthetic_log(&g, &model);
        let mut engine = StreamEngine::replay(Arc::clone(&model), &log);

        // Rebinding to the same model is a no-op on the digest.
        let before = engine.state_digest();
        engine.rebind(Arc::clone(&model));
        assert_eq!(engine.state_digest(), before);

        // Rebinding to a different model re-normalizes: digest equals a
        // fresh replay against that model.
        let (_, other) = trained_model(48);
        engine.rebind(Arc::clone(&other));
        let fresh = StreamEngine::replay(other, &log);
        assert_eq!(engine.state_digest(), fresh.state_digest());
    }
}
