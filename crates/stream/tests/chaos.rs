//! Chaos tests for the streaming ingest path: torn and reordered event
//! batches under seeded fault injection (`ChaosStream`), per the
//! DESIGN.md §7.15 atomicity contract — a damaged batch is rejected whole
//! or truncates to a clean log prefix, never half-applies.

use std::io::Cursor;
use std::sync::Arc;

use dd_graph::generators::{social_network, SocialNetConfig};
use dd_stream::{read_events, to_jsonl, EventOp, StreamEngine, TieEvent};
use dd_testkit::{shuffled, ChaosStream, FaultPlan};
use deepdirect::{DeepDirect, DeepDirectConfig, DirectionalityModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trained_model() -> Arc<DirectionalityModel> {
    let mut rng = StdRng::seed_from_u64(51);
    let g =
        social_network(&SocialNetConfig { n_nodes: 60, ..Default::default() }, &mut rng).network;
    let cfg =
        DeepDirectConfig { dim: 8, max_iterations: Some(100_000), seed: 51, ..Default::default() };
    Arc::new(DeepDirect::new(cfg).fit(&g))
}

/// A log of follow/unfollow/reciprocate churn over high node ids (all
/// untrained pairs, so every event is a real overlay mutation).
fn event_log() -> Vec<TieEvent> {
    let mut events = Vec::new();
    for i in 0..40u32 {
        let (u, v) = (1000 + i, 2000 + i % 7);
        events.push(TieEvent::new(EventOp::Follow, u, v));
        if i % 3 == 0 {
            events.push(TieEvent::new(EventOp::Reciprocate, u, v));
        }
        if i % 5 == 0 {
            events.push(TieEvent::new(EventOp::Unfollow, u, v));
        }
    }
    events
}

#[test]
fn torn_event_streams_reject_whole_or_truncate_to_a_clean_prefix() {
    let model = trained_model();
    let log = event_log();
    let text = to_jsonl(&log);

    let mut clean_reads = 0usize;
    let mut prefixes = 0usize;
    let mut rejected = 0usize;
    for seed in 0..300u64 {
        let plan = FaultPlan::new(seed).with_fault_rate(0.4).with_disconnect_rate(0.08);
        let chaos = ChaosStream::new(Cursor::new(text.as_bytes()), plan);
        match read_events(chaos) {
            Ok(events) => {
                // Whatever survived the chaos must be an exact prefix of
                // the log — transient faults and short reads lose nothing,
                // and a disconnect on a line boundary truncates cleanly.
                assert_eq!(
                    events.as_slice(),
                    &log[..events.len()],
                    "seed {seed}: chaos read must yield a log prefix"
                );
                if events.len() == log.len() {
                    clean_reads += 1;
                } else {
                    prefixes += 1;
                }
                // And applying that prefix is deterministic: incremental
                // application equals a fresh replay, bit for bit.
                let mut incremental = StreamEngine::new(Arc::clone(&model));
                for &ev in &events {
                    incremental.apply(ev);
                }
                let replayed = StreamEngine::replay(Arc::clone(&model), &events);
                assert_eq!(incremental.state_digest(), replayed.state_digest(), "seed {seed}");
            }
            Err(err) => {
                // A disconnect mid-line tears the last event; the whole
                // batch is rejected with a line-numbered error.
                assert!(err.starts_with("line "), "seed {seed}: unexpected error: {err}");
                rejected += 1;
            }
        }
    }
    assert!(clean_reads > 0, "some schedules must read the full log");
    assert!(prefixes + rejected > 0, "some schedules must tear the stream");
}

#[test]
fn reordered_batches_over_disjoint_pairs_commute() {
    let model = trained_model();
    // Batches touching pairwise-disjoint pair sets: inter-batch order
    // cannot matter, and the overlay fold must honor that.
    let batches: Vec<Vec<TieEvent>> = (0..12u32)
        .map(|b| {
            let (u, v) = (5000 + b, 6000 + b);
            vec![
                TieEvent::new(EventOp::Follow, u, v),
                TieEvent::new(EventOp::Reciprocate, u, v),
                TieEvent::new(EventOp::Unfollow, v, u),
            ]
        })
        .collect();

    let baseline = {
        let mut engine = StreamEngine::new(Arc::clone(&model));
        for batch in &batches {
            engine.apply_all(batch);
        }
        engine.state_digest()
    };
    for seed in 0..50u64 {
        let order = shuffled(batches.clone(), seed);
        let mut engine = StreamEngine::new(Arc::clone(&model));
        for batch in &order {
            engine.apply_all(batch);
        }
        assert_eq!(engine.state_digest(), baseline, "seed {seed}: disjoint batches must commute");
    }
}

#[test]
fn reordering_within_a_pair_is_last_writer_wins_by_design() {
    // The determinism contract is about the *log*: the log order defines
    // the state. Reordering events on the same pair legitimately changes
    // the outcome — pinned here so nobody mistakes it for a bug.
    let model = trained_model();
    let follow_then_unfollow =
        [TieEvent::new(EventOp::Follow, 7000, 7001), TieEvent::new(EventOp::Unfollow, 7000, 7001)];
    let unfollow_then_follow =
        [TieEvent::new(EventOp::Unfollow, 7000, 7001), TieEvent::new(EventOp::Follow, 7000, 7001)];
    let dead = StreamEngine::replay(Arc::clone(&model), &follow_then_unfollow);
    let live = StreamEngine::replay(Arc::clone(&model), &unfollow_then_follow);
    assert_eq!(dead.live_dynamic(), 0);
    assert_eq!(live.live_dynamic(), 1);
    assert_ne!(dead.state_digest(), live.state_digest());
}
