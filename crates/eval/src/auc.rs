//! Area under the ROC curve, the metric of the link-prediction experiment
//! (Fig. 8).

/// Computes ROC-AUC from scores and binary labels via the rank-sum
/// (Mann–Whitney) formulation, with midrank handling for tied scores.
///
/// NaN scores are legal and rank below everything: a model that emits NaN
/// for an edge is treated as giving it the worst possible score, so a
/// degenerate model degrades the metric instead of crashing the
/// evaluation. The ordering is deterministic ([`f64::total_cmp`] between
/// real scores; NaNs keep their input order below all of them) — two runs
/// over the same inputs always agree.
///
/// Returns `0.5` when either class is absent.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores and labels must align");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| match (scores[a].is_nan(), scores[b].is_nan()) {
        (true, true) => std::cmp::Ordering::Equal, // stable sort keeps input order
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        (false, false) => scores[a].total_cmp(&scores[b]),
    });
    // Assign midranks to ties.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        // Ranks i+1 ..= j+1 share the midrank.
        let midrank = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            if labels[k] {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let n_pos_f = n_pos as f64;
    let n_neg_f = n_neg as f64;
    (rank_sum_pos - n_pos_f * (n_pos_f + 1.0) / 2.0) / (n_pos_f * n_neg_f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &labels), 1.0);
    }

    #[test]
    fn perfect_inversion() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &labels), 0.0);
    }

    #[test]
    fn random_scores_near_half() {
        // Identical scores → ties everywhere → AUC exactly 0.5.
        let scores = [0.5; 10];
        let labels = [true, false, true, false, true, false, true, false, true, false];
        assert_eq!(roc_auc(&scores, &labels), 0.5);
    }

    #[test]
    fn partial_overlap() {
        // One inversion among 2×2: AUC = 3/4.
        let scores = [0.1, 0.6, 0.4, 0.9];
        let labels = [false, false, true, true];
        assert!((roc_auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_classes() {
        assert_eq!(roc_auc(&[0.3, 0.7], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[0.3, 0.7], &[false, false]), 0.5);
        assert_eq!(roc_auc(&[], &[]), 0.5);
    }

    #[test]
    fn nan_scores_rank_below_everything_without_panicking() {
        // Regression: partial_cmp(..).expect(..) used to panic here, so one
        // degenerate model crashed the whole evaluation.
        //
        // A NaN on a positive is the worst possible score: it loses to both
        // negatives. The other positive beats both. AUC = 2/4.
        let scores = [f64::NAN, 0.2, 0.4, 0.9];
        let labels = [true, false, false, true];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-12);

        // A NaN on a *negative* is a gift: every positive beats it. One
        // positive (0.3) beats NaN, loses to 0.8 → 1/2; the 0.9 positive
        // beats both → 2/2. AUC = 3/4.
        let scores = [f64::NAN, 0.8, 0.3, 0.9];
        let labels = [false, false, true, true];
        assert!((roc_auc(&scores, &labels) - 0.75).abs() < 1e-12);

        // Deterministic: repeated evaluation is bit-identical, and NaN
        // payload/sign does not matter for placement among real scores.
        let scores = [0.1, -f64::NAN, 0.5, f64::NAN, 0.9];
        let labels = [false, true, false, true, true];
        let a = roc_auc(&scores, &labels);
        let b = roc_auc(&scores, &labels);
        assert_eq!(a.to_bits(), b.to_bits());

        // All-NaN scores: degenerate but defined, never a panic.
        let all_nan = [f64::NAN; 4];
        let auc = roc_auc(&all_nan, &[true, false, true, false]);
        assert!(auc.is_finite());
    }

    #[test]
    fn ties_get_midranks() {
        // Positive tied with one negative, above another negative.
        let scores = [0.2, 0.5, 0.5];
        let labels = [false, false, true];
        // Midrank AUC: pos beats neg1 (1.0), ties neg2 (0.5) → (1 + 0.5)/2.
        assert!((roc_auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }
}
