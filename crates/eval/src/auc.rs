//! Area under the ROC curve, the metric of the link-prediction experiment
//! (Fig. 8).

/// Computes ROC-AUC from scores and binary labels via the rank-sum
/// (Mann–Whitney) formulation, with midrank handling for tied scores.
///
/// Returns `0.5` when either class is absent.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores and labels must align");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("scores must not be NaN"));
    // Assign midranks to ties.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        // Ranks i+1 ..= j+1 share the midrank.
        let midrank = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            if labels[k] {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let n_pos_f = n_pos as f64;
    let n_neg_f = n_neg as f64;
    (rank_sum_pos - n_pos_f * (n_pos_f + 1.0) / 2.0) / (n_pos_f * n_neg_f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &labels), 1.0);
    }

    #[test]
    fn perfect_inversion() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &labels), 0.0);
    }

    #[test]
    fn random_scores_near_half() {
        // Identical scores → ties everywhere → AUC exactly 0.5.
        let scores = [0.5; 10];
        let labels = [true, false, true, false, true, false, true, false, true, false];
        assert_eq!(roc_auc(&scores, &labels), 0.5);
    }

    #[test]
    fn partial_overlap() {
        // One inversion among 2×2: AUC = 3/4.
        let scores = [0.1, 0.6, 0.4, 0.9];
        let labels = [false, false, true, true];
        assert!((roc_auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_classes() {
        assert_eq!(roc_auc(&[0.3, 0.7], &[true, true]), 0.5);
        assert_eq!(roc_auc(&[0.3, 0.7], &[false, false]), 0.5);
        assert_eq!(roc_auc(&[], &[]), 0.5);
    }

    #[test]
    fn ties_get_midranks() {
        // Positive tied with one negative, above another negative.
        let scores = [0.2, 0.5, 0.5];
        let labels = [false, false, true];
        // Midrank AUC: pos beats neg1 (1.0), ties neg2 (0.5) → (1 + 0.5)/2.
        assert!((roc_auc(&scores, &labels) - 0.75).abs() < 1e-12);
    }
}
