//! Silhouette score — a quantitative stand-in for the visual separability
//! judgment of Fig. 7 ("points of different colors are separable").

/// Mean silhouette coefficient of 2-D points under binary labels.
///
/// For each point: `s = (b − a) / max(a, b)` with `a` the mean distance to
/// same-label points and `b` the mean distance to other-label points.
/// Ranges in `[-1, 1]`; higher means better separated. Returns `0` when a
/// class has fewer than 2 members.
pub fn silhouette_2d(points: &[(f64, f64)], labels: &[bool]) -> f64 {
    assert_eq!(points.len(), labels.len(), "points and labels must align");
    let n = points.len();
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = n - n_pos;
    if n_pos < 2 || n_neg < 2 {
        return 0.0;
    }
    let dist = |i: usize, j: usize| -> f64 {
        let (dx, dy) = (points[i].0 - points[j].0, points[i].1 - points[j].1);
        (dx * dx + dy * dy).sqrt()
    };
    let mut total = 0.0;
    for i in 0..n {
        let mut same_sum = 0.0;
        let mut same_n = 0usize;
        let mut other_sum = 0.0;
        let mut other_n = 0usize;
        for j in 0..n {
            if i == j {
                continue;
            }
            if labels[i] == labels[j] {
                same_sum += dist(i, j);
                same_n += 1;
            } else {
                other_sum += dist(i, j);
                other_n += 1;
            }
        }
        let a = same_sum / same_n as f64;
        let b = other_sum / other_n as f64;
        let m = a.max(b);
        if m > 0.0 {
            total += (b - a) / m;
        }
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separated_clusters_score_high() {
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            pts.push((10.0 + (i % 5) as f64 * 0.1, 10.0));
            labels.push(true);
            pts.push((-10.0 - (i % 5) as f64 * 0.1, -10.0));
            labels.push(false);
        }
        let s = silhouette_2d(&pts, &labels);
        assert!(s > 0.9, "well-separated clusters: {s}");
    }

    #[test]
    fn mixed_clusters_score_low() {
        // Interleaved points.
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            pts.push((i as f64 * 0.1, 0.0));
            labels.push(i % 2 == 0);
        }
        let s = silhouette_2d(&pts, &labels);
        assert!(s.abs() < 0.3, "interleaved clusters: {s}");
    }

    #[test]
    fn degenerate_classes_are_zero() {
        let pts = vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)];
        assert_eq!(silhouette_2d(&pts, &[true, true, true]), 0.0);
        assert_eq!(silhouette_2d(&pts, &[true, true, false]), 0.0);
    }

    #[test]
    fn score_in_valid_range() {
        let pts = vec![(0.0, 0.0), (0.5, 0.1), (3.0, 3.0), (3.5, 2.9)];
        let labels = vec![true, false, true, false];
        let s = silhouette_2d(&pts, &labels);
        assert!((-1.0..=1.0).contains(&s));
    }
}
