//! Exact t-SNE (van der Maaten & Hinton, JMLR 2008) for the embedding
//! visualization of Fig. 7.
//!
//! The figure projects a few hundred tie embeddings to 2-D, so the exact
//! `O(n²)` formulation is appropriate (no Barnes–Hut tree needed). The
//! implementation follows the reference algorithm: per-point bandwidths by
//! binary search to a target perplexity, symmetrized affinities, early
//! exaggeration, and momentum gradient descent.

use dd_linalg::rng::Pcg32;

use crate::pca::pca_project;

/// t-SNE hyper-parameters.
#[derive(Debug, Clone)]
pub struct TsneConfig {
    /// Target perplexity (effective neighborhood size).
    pub perplexity: f64,
    /// Gradient descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub lr: f64,
    /// Early exaggeration factor applied for the first quarter of training.
    pub exaggeration: f64,
    /// RNG seed (initialization jitter).
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig { perplexity: 30.0, iterations: 400, lr: 100.0, exaggeration: 12.0, seed: 0x75e }
    }
}

/// Embeds `data` (rows = points) into 2-D with t-SNE. Returns `(x, y)` per
/// point.
pub fn tsne_2d(data: &[Vec<f32>], cfg: &TsneConfig) -> Vec<(f64, f64)> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![(0.0, 0.0)];
    }
    let perplexity = cfg.perplexity.min((n as f64 - 1.0) / 3.0).max(1.0);

    // Pairwise squared distances.
    let mut d2 = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist = dd_linalg::vecops::sq_dist(&data[i], &data[j]) as f64;
            d2[i * n + j] = dist;
            d2[j * n + i] = dist;
        }
    }

    // Conditional affinities with per-point bandwidth via binary search on
    // log-perplexity.
    let target_entropy = perplexity.ln();
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        let (mut beta, mut beta_lo, mut beta_hi) = (1.0f64, 0.0f64, f64::INFINITY);
        let row = &d2[i * n..(i + 1) * n];
        for _ in 0..64 {
            let mut sum = 0.0;
            let mut sum_dp = 0.0;
            for (j, &dij) in row.iter().enumerate() {
                if j == i {
                    continue;
                }
                let pij = (-beta * dij).exp();
                sum += pij;
                sum_dp += beta * dij * pij;
            }
            let entropy = if sum > 0.0 { sum.ln() + sum_dp / sum } else { 0.0 };
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-5 {
                break;
            }
            if diff > 0.0 {
                beta_lo = beta;
                beta = if beta_hi.is_finite() { (beta + beta_hi) / 2.0 } else { beta * 2.0 };
            } else {
                beta_hi = beta;
                beta = (beta + beta_lo) / 2.0;
            }
        }
        let mut sum = 0.0;
        for (j, &dij) in row.iter().enumerate() {
            if j != i {
                let pij = (-beta * dij).exp();
                p[i * n + j] = pij;
                sum += pij;
            }
        }
        if sum > 0.0 {
            for j in 0..n {
                p[i * n + j] /= sum;
            }
        }
    }
    // Symmetrize and normalize.
    let mut pij = vec![0.0f64; n * n];
    let mut total = 0.0;
    for i in 0..n {
        for j in 0..n {
            let v = (p[i * n + j] + p[j * n + i]) / (2.0 * n as f64);
            pij[i * n + j] = v;
            total += v;
        }
    }
    if total > 0.0 {
        for v in &mut pij {
            *v = (*v / total).max(1e-12);
        }
    }

    // Initialize from PCA with a little jitter.
    let init = pca_project(data, 2, cfg.seed);
    let scale = {
        let max = init.iter().flat_map(|p| p.iter()).fold(0.0f64, |a, &b| a.max(b.abs()));
        if max > 0.0 {
            1e-2 / max
        } else {
            1.0
        }
    };
    let mut rng = Pcg32::seed_from_u64(cfg.seed);
    let mut y: Vec<f64> = Vec::with_capacity(2 * n);
    for pt in &init {
        y.push(pt[0] * scale + (rng.next_f64() - 0.5) * 1e-4);
        y.push(*pt.get(1).unwrap_or(&0.0) * scale + (rng.next_f64() - 0.5) * 1e-4);
    }
    let mut velocity = vec![0.0f64; 2 * n];
    let mut grad = vec![0.0f64; 2 * n];
    let mut q = vec![0.0f64; n * n];

    let exag_until = cfg.iterations / 4;
    for it in 0..cfg.iterations {
        let exag = if it < exag_until { cfg.exaggeration } else { 1.0 };
        // Student-t affinities in the embedding.
        let mut qsum = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = y[2 * i] - y[2 * j];
                let dy = y[2 * i + 1] - y[2 * j + 1];
                let w = 1.0 / (1.0 + dx * dx + dy * dy);
                q[i * n + j] = w;
                q[j * n + i] = w;
                qsum += 2.0 * w;
            }
        }
        let qsum = qsum.max(1e-12);
        // Gradient: 4 Σ_j (exag·p_ij − q_ij) w_ij (y_i − y_j).
        grad.fill(0.0);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = q[i * n + j];
                let coeff = 4.0 * (exag * pij[i * n + j] - w / qsum) * w;
                let dx = y[2 * i] - y[2 * j];
                let dy = y[2 * i + 1] - y[2 * j + 1];
                grad[2 * i] += coeff * dx;
                grad[2 * i + 1] += coeff * dy;
            }
        }
        let momentum = if it < exag_until { 0.5 } else { 0.8 };
        for k in 0..2 * n {
            velocity[k] = momentum * velocity[k] - cfg.lr * grad[k];
            y[k] += velocity[k];
        }
    }

    (0..n).map(|i| (y[2 * i], y[2 * i + 1])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated Gaussian blobs in 8-D.
    fn blobs(n_per: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<bool>) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..2 * n_per {
            let cls = i % 2 == 0;
            let center = if cls { 3.0f32 } else { -3.0 };
            let row: Vec<f32> = (0..8).map(|_| center + rng.next_f32() - 0.5).collect();
            data.push(row);
            labels.push(cls);
        }
        (data, labels)
    }

    #[test]
    fn separates_blobs() {
        let (data, labels) = blobs(40, 1);
        let cfg = TsneConfig { iterations: 250, ..Default::default() };
        let pts = tsne_2d(&data, &cfg);
        assert_eq!(pts.len(), 80);
        // Centroid distance between classes should exceed intra-class
        // spread.
        let centroid = |cls: bool| {
            let sel: Vec<&(f64, f64)> =
                pts.iter().zip(&labels).filter(|(_, &l)| l == cls).map(|(p, _)| p).collect();
            let n = sel.len() as f64;
            (sel.iter().map(|p| p.0).sum::<f64>() / n, sel.iter().map(|p| p.1).sum::<f64>() / n)
        };
        let (ax, ay) = centroid(true);
        let (bx, by) = centroid(false);
        let between = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        let spread = pts
            .iter()
            .zip(&labels)
            .map(|(p, &l)| {
                let (cx, cy) = if l { (ax, ay) } else { (bx, by) };
                ((p.0 - cx).powi(2) + (p.1 - cy).powi(2)).sqrt()
            })
            .sum::<f64>()
            / pts.len() as f64;
        assert!(between > 2.0 * spread, "between {between} vs spread {spread}");
    }

    #[test]
    fn handles_tiny_inputs() {
        assert!(tsne_2d(&[], &TsneConfig::default()).is_empty());
        assert_eq!(tsne_2d(&[vec![1.0, 2.0]], &TsneConfig::default()), vec![(0.0, 0.0)]);
        let two =
            tsne_2d(&[vec![0.0], vec![1.0]], &TsneConfig { iterations: 50, ..Default::default() });
        assert_eq!(two.len(), 2);
        assert!(two.iter().all(|p| p.0.is_finite() && p.1.is_finite()));
    }

    #[test]
    fn deterministic_for_seed() {
        let (data, _) = blobs(10, 3);
        let cfg = TsneConfig { iterations: 60, ..Default::default() };
        let a = tsne_2d(&data, &cfg);
        let b = tsne_2d(&data, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn output_is_finite() {
        let (data, _) = blobs(30, 4);
        let pts = tsne_2d(&data, &TsneConfig { iterations: 120, ..Default::default() });
        for (x, y) in pts {
            assert!(x.is_finite() && y.is_finite());
        }
    }
}
