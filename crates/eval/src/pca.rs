//! Principal component analysis via power iteration with deflation.
//!
//! Used to initialize t-SNE (standard practice) and as a cheap linear
//! alternative for embedding inspection.

use dd_linalg::rng::Pcg32;

/// Projects `data` (rows = points) onto its top `k` principal components.
///
/// Returns an `n × k` row-major projection. Components are computed by
/// power iteration on the centered covariance with deflation; adequate for
/// visualization purposes.
pub fn pca_project(data: &[Vec<f32>], k: usize, seed: u64) -> Vec<Vec<f64>> {
    assert!(!data.is_empty(), "PCA needs data");
    let n = data.len();
    let d = data[0].len();
    assert!(data.iter().all(|r| r.len() == d), "ragged rows");
    let k = k.min(d);
    // Center.
    let mut mean = vec![0.0f64; d];
    for row in data {
        for (m, &x) in mean.iter_mut().zip(row) {
            *m += x as f64;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    let centered: Vec<Vec<f64>> = data
        .iter()
        .map(|row| row.iter().zip(&mean).map(|(&x, &m)| x as f64 - m).collect())
        .collect();

    let mut rng = Pcg32::seed_from_u64(seed);
    let mut components: Vec<Vec<f64>> = Vec::with_capacity(k);
    for _ in 0..k {
        let mut v: Vec<f64> = (0..d).map(|_| rng.next_f64() - 0.5).collect();
        normalize(&mut v);
        for _ in 0..60 {
            // w = Cᵀ(Cv) without forming the covariance matrix.
            let mut w = vec![0.0f64; d];
            for row in &centered {
                let proj: f64 = row.iter().zip(&v).map(|(a, b)| a * b).sum();
                for (wi, &ri) in w.iter_mut().zip(row) {
                    *wi += proj * ri;
                }
            }
            // Deflate previously found components.
            for c in &components {
                let dot: f64 = w.iter().zip(c).map(|(a, b)| a * b).sum();
                for (wi, &ci) in w.iter_mut().zip(c) {
                    *wi -= dot * ci;
                }
            }
            let norm = normalize(&mut w);
            if norm < 1e-12 {
                break;
            }
            v = w;
        }
        components.push(v);
    }

    centered
        .iter()
        .map(|row| components.iter().map(|c| row.iter().zip(c).map(|(a, b)| a * b).sum()).collect())
        .collect()
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_axis() {
        // Points spread along the (1, 1) diagonal with small noise in the
        // orthogonal direction.
        let mut data = Vec::new();
        for i in 0..100 {
            let t = i as f32 / 10.0;
            let noise = if i % 2 == 0 { 0.05 } else { -0.05 };
            data.push(vec![t + noise, t - noise]);
        }
        let proj = pca_project(&data, 2, 1);
        // Variance along PC1 must dwarf PC2.
        let var = |k: usize| {
            let m: f64 = proj.iter().map(|p| p[k]).sum::<f64>() / proj.len() as f64;
            proj.iter().map(|p| (p[k] - m).powi(2)).sum::<f64>() / proj.len() as f64
        };
        assert!(var(0) > 100.0 * var(1), "PC1 var {} vs PC2 var {}", var(0), var(1));
    }

    #[test]
    fn projection_shape() {
        let data = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0], vec![7.0, 8.0, 10.0]];
        let proj = pca_project(&data, 2, 2);
        assert_eq!(proj.len(), 3);
        assert_eq!(proj[0].len(), 2);
        // k capped at dimensionality.
        let proj = pca_project(&data, 10, 3);
        assert_eq!(proj[0].len(), 3);
    }

    #[test]
    fn centered_output() {
        let data = vec![vec![10.0, 0.0], vec![12.0, 0.0], vec![14.0, 0.0]];
        let proj = pca_project(&data, 1, 3);
        let mean: f64 = proj.iter().map(|p| p[0]).sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-9);
    }
}
