//! The link-prediction experiment of Sec. 6.3 (Fig. 8).
//!
//! Protocol: extract 80% of the social ties into a network `G'`; candidate
//! pairs are the 2-hop neighbor pairs of `G'`; pairs connected in the
//! original `G` are positives, the rest negatives. Pairs are ranked by the
//! weighted Jaccard coefficient (Eq. 29) over either the raw adjacency
//! matrix or a directionality adjacency matrix, and ranked quality is
//! measured by ROC-AUC.

use dd_graph::hash::FxHashSet;
use dd_graph::sampling::induced_subnetwork;
use dd_graph::{MixedSocialNetwork, NetworkBuilder, NodeId, TieKind};
use deepdirect::apps::quantify::DirectionalityAdjacency;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::auc::roc_auc;

/// A link-prediction evaluation instance.
pub struct LinkPredInstance {
    /// The 80% training network `G'`.
    pub train: MixedSocialNetwork,
    /// Candidate ordered pairs (2-hop neighbors in `G'`, unconnected in
    /// `G'`).
    pub candidates: Vec<(NodeId, NodeId)>,
    /// Label per candidate: connected in the full network `G`.
    pub labels: Vec<bool>,
}

/// Builds a link-prediction instance from `g`.
///
/// `keep_frac` of the social ties (default protocol: 0.8) form the training
/// network. Candidates are 2-hop pairs in the training network; at most
/// `max_candidates` are kept (sampled uniformly) to bound the evaluation.
pub fn build_instance<R: Rng>(
    g: &MixedSocialNetwork,
    keep_frac: f64,
    max_candidates: usize,
    rng: &mut R,
) -> LinkPredInstance {
    assert!((0.0..=1.0).contains(&keep_frac));
    // Collect social ties (canonical form) and keep a random subset.
    #[derive(Clone, Copy)]
    enum T {
        D(u32, u32),
        B(u32, u32),
        U(u32, u32),
    }
    let mut all: Vec<T> = Vec::with_capacity(g.counts().total());
    for (_, u, v) in g.directed_ties() {
        all.push(T::D(u.0, v.0));
    }
    for (_, u, v) in g.bidirectional_pairs() {
        all.push(T::B(u.0, v.0));
    }
    for (_, u, v) in g.undirected_pairs() {
        all.push(T::U(u.0, v.0));
    }
    all.shuffle(rng);
    let keep = ((all.len() as f64) * keep_frac).round() as usize;
    let keep = keep.clamp(1, all.len());
    let mut b = NetworkBuilder::new(g.n_nodes());
    let mut kept_directed = 0usize;
    for &t in &all[..keep] {
        match t {
            T::D(u, v) => {
                b.add_directed(NodeId(u), NodeId(v)).expect("unique");
                kept_directed += 1;
            }
            T::B(u, v) => {
                b.add_bidirectional(NodeId(u), NodeId(v)).expect("unique");
            }
            T::U(u, v) => {
                b.add_undirected(NodeId(u), NodeId(v)).expect("unique");
            }
        }
    }
    // Guarantee at least one directed tie so G' stays a valid mixed network.
    if kept_directed == 0 {
        for &t in &all[keep..] {
            if let T::D(u, v) = t {
                b.add_directed(NodeId(u), NodeId(v)).expect("unique");
                break;
            }
        }
    }
    let train = b.build().expect("directed tie ensured");

    // 2-hop candidate pairs in G' (undirected view — "all the 2-hop
    // neighbors" of Sec. 6.3), excluding pairs already connected in G'.
    // Each unordered pair appears once; the Jaccard of Eq. 29 is evaluated
    // in both orders at scoring time.
    let mut candidates: Vec<(NodeId, NodeId)> = Vec::new();
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    for u in train.nodes() {
        for &w in train.neighbors(u) {
            for &v in train.neighbors(w) {
                if v == u || train.has_tie_between(u, v) {
                    continue;
                }
                let key = if u < v { (u.0, v.0) } else { (v.0, u.0) };
                if seen.insert(key) {
                    candidates.push((u, v));
                }
            }
        }
    }
    if candidates.len() > max_candidates {
        candidates.shuffle(rng);
        candidates.truncate(max_candidates);
    }
    let labels = candidates.iter().map(|&(u, v)| g.has_tie_between(u, v)).collect();
    LinkPredInstance { train, candidates, labels }
}

impl LinkPredInstance {
    /// Scores all candidates with the weighted Jaccard of Eq. 29 over the
    /// given adjacency matrix and returns the ROC-AUC. Candidates are
    /// unordered pairs, so both orders are scored and summed.
    pub fn auc_with(&self, adjacency: &DirectionalityAdjacency) -> f64 {
        let scores: Vec<f64> = self
            .candidates
            .iter()
            .map(|&(u, v)| adjacency.jaccard(u, v) + adjacency.jaccard(v, u))
            .collect();
        roc_auc(&scores, &self.labels)
    }

    /// AUC using the raw 0/1 adjacency matrix of the training network.
    pub fn auc_unweighted(&self) -> f64 {
        self.auc_with(&DirectionalityAdjacency::unweighted(&self.train))
    }

    /// AUC using the directionality adjacency matrix built from `score`.
    pub fn auc_quantified<F>(&self, score: F) -> f64
    where
        F: FnMut(NodeId, NodeId) -> f64,
    {
        self.auc_with(&DirectionalityAdjacency::quantified(&self.train, score))
    }

    /// Fraction of candidates that are positive (class balance diagnostic).
    pub fn positive_rate(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&l| l).count() as f64 / self.labels.len() as f64
    }
}

/// Convenience: sub-sample `g` to `target_nodes` before building an
/// instance (the Fig. 8 experiments run on BFS samples).
pub fn build_instance_sampled<R: Rng>(
    g: &MixedSocialNetwork,
    target_nodes: usize,
    keep_frac: f64,
    max_candidates: usize,
    rng: &mut R,
) -> LinkPredInstance {
    if g.n_nodes() <= target_nodes {
        return build_instance(g, keep_frac, max_candidates, rng);
    }
    let order = dd_graph::traversal::bfs_order(
        g,
        NodeId(rng.gen_range(0..g.n_nodes() as u32)),
        target_nodes,
    );
    let (sub, _) = induced_subnetwork(g, &order);
    // The induced sub-network may lack directed ties only in pathological
    // cases; fall back to the full network then.
    if sub.counts().directed == 0 {
        return build_instance(g, keep_frac, max_candidates, rng);
    }
    build_instance(&sub, keep_frac, max_candidates, rng)
}

/// Returns true when over half the social ties of `g` are bidirectional —
/// the criterion Sec. 6.3 uses to select datasets for the experiment.
pub fn is_bidirectional_heavy(g: &MixedSocialNetwork) -> bool {
    let c = g.counts();
    let _ = TieKind::Bidirectional; // (documents which kind the test is about)
    c.bidirectional * 2 > c.total()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_graph::generators::{social_network, SocialNetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64, reciprocity: f64) -> MixedSocialNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        social_network(
            &SocialNetConfig { n_nodes: 300, reciprocity, closure_prob: 0.5, ..Default::default() },
            &mut rng,
        )
        .network
    }

    #[test]
    fn instance_has_candidates_and_positives() {
        let g = net(1, 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let inst = build_instance(&g, 0.8, 20_000, &mut rng);
        assert!(!inst.candidates.is_empty());
        let pr = inst.positive_rate();
        assert!(pr > 0.0 && pr < 1.0, "positive rate {pr} must be mixed");
        // Training network keeps roughly 80% of ties.
        let frac = inst.train.counts().total() as f64 / g.counts().total() as f64;
        assert!((frac - 0.8).abs() < 0.02);
    }

    #[test]
    fn jaccard_ranking_beats_random() {
        let g = net(3, 0.5);
        let mut rng = StdRng::seed_from_u64(4);
        let inst = build_instance(&g, 0.8, 20_000, &mut rng);
        let auc = inst.auc_unweighted();
        assert!(auc > 0.5, "raw Jaccard AUC {auc} should beat random");
    }

    #[test]
    fn quantified_matrix_changes_scores() {
        let g = net(5, 0.6);
        let mut rng = StdRng::seed_from_u64(6);
        let inst = build_instance(&g, 0.8, 10_000, &mut rng);
        let raw = inst.auc_unweighted();
        let weighted = inst.auc_quantified(|_, _| 0.5);
        // Both are valid AUCs; constant reweighting of bidirectional cells
        // shifts path weights and therefore the ranking.
        assert!((0.0..=1.0).contains(&raw));
        assert!((0.0..=1.0).contains(&weighted));
    }

    #[test]
    fn candidate_cap_is_respected() {
        let g = net(7, 0.5);
        let mut rng = StdRng::seed_from_u64(8);
        let inst = build_instance(&g, 0.8, 100, &mut rng);
        assert!(inst.candidates.len() <= 100);
        assert_eq!(inst.candidates.len(), inst.labels.len());
    }

    #[test]
    fn bidirectional_heavy_detection() {
        assert!(is_bidirectional_heavy(&net(9, 0.7)));
        assert!(!is_bidirectional_heavy(&net(10, 0.1)));
    }

    #[test]
    fn sampled_instance_respects_target() {
        let g = net(11, 0.5);
        let mut rng = StdRng::seed_from_u64(12);
        let inst = build_instance_sampled(&g, 100, 0.8, 5_000, &mut rng);
        assert_eq!(inst.train.n_nodes(), 100);
    }
}
