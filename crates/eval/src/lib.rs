//! # dd-eval — evaluation harness for the DeepDirect reproduction
//!
//! Everything Sec. 6 of the paper needs to score methods:
//!
//! * [`runner`] — the five-method registry, the direction-discovery
//!   protocol (Fig. 3–6) and JSON result rows,
//! * [`auc`] — ROC-AUC (Fig. 8's metric),
//! * [`linkpred`] — the 80%-ties / 2-hop-candidates / weighted-Jaccard link
//!   prediction experiment of Sec. 6.3,
//! * [`tsne`] + [`pca`] + [`silhouette`] — the embedding visualization and
//!   its quantitative separability score (Fig. 7),
//! * [`grid`] — grid search with validation for `α` and `β` (Sec. 6.1),
//! * [`metrics`] — bootstrap confidence intervals and probability
//!   calibration (beyond-paper rigor for the smaller synthetic scale).

#![warn(missing_docs)]

pub mod auc;
pub mod grid;
pub mod linkpred;
pub mod metrics;
pub mod pca;
pub mod runner;
pub mod silhouette;
pub mod tsne;

pub use auc::roc_auc;
pub use grid::{grid_search_alpha_beta, GridPoint};
pub use linkpred::{build_instance, build_instance_sampled, LinkPredInstance};
pub use metrics::{bootstrap_mean_ci, calibration, CalibrationBin, ConfidenceInterval};
pub use pca::pca_project;
pub use runner::{
    direction_discovery_accuracy, evaluate_methods, scorer_accuracy, DeepDirectScorer,
    ExperimentRow, Method, ResultSink,
};
pub use silhouette::silhouette_2d;
pub use tsne::{tsne_2d, TsneConfig};
