//! Grid search with validation for the loss weights `α` and `β`
//! (Sec. 6.1: "we use the grid search with cross-validation to determine
//! the optimal values").

use dd_graph::sampling::{hide_directions, HiddenDirections};
use dd_graph::MixedSocialNetwork;
use dd_runtime::{Pool, Threads};
use deepdirect::DeepDirectConfig;
use rand::Rng;

use crate::runner::{direction_discovery_accuracy, Method};

/// One grid-search evaluation.
#[derive(Debug, Clone, Copy)]
pub struct GridPoint {
    /// Evaluated `α`.
    pub alpha: f32,
    /// Evaluated `β`.
    pub beta: f32,
    /// Mean validation accuracy across folds.
    pub accuracy: f64,
}

/// Grid-searches `(α, β)` for DeepDirect on `g`.
///
/// Validation protocol: within the training network, a further
/// `val_hide_frac` of the directed ties are hidden per fold; the
/// configuration with the best mean validation direction-discovery accuracy
/// wins. Returns the winning `(α, β)` and the full table.
///
/// Every `(α, β, fold)` cell is an independent model fit, so cells run in
/// parallel on `threads` workers. Splits are drawn from `rng` serially up
/// front, cell results land in fixed slots, and fold means plus the argmax
/// are computed in grid order — the search is deterministic at any thread
/// count provided each fit is (i.e. `base.threads == 1`; the Hogwild E-step
/// is the documented exemption, DESIGN.md §7.9).
#[allow(clippy::too_many_arguments)] // mirrors the experiment's knobs 1:1
pub fn grid_search_alpha_beta<R: Rng>(
    g: &MixedSocialNetwork,
    alphas: &[f32],
    betas: &[f32],
    base: &DeepDirectConfig,
    val_hide_frac: f64,
    folds: usize,
    threads: Threads,
    rng: &mut R,
) -> (f32, f32, Vec<GridPoint>) {
    assert!(!alphas.is_empty() && !betas.is_empty(), "empty grid");
    assert!(folds >= 1, "need at least one fold");
    // Pre-generate the folds so every configuration sees the same splits.
    let splits: Vec<HiddenDirections> =
        (0..folds).map(|_| hide_directions(g, 1.0 - val_hide_frac, rng)).collect();
    let pool = Pool::new("eval.grid", threads);
    let cell_accs = pool.par_map(alphas.len() * betas.len() * folds, |i| {
        let (ai, rem) = (i / (betas.len() * folds), i % (betas.len() * folds));
        let (bi, fi) = (rem / folds, rem % folds);
        let cfg = DeepDirectConfig { alpha: alphas[ai], beta: betas[bi], ..base.clone() };
        direction_discovery_accuracy(&Method::DeepDirect(cfg), &splits[fi])
    });
    let mut table = Vec::with_capacity(alphas.len() * betas.len());
    let mut best = (alphas[0], betas[0], f64::NEG_INFINITY);
    for (ai, &alpha) in alphas.iter().enumerate() {
        for (bi, &beta) in betas.iter().enumerate() {
            let cell0 = (ai * betas.len() + bi) * folds;
            let accuracy = cell_accs[cell0..cell0 + folds].iter().sum::<f64>() / folds as f64;
            table.push(GridPoint { alpha, beta, accuracy });
            if accuracy > best.2 {
                best = (alpha, beta, accuracy);
            }
        }
    }
    (best.0, best.1, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_graph::generators::{social_network, SocialNetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_search_covers_all_points() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = social_network(&SocialNetConfig { n_nodes: 80, ..Default::default() }, &mut rng)
            .network;
        let base =
            DeepDirectConfig { dim: 8, max_iterations: Some(5_000), ..DeepDirectConfig::default() };
        let (a, b, table) = grid_search_alpha_beta(
            &g,
            &[0.0, 1.0],
            &[0.0, 0.5],
            &base,
            0.3,
            1,
            Threads::serial(),
            &mut rng,
        );
        assert_eq!(table.len(), 4);
        assert!(table.iter().any(|p| p.alpha == a && p.beta == b));
        let best = table.iter().map(|p| p.accuracy).fold(f64::MIN, f64::max);
        assert!(table
            .iter()
            .any(|p| p.alpha == a && p.beta == b && (p.accuracy - best).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn rejects_empty_grid() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = social_network(&SocialNetConfig { n_nodes: 50, ..Default::default() }, &mut rng)
            .network;
        let base = DeepDirectConfig::fast();
        let _ = grid_search_alpha_beta(&g, &[], &[0.0], &base, 0.3, 1, Threads::serial(), &mut rng);
    }

    #[test]
    fn parallel_grid_matches_serial() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = social_network(&SocialNetConfig { n_nodes: 60, ..Default::default() }, &mut rng)
            .network;
        let base =
            DeepDirectConfig { dim: 8, max_iterations: Some(2_000), ..DeepDirectConfig::fast() };
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(77);
            grid_search_alpha_beta(
                &g,
                &[0.0, 1.0],
                &[0.0],
                &base,
                0.3,
                2,
                Threads::new(threads).unwrap(),
                &mut rng,
            )
        };
        let (a1, b1, t1) = run(1);
        let (a4, b4, t4) = run(4);
        assert_eq!((a1, b1), (a4, b4));
        for (p, q) in t1.iter().zip(&t4) {
            assert_eq!(p.accuracy.to_bits(), q.accuracy.to_bits());
        }
    }
}
