//! Additional evaluation metrics: bootstrap confidence intervals and
//! probability calibration for directionality functions.
//!
//! The paper reports point accuracies; confidence intervals quantify
//! whether method differences at our (smaller) evaluation scale are
//! meaningful, and calibration checks whether `d(e)` behaves like the
//! probability Definition 2 claims it is.

use dd_linalg::rng::Pcg32;

/// A bootstrap percentile confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate on the full sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lower: f64,
    /// Upper percentile bound.
    pub upper: f64,
}

/// Bootstrap percentile CI of the mean of a 0/1 (or any bounded) outcome
/// vector, e.g. per-tie direction-discovery correctness.
///
/// `level` is the coverage (e.g. `0.95`); `resamples` draws with
/// replacement are taken.
pub fn bootstrap_mean_ci(
    outcomes: &[f64],
    level: f64,
    resamples: usize,
    seed: u64,
) -> ConfidenceInterval {
    assert!(!outcomes.is_empty(), "no outcomes to bootstrap");
    assert!((0.0..1.0).contains(&level), "level must be in [0, 1)");
    let n = outcomes.len();
    let estimate = outcomes.iter().sum::<f64>() / n as f64;
    let mut rng = Pcg32::seed_from_u64(seed);
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut s = 0.0;
        for _ in 0..n {
            s += outcomes[rng.gen_range(n)];
        }
        means.push(s / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((resamples as f64) * alpha).floor() as usize;
    let hi_idx = (((resamples as f64) * (1.0 - alpha)).ceil() as usize).min(resamples - 1);
    ConfidenceInterval { estimate, lower: means[lo_idx], upper: means[hi_idx] }
}

/// One bin of a reliability diagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationBin {
    /// Mean predicted probability in the bin.
    pub mean_predicted: f64,
    /// Empirical positive rate in the bin.
    pub empirical: f64,
    /// Number of samples in the bin.
    pub count: usize,
}

/// Builds a reliability diagram over `n_bins` equal-width probability bins
/// and returns `(bins, expected_calibration_error)`.
///
/// ECE is the count-weighted mean absolute gap between predicted and
/// empirical probability — `0` for a perfectly calibrated scorer.
pub fn calibration(
    predictions: &[f64],
    labels: &[bool],
    n_bins: usize,
) -> (Vec<CalibrationBin>, f64) {
    assert_eq!(predictions.len(), labels.len(), "predictions and labels must align");
    assert!(n_bins >= 1, "need at least one bin");
    let mut sums = vec![0.0f64; n_bins];
    let mut pos = vec![0usize; n_bins];
    let mut counts = vec![0usize; n_bins];
    for (&p, &l) in predictions.iter().zip(labels) {
        assert!((0.0..=1.0).contains(&p), "prediction {p} out of [0,1]");
        let b = ((p * n_bins as f64) as usize).min(n_bins - 1);
        sums[b] += p;
        counts[b] += 1;
        if l {
            pos[b] += 1;
        }
    }
    let total: usize = counts.iter().sum();
    let mut bins = Vec::with_capacity(n_bins);
    let mut ece = 0.0;
    for b in 0..n_bins {
        if counts[b] == 0 {
            continue;
        }
        let mean_predicted = sums[b] / counts[b] as f64;
        let empirical = pos[b] as f64 / counts[b] as f64;
        ece += (counts[b] as f64 / total as f64) * (mean_predicted - empirical).abs();
        bins.push(CalibrationBin { mean_predicted, empirical, count: counts[b] });
    }
    (bins, ece)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_ci_brackets_estimate() {
        let outcomes: Vec<f64> = (0..200).map(|i| if i % 4 == 0 { 0.0 } else { 1.0 }).collect();
        let ci = bootstrap_mean_ci(&outcomes, 0.95, 500, 1);
        assert!((ci.estimate - 0.75).abs() < 1e-12);
        assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
        assert!(ci.upper - ci.lower < 0.2, "CI width plausible for n=200");
        assert!(ci.lower > 0.6 && ci.upper < 0.9);
    }

    #[test]
    fn bootstrap_ci_degenerate_sample() {
        let ci = bootstrap_mean_ci(&[1.0; 50], 0.9, 200, 2);
        assert_eq!(ci.estimate, 1.0);
        assert_eq!(ci.lower, 1.0);
        assert_eq!(ci.upper, 1.0);
    }

    #[test]
    fn perfectly_calibrated_scorer_has_zero_ece() {
        // Predictions equal to base rates within two groups.
        let mut preds = Vec::new();
        let mut labels = Vec::new();
        for i in 0..1000 {
            preds.push(0.25);
            labels.push(i % 4 == 0);
            preds.push(0.75);
            labels.push(i % 4 != 0);
        }
        let (bins, ece) = calibration(&preds, &labels, 10);
        assert!(ece < 0.01, "ECE {ece}");
        assert!(bins.len() >= 2);
    }

    #[test]
    fn overconfident_scorer_has_high_ece() {
        // Predicts 0.99 on a 50/50 outcome.
        let preds = vec![0.99; 400];
        let labels: Vec<bool> = (0..400).map(|i| i % 2 == 0).collect();
        let (_, ece) = calibration(&preds, &labels, 10);
        assert!(ece > 0.4, "ECE {ece}");
    }

    #[test]
    fn bins_partition_all_samples() {
        let preds = vec![0.05, 0.5, 0.51, 0.95, 1.0, 0.0];
        let labels = vec![false, true, false, true, true, false];
        let (bins, _) = calibration(&preds, &labels, 4);
        let total: usize = bins.iter().map(|b| b.count).sum();
        assert_eq!(total, preds.len());
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_panic() {
        let _ = calibration(&[0.5], &[true, false], 2);
    }
}
