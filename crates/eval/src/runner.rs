//! Experiment harness shared by every figure/table binary: a method
//! registry, the direction-discovery protocol, and JSON result rows.

use dd_baselines::traits::{DirectionalityLearner, TieScorer};
use dd_baselines::{
    HfConfig, HfLearner, LineConfig, LineLearner, RedirectNConfig, RedirectNLearner,
    RedirectTConfig, RedirectTLearner,
};
use dd_graph::sampling::HiddenDirections;
use dd_graph::{MixedSocialNetwork, NodeId};
use dd_runtime::{Pool, Threads};
use dd_telemetry::ObserverHandle;
use deepdirect::{DeepDirect, DeepDirectConfig, DirectionalityModel};
use serde::{Deserialize, Serialize};

/// A directionality-learning method under evaluation.
#[derive(Debug, Clone)]
pub enum Method {
    /// DeepDirect (Sec. 4).
    DeepDirect(DeepDirectConfig),
    /// Handcrafted features + logistic regression (Sec. 3).
    Hf(HfConfig),
    /// LINE node embedding + endpoint concatenation.
    Line(LineConfig),
    /// ReDirect-N/sm.
    RedirectN(RedirectNConfig),
    /// ReDirect-T/sm.
    RedirectT(RedirectTConfig),
}

/// Scorer wrapper for a fitted [`DirectionalityModel`].
pub struct DeepDirectScorer(pub DirectionalityModel);

impl TieScorer for DeepDirectScorer {
    fn score(&self, u: NodeId, v: NodeId) -> f64 {
        self.0.score(u, v).unwrap_or(0.5)
    }
}

impl Method {
    /// Method name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Method::DeepDirect(_) => "DeepDirect",
            Method::Hf(_) => "HF",
            Method::Line(_) => "LINE",
            Method::RedirectN(_) => "ReDirect-N/sm",
            Method::RedirectT(_) => "ReDirect-T/sm",
        }
    }

    /// Fits the method on `g` and returns a directionality scorer.
    pub fn fit(&self, g: &MixedSocialNetwork) -> Box<dyn TieScorer> {
        self.fit_observed(g, &ObserverHandle::none())
    }

    /// [`Method::fit`] with telemetry: the whole fit runs under a
    /// `fit.<method>` span, and DeepDirect additionally gets `obs` injected
    /// into its config so E-Step progress and D-Step epochs land in the same
    /// sink as the harness spans.
    pub fn fit_observed(&self, g: &MixedSocialNetwork, obs: &ObserverHandle) -> Box<dyn TieScorer> {
        let span = obs.span(&format!("fit.{}", self.name()));
        let scorer: Box<dyn TieScorer> = match self {
            Method::DeepDirect(cfg) => {
                let mut cfg = cfg.clone();
                cfg.observer = obs.clone();
                let model = DeepDirect::new(cfg).fit(g);
                Box::new(DeepDirectScorer(model))
            }
            Method::Hf(cfg) => HfLearner::new(cfg.clone()).fit(g),
            Method::Line(cfg) => LineLearner::new(cfg.clone()).fit(g),
            Method::RedirectN(cfg) => RedirectNLearner::new(cfg.clone()).fit(g),
            Method::RedirectT(cfg) => RedirectTLearner::new(cfg.clone()).fit(g),
        };
        span.finish();
        scorer
    }

    /// The full five-method suite of the paper's comparison at
    /// bench-friendly parameters (dimensions scaled down from the paper's
    /// 128 to keep the full evaluation matrix tractable; the ratio between
    /// methods follows Sec. 6.1 — LINE gets half DeepDirect's dimension,
    /// ReDirect-N gets `Z = 40`).
    pub fn suite(dim: usize, seed: u64) -> Vec<Method> {
        vec![
            Method::DeepDirect(DeepDirectConfig { dim, seed, ..Default::default() }),
            Method::Hf(HfConfig::default()),
            Method::Line(LineConfig { dim: dim / 2, seed, ..Default::default() }),
            Method::RedirectN(RedirectNConfig { seed, ..Default::default() }),
            Method::RedirectT(RedirectTConfig::default()),
        ]
    }
}

/// Runs the direction-discovery protocol (Sec. 6.2): fit on the hidden
/// network, predict every undirected tie per Eq. 28, return accuracy.
pub fn direction_discovery_accuracy(method: &Method, hidden: &HiddenDirections) -> f64 {
    direction_discovery_accuracy_observed(method, hidden, &ObserverHandle::none())
}

/// [`direction_discovery_accuracy`] with fit and prediction phases timed
/// through `obs` (spans `fit.<method>` and `eval.discovery`).
pub fn direction_discovery_accuracy_observed(
    method: &Method,
    hidden: &HiddenDirections,
    obs: &ObserverHandle,
) -> f64 {
    let scorer = method.fit_observed(&hidden.network, obs);
    let (acc, _) = obs.time("eval.discovery", || scorer_accuracy(scorer.as_ref(), hidden));
    acc
}

/// Runs the direction-discovery protocol for several methods concurrently
/// on `threads` workers, returning `(name, accuracy)` in input order.
///
/// Each method's fit is independent (fits share only the read-only hidden
/// network), so the result is identical at any thread count as long as each
/// individual fit is deterministic (keep per-method `threads == 1` configs
/// when comparing runs; see DESIGN.md §7.9 for the Hogwild exemption).
pub fn evaluate_methods(
    methods: &[Method],
    hidden: &HiddenDirections,
    threads: Threads,
    obs: &ObserverHandle,
) -> Vec<(&'static str, f64)> {
    let pool = Pool::new("eval.methods", threads);
    pool.par_map(methods.len(), |i| {
        (methods[i].name(), direction_discovery_accuracy_observed(&methods[i], hidden, obs))
    })
}

/// Accuracy of an already-fitted scorer under the protocol of Sec. 6.2.
pub fn scorer_accuracy(scorer: &dyn TieScorer, hidden: &HiddenDirections) -> f64 {
    use deepdirect::apps::discovery::{discover_directions, discovery_accuracy};
    let preds = discover_directions(&hidden.network, |u, v| scorer.score(u, v));
    discovery_accuracy(&preds, &hidden.truth)
}

/// One experiment result row, serialized as JSON lines so EXPERIMENTS.md can
/// quote exact values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRow {
    /// Experiment id, e.g. `"fig3"`.
    pub experiment: String,
    /// Dataset name.
    pub dataset: String,
    /// Method name.
    pub method: String,
    /// X-axis parameter name (e.g. `"percent_directed"`).
    pub x_name: String,
    /// X-axis value.
    pub x: f64,
    /// Measured value (accuracy, AUC, seconds, …).
    pub value: f64,
    /// Random seed used.
    pub seed: u64,
}

/// Collects rows and renders/persists them.
#[derive(Debug, Default)]
pub struct ResultSink {
    rows: Vec<ExperimentRow>,
}

impl ResultSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a row (also echoed to stdout as a progress line).
    pub fn push(&mut self, row: ExperimentRow) {
        println!(
            "  {} | {} | {} | {}={:.3} -> {:.4}",
            row.experiment, row.dataset, row.method, row.x_name, row.x, row.value
        );
        self.rows.push(row);
    }

    /// All collected rows.
    pub fn rows(&self) -> &[ExperimentRow] {
        &self.rows
    }

    /// Writes rows as JSON lines to `path` (creating parent directories).
    pub fn write_jsonl(&self, path: &str) -> std::io::Result<()> {
        if let Some(parent) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&serde_json::to_string(row).expect("rows serialize"));
            out.push('\n');
        }
        std::fs::write(path, out)
    }

    /// Renders a `dataset × method` pivot for one x value as an ASCII table.
    pub fn pivot_table(&self, experiment: &str, x: f64) -> String {
        let mut datasets: Vec<&str> = Vec::new();
        let mut methods: Vec<&str> = Vec::new();
        for r in &self.rows {
            if r.experiment == experiment && (r.x - x).abs() < 1e-9 {
                if !datasets.contains(&r.dataset.as_str()) {
                    datasets.push(&r.dataset);
                }
                if !methods.contains(&r.method.as_str()) {
                    methods.push(&r.method);
                }
            }
        }
        let mut s = format!("{experiment} @ x={x}\n{:<14}", "dataset");
        for m in &methods {
            s.push_str(&format!("{m:>16}"));
        }
        s.push('\n');
        for d in &datasets {
            s.push_str(&format!("{d:<14}"));
            for m in &methods {
                let v = self
                    .rows
                    .iter()
                    .find(|r| {
                        r.experiment == experiment
                            && r.dataset == *d
                            && r.method == *m
                            && (r.x - x).abs() < 1e-9
                    })
                    .map(|r| r.value);
                match v {
                    Some(v) => s.push_str(&format!("{v:>16.4}")),
                    None => s.push_str(&format!("{:>16}", "-")),
                }
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_graph::generators::{social_network, SocialNetConfig};
    use dd_graph::sampling::hide_directions;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn suite_has_five_methods() {
        let suite = Method::suite(32, 1);
        assert_eq!(suite.len(), 5);
        let names: Vec<&str> = suite.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["DeepDirect", "HF", "LINE", "ReDirect-N/sm", "ReDirect-T/sm"]);
    }

    #[test]
    fn discovery_protocol_runs_for_fast_methods() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = social_network(&SocialNetConfig { n_nodes: 120, ..Default::default() }, &mut rng)
            .network;
        let hidden = hide_directions(&g, 0.5, &mut rng);
        let m = Method::Hf(HfConfig::default());
        let acc = direction_discovery_accuracy(&m, &hidden);
        assert!((0.0..=1.0).contains(&acc));
        assert!(acc > 0.5, "HF beats chance: {acc}");
    }

    #[test]
    fn evaluate_methods_parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = social_network(&SocialNetConfig { n_nodes: 100, ..Default::default() }, &mut rng)
            .network;
        let hidden = hide_directions(&g, 0.5, &mut rng);
        let methods = vec![
            Method::Hf(HfConfig::default()),
            Method::RedirectN(RedirectNConfig::default()),
            Method::RedirectT(RedirectTConfig::default()),
        ];
        let obs = ObserverHandle::none();
        let serial = evaluate_methods(&methods, &hidden, Threads::serial(), &obs);
        let parallel = evaluate_methods(&methods, &hidden, Threads::new(4).unwrap(), &obs);
        assert_eq!(serial.len(), 3);
        for ((n1, a1), (n2, a2)) in serial.iter().zip(&parallel) {
            assert_eq!(n1, n2);
            assert_eq!(a1.to_bits(), a2.to_bits(), "{n1}");
        }
    }

    #[test]
    fn observed_fit_emits_method_span_and_forwards_observer() {
        use dd_telemetry::{Event, TrainObserver};
        use std::sync::{Arc, Mutex};

        #[derive(Default)]
        struct Capture(Mutex<Vec<Event>>);
        impl TrainObserver for Capture {
            fn on_event(&self, e: &Event) {
                self.0.lock().unwrap().push(e.clone());
            }
        }

        let mut rng = StdRng::seed_from_u64(9);
        let g = social_network(&SocialNetConfig { n_nodes: 80, ..Default::default() }, &mut rng)
            .network;
        let hidden = hide_directions(&g, 0.5, &mut rng);
        let cap = Arc::new(Capture::default());
        let obs = ObserverHandle::new(cap.clone());

        let mut cfg = DeepDirectConfig::fast();
        cfg.dim = 8;
        cfg.max_iterations = Some(3_000);
        let acc = direction_discovery_accuracy_observed(&Method::DeepDirect(cfg), &hidden, &obs);
        assert!((0.0..=1.0).contains(&acc));

        let events = cap.0.lock().unwrap();
        let spans: Vec<&str> = events
            .iter()
            .filter(|e| e.kind == dd_telemetry::kind::SPAN)
            .filter_map(|e| e.name.as_deref())
            .collect();
        assert!(spans.contains(&"fit.DeepDirect"), "method span missing: {spans:?}");
        assert!(spans.contains(&"estep.train"), "observer not forwarded into config");
        assert!(spans.contains(&"eval.discovery"), "eval span missing: {spans:?}");
        assert!(
            events.iter().any(|e| e.kind == dd_telemetry::kind::ESTEP_SUMMARY),
            "E-Step summary should flow to the harness sink"
        );
    }

    #[test]
    fn sink_round_trips_and_pivots() {
        let mut sink = ResultSink::new();
        for (d, m, v) in [("A", "HF", 0.7), ("A", "LINE", 0.6), ("B", "HF", 0.8)] {
            sink.push(ExperimentRow {
                experiment: "fig3".into(),
                dataset: d.into(),
                method: m.into(),
                x_name: "pct".into(),
                x: 0.5,
                value: v,
                seed: 1,
            });
        }
        assert_eq!(sink.rows().len(), 3);
        let table = sink.pivot_table("fig3", 0.5);
        assert!(table.contains("HF"));
        assert!(table.contains("0.7000"));
        assert!(table.contains('-'), "missing cell renders as dash");
        let dir = std::env::temp_dir().join("dd_eval_sink_test");
        let path = dir.join("rows.jsonl").to_string_lossy().to_string();
        sink.write_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        let row: ExperimentRow = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(row.method, "HF");
        std::fs::remove_file(&path).ok();
    }
}
