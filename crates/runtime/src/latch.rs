//! A condvar-backed counting latch for completion signalling.
//!
//! Replaces the sleep-poll loops that previously watched an `AtomicUsize`
//! "finished workers" counter: waiters park on a condition variable and are
//! woken the moment the last worker arrives, instead of rediscovering
//! completion up to one poll interval late.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A one-shot countdown latch.
///
/// Created with a count of expected arrivals; [`Latch::arrive`] decrements
/// it, and waiters block until the count reaches zero. Workers should hold a
/// [`LatchGuard`] (from [`Latch::guard`]) so the arrival is signalled even
/// if the worker body panics — otherwise a waiter would park forever.
pub struct Latch {
    remaining: Mutex<usize>,
    released: Condvar,
}

impl Latch {
    /// Creates a latch expecting `count` arrivals. A zero count is already
    /// released.
    pub fn new(count: usize) -> Self {
        Latch { remaining: Mutex::new(count), released: Condvar::new() }
    }

    /// Records one arrival, waking all waiters if it was the last.
    pub fn arrive(&self) {
        let mut remaining = self.remaining.lock().expect("latch poisoned");
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            self.released.notify_all();
        }
    }

    /// Returns a guard that arrives when dropped (including on panic).
    pub fn guard(&self) -> LatchGuard<'_> {
        LatchGuard { latch: self }
    }

    /// True once every expected arrival has happened.
    pub fn is_released(&self) -> bool {
        *self.remaining.lock().expect("latch poisoned") == 0
    }

    /// Parks until the latch is released.
    pub fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("latch poisoned");
        while *remaining > 0 {
            remaining = self.released.wait(remaining).expect("latch poisoned");
        }
    }

    /// Parks for at most `timeout`; returns true if the latch is released.
    ///
    /// Unlike a sleep-poll this wakes immediately on the final arrival, so
    /// a generous timeout costs nothing in completion latency — it only
    /// bounds how often a monitor loop gets a chance to do periodic work.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let mut remaining = self.remaining.lock().expect("latch poisoned");
        if *remaining == 0 {
            return true;
        }
        let (guard, _result) =
            self.released.wait_timeout(remaining, timeout).expect("latch poisoned");
        remaining = guard;
        *remaining == 0
    }
}

/// Arrival guard returned by [`Latch::guard`].
pub struct LatchGuard<'a> {
    latch: &'a Latch,
}

impl Drop for LatchGuard<'_> {
    fn drop(&mut self) {
        self.latch.arrive();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_count_is_released() {
        let latch = Latch::new(0);
        assert!(latch.is_released());
        latch.wait();
        assert!(latch.wait_timeout(Duration::from_millis(1)));
    }

    #[test]
    fn releases_after_all_arrivals() {
        let latch = Latch::new(2);
        latch.arrive();
        assert!(!latch.is_released());
        assert!(!latch.wait_timeout(Duration::from_millis(1)));
        latch.arrive();
        assert!(latch.is_released());
        latch.wait();
    }

    #[test]
    fn guard_arrives_on_drop() {
        let latch = Latch::new(1);
        {
            let _guard = latch.guard();
            assert!(!latch.is_released());
        }
        assert!(latch.is_released());
    }

    #[test]
    fn wakes_waiter_across_threads() {
        let latch = Latch::new(1);
        std::thread::scope(|s| {
            s.spawn(|| {
                latch.arrive();
            });
            latch.wait();
        });
        assert!(latch.is_released());
    }
}
