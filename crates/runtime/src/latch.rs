//! A condvar-backed counting latch for completion signalling.
//!
//! Replaces the sleep-poll loops that previously watched an `AtomicUsize`
//! "finished workers" counter: waiters park on a condition variable and are
//! woken the moment the last worker arrives, instead of rediscovering
//! completion up to one poll interval late.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// A one-shot countdown latch.
///
/// Created with a count of expected arrivals; [`Latch::arrive`] decrements
/// it, and waiters block until the count reaches zero. Workers should hold a
/// [`LatchGuard`] (from [`Latch::guard`]) so the arrival is signalled even
/// if the worker body panics — otherwise a waiter would park forever.
pub struct Latch {
    remaining: Mutex<usize>,
    released: Condvar,
}

impl Latch {
    /// Creates a latch expecting `count` arrivals. A zero count is already
    /// released.
    pub fn new(count: usize) -> Self {
        Latch { remaining: Mutex::new(count), released: Condvar::new() }
    }

    /// Locks the counter, recovering from poison: every critical section in
    /// this module is a single read or write of the `usize`, which cannot be
    /// left half-updated by a panicking holder, so the data is always
    /// consistent and the poison flag carries no information.
    fn lock_counter(&self) -> MutexGuard<'_, usize> {
        self.remaining.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Records one arrival, waking all waiters if it was the last.
    pub fn arrive(&self) {
        let mut remaining = self.lock_counter();
        *remaining = remaining.saturating_sub(1);
        if *remaining == 0 {
            self.released.notify_all();
        }
    }

    /// Returns a guard that arrives when dropped (including on panic).
    pub fn guard(&self) -> LatchGuard<'_> {
        LatchGuard { latch: self }
    }

    /// True once every expected arrival has happened.
    pub fn is_released(&self) -> bool {
        *self.lock_counter() == 0
    }

    /// Parks until the latch is released.
    pub fn wait(&self) {
        let mut remaining = self.lock_counter();
        while *remaining > 0 {
            remaining =
                self.released.wait(remaining).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Parks for at most `timeout`; returns true if the latch is released.
    ///
    /// Unlike a sleep-poll this wakes immediately on the final arrival, so
    /// a generous timeout costs nothing in completion latency — it only
    /// bounds how often a monitor loop gets a chance to do periodic work.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let mut remaining = self.lock_counter();
        if *remaining == 0 {
            return true;
        }
        let (guard, _result) = self
            .released
            .wait_timeout(remaining, timeout)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        remaining = guard;
        *remaining == 0
    }
}

/// Arrival guard returned by [`Latch::guard`].
pub struct LatchGuard<'a> {
    latch: &'a Latch,
}

impl Drop for LatchGuard<'_> {
    fn drop(&mut self) {
        self.latch.arrive();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_count_is_released() {
        let latch = Latch::new(0);
        assert!(latch.is_released());
        latch.wait();
        assert!(latch.wait_timeout(Duration::from_millis(1)));
    }

    #[test]
    fn releases_after_all_arrivals() {
        let latch = Latch::new(2);
        latch.arrive();
        assert!(!latch.is_released());
        assert!(!latch.wait_timeout(Duration::from_millis(1)));
        latch.arrive();
        assert!(latch.is_released());
        latch.wait();
    }

    #[test]
    fn guard_arrives_on_drop() {
        let latch = Latch::new(1);
        {
            let _guard = latch.guard();
            assert!(!latch.is_released());
        }
        assert!(latch.is_released());
    }

    #[test]
    fn wakes_waiter_across_threads() {
        let latch = Latch::new(1);
        std::thread::scope(|s| {
            s.spawn(|| {
                latch.arrive();
            });
            latch.wait();
        });
        assert!(latch.is_released());
    }
}
