//! Thread-count configuration resolved from CLI flags and the environment.

use std::fmt;
use std::num::NonZeroUsize;

/// A validated worker-thread count.
///
/// The inner value is [`NonZeroUsize`], so a `Threads` in hand is proof that
/// the zero-thread configuration error has already been rejected. Construct
/// one with [`Threads::new`] (explicit count) or [`Threads::resolve`] (CLI
/// flag falling back to the `DD_THREADS` environment variable, then serial).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Threads(NonZeroUsize);

impl Threads {
    /// Environment variable consulted by [`Threads::resolve`] when no
    /// explicit flag is given.
    pub const ENV: &'static str = "DD_THREADS";

    /// The single-threaded configuration.
    pub const fn serial() -> Self {
        // SAFETY-free const construction: 1 is trivially non-zero.
        Threads(NonZeroUsize::MIN)
    }

    /// Validates an explicit thread count. Zero is a configuration error.
    pub fn new(n: usize) -> Result<Self, String> {
        NonZeroUsize::new(n)
            .map(Threads)
            .ok_or_else(|| "thread count must be at least 1".to_string())
    }

    /// Resolves a thread count with the precedence: explicit flag value,
    /// then the `DD_THREADS` environment variable, then serial.
    ///
    /// Both sources reject zero and (for the variable) anything that is not
    /// a positive integer, so a typo fails loudly instead of silently
    /// running serial.
    pub fn resolve(flag: Option<usize>) -> Result<Self, String> {
        if let Some(n) = flag {
            return Self::new(n).map_err(|e| format!("--threads: {e}"));
        }
        match std::env::var(Self::ENV) {
            Ok(raw) => raw
                .trim()
                .parse::<usize>()
                .ok()
                .and_then(NonZeroUsize::new)
                .map(Threads)
                .ok_or_else(|| format!("{}: expected a positive integer, got {raw:?}", Self::ENV)),
            Err(_) => Ok(Self::serial()),
        }
    }

    /// The thread count as a plain integer (always >= 1).
    pub fn get(self) -> usize {
        self.0.get()
    }

    /// True when this configuration runs on the calling thread only.
    pub fn is_serial(self) -> bool {
        self.0.get() == 1
    }
}

impl Default for Threads {
    fn default() -> Self {
        Threads::serial()
    }
}

impl fmt::Display for Threads {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<usize> for Threads {
    type Error = String;

    fn try_from(n: usize) -> Result<Self, Self::Error> {
        Threads::new(n)
    }
}

impl From<Threads> for usize {
    fn from(t: Threads) -> usize {
        t.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero() {
        assert!(Threads::new(0).is_err());
        assert!(Threads::resolve(Some(0)).is_err());
    }

    #[test]
    fn explicit_flag_wins() {
        let t = Threads::resolve(Some(6)).unwrap();
        assert_eq!(t.get(), 6);
        assert!(!t.is_serial());
    }

    #[test]
    fn serial_default() {
        assert!(Threads::serial().is_serial());
        assert_eq!(Threads::default().get(), 1);
        assert_eq!(Threads::serial().to_string(), "1");
    }

    #[test]
    fn conversions_roundtrip() {
        let t = Threads::try_from(3).unwrap();
        assert_eq!(usize::from(t), 3);
    }
}
