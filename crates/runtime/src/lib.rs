//! dd-runtime: the workspace's shared parallel execution layer.
//!
//! Before this crate, parallelism in DeepDirect-rs was three incompatible
//! ad-hoc islands (a hand-rolled Hogwild `thread::scope` in the E-step, a
//! bespoke worker pool in `dd-serve`, and nothing anywhere else). This
//! crate is the single substrate they all share:
//!
//! - [`Threads`] — a validated thread-count config resolved from
//!   `--threads` / the `DD_THREADS` environment variable.
//! - [`Pool`] — scoped data-parallel execution ([`Pool::par_chunks_mut`],
//!   [`Pool::par_map`], [`Pool::par_map_reduce`]) with a **determinism
//!   contract**: chunk structure depends only on the input size and
//!   reductions combine per-chunk results sequentially in chunk order, so
//!   floating-point outputs are bit-identical at any thread count.
//! - [`split_streams`] — per-chunk [`dd_linalg::Pcg32`] RNG streams derived
//!   deterministically from one root generator, so randomized stages keep
//!   the same contract.
//! - [`Latch`] — a condvar-based completion signal (parking, not
//!   sleep-polling) for monitor threads.
//! - [`WorkerPool`] / [`spawn_named`] — long-lived named service threads.
//! - [`scope`] — re-export of [`std::thread::scope`] for the one consumer
//!   (the Hogwild E-step) that needs raw scoped threads with shared mutable
//!   parameter access; routing it through this crate keeps every thread
//!   entry point in the workspace under one roof.
//!
//! See `examples/runtime_demo.rs` (run with
//! `cargo run --example runtime_demo -p dd-runtime`) for a worked example
//! of [`Pool::par_map_reduce`] with split RNG streams, and DESIGN.md §7.9
//! for the full determinism contract and which pipeline stages opt out
//! (Hogwild SGD, intentionally).
//!
//! The crate is std-only, like the rest of the workspace.

mod latch;
mod pool;
mod threads;
mod worker;

pub use latch::{Latch, LatchGuard};
pub use pool::{chunk_size, split_streams, Pool, PoolStats};
pub use threads::Threads;
pub use worker::{spawn_named, WorkerPool};

/// Scoped-thread escape hatch; see the crate docs for when this is
/// appropriate (almost never — prefer [`Pool`]).
pub use std::thread::scope;
/// The scope handle type passed to [`scope`] closures.
pub use std::thread::Scope;
