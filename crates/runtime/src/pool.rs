//! Deterministic data-parallel execution over fixed chunk structures.
//!
//! The determinism contract: every parallel operation partitions its input
//! into chunks whose boundaries depend only on the input size — never on the
//! thread count — and combines per-chunk results *sequentially in chunk
//! order*. Floating-point reductions therefore associate identically whether
//! the pool runs 1 thread or 8, and outputs are bit-identical at any thread
//! count. (They may differ from a pre-chunking serial implementation, which
//! associated element-by-element; that is a one-time change, not a source of
//! run-to-run variance.)

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use dd_linalg::Pcg32;
use dd_telemetry::trace::{derive_span_id, now_seconds, SpanContext};
use dd_telemetry::{Event, ObserverHandle};

use crate::Threads;

/// Default chunk size for `n` work items: at most 64 chunks, at least one
/// item per chunk. Depends only on `n`, which is what makes results
/// independent of the thread count.
pub fn chunk_size(n: usize) -> usize {
    n.div_ceil(64).max(1)
}

/// Derives `n` independent [`Pcg32`] streams from a root generator.
///
/// The streams are drawn from `root` sequentially (stream `i` is
/// `root.split(i)`), so the resulting vector depends only on the root state
/// and `n` — hand stream `i` to chunk `i` and randomized parallel stages
/// stay deterministic at any thread count.
pub fn split_streams(root: &mut Pcg32, n: usize) -> Vec<Pcg32> {
    (0..n).map(|i| root.split(i as u64)).collect()
}

/// Counters accumulated by a [`Pool`] across its parallel calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolStats {
    /// Configured worker count.
    pub threads: usize,
    /// Number of parallel operations executed.
    pub calls: u64,
    /// Number of work chunks processed.
    pub chunks: u64,
    /// Total time workers spent inside chunk bodies, summed over workers.
    pub busy_seconds: f64,
    /// Total wall-clock time spent inside parallel operations.
    pub wall_seconds: f64,
}

impl PoolStats {
    /// Fraction of available worker time spent busy: `busy / (wall *
    /// threads)`. Zero before any work has run; near 1.0 means the
    /// configured threads were saturated.
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall_seconds * self.threads as f64;
        if capacity > 0.0 {
            self.busy_seconds / capacity
        } else {
            0.0
        }
    }
}

/// A scoped worker pool with a fixed thread budget and usage counters.
///
/// `Pool` spawns scoped threads per call rather than keeping workers parked:
/// every parallel region in this workspace is coarse enough (BFS per source,
/// thousands of SGD steps, a model fit per grid cell) that spawn cost is
/// noise, and scoped threads keep the API free of `'static` bounds. For
/// long-lived detached workers (the serve request pool) see
/// [`crate::WorkerPool`].
pub struct Pool {
    label: String,
    threads: Threads,
    calls: AtomicU64,
    chunks: AtomicU64,
    busy_nanos: AtomicU64,
    wall_nanos: AtomicU64,
    trace: Mutex<Option<TraceTarget>>,
}

/// Where a traced pool reports its call/chunk spans.
#[derive(Clone)]
struct TraceTarget {
    obs: ObserverHandle,
    ctx: SpanContext,
}

impl Pool {
    /// Creates a pool labelled `label` (used in telemetry) running at most
    /// `threads` workers per call.
    pub fn new(label: &str, threads: Threads) -> Self {
        Pool {
            label: label.to_string(),
            threads,
            calls: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
            busy_nanos: AtomicU64::new(0),
            wall_nanos: AtomicU64::new(0),
            trace: Mutex::new(None),
        }
    }

    /// Attaches a trace context: subsequent parallel calls emit a
    /// `pool.<label>` span as a child of `ctx`, plus one
    /// `pool.<label>.chunk` child span per work chunk (tagged with the
    /// worker's thread index). Span IDs are derived from the call counter
    /// and chunk offsets, so the trace *tree* is identical across runs and
    /// thread counts; only the timing values and JSONL line order vary.
    /// Tracing is observational: it never changes chunk structure or
    /// reduction order (DESIGN.md §7.12).
    pub fn set_trace(&self, obs: ObserverHandle, ctx: SpanContext) {
        if obs.is_enabled() {
            *self.trace.lock().unwrap_or_else(|p| p.into_inner()) = Some(TraceTarget { obs, ctx });
        }
    }

    /// Detaches the trace context; subsequent calls emit nothing.
    pub fn clear_trace(&self) {
        *self.trace.lock().unwrap_or_else(|p| p.into_inner()) = None;
    }

    fn trace_target(&self) -> Option<TraceTarget> {
        self.trace.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// The telemetry label given at construction.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The configured thread budget.
    pub fn threads(&self) -> Threads {
        self.threads
    }

    /// A snapshot of the pool's usage counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads: self.threads.get(),
            calls: self.calls.load(Ordering::Relaxed),
            chunks: self.chunks.load(Ordering::Relaxed),
            busy_seconds: self.busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            wall_seconds: self.wall_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
        }
    }

    /// Runs `f(offset, chunk)` over `data` split into chunks of `chunk`
    /// elements (the last may be shorter). `offset` is the index of the
    /// chunk's first element in `data`.
    ///
    /// Chunk boundaries depend only on `data.len()` and `chunk`; workers
    /// pull chunks from a shared queue, so any thread may run any chunk,
    /// but each chunk sees exactly the same slice regardless of thread
    /// count.
    ///
    /// # Panics
    /// If a chunk body panics, the panic is re-thrown on the calling
    /// thread (first panic wins; remaining chunks are abandoned). The pool
    /// itself stays usable: the queue is never deadlocked, sibling workers
    /// finish their current chunk, and the stats counters are not
    /// poisoned.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        // dd-lint: allow(determinism) — wall-clock stats counter only; chunk
        // boundaries and results depend solely on data.len() and chunk
        // (see DESIGN.md §7.11 exemptions)
        let wall_start = Instant::now();
        let call_index = self.calls.fetch_add(1, Ordering::Relaxed);
        let n = data.len();
        let n_chunks = n.div_ceil(chunk);
        let workers = self.threads.get().min(n_chunks);
        // Trace bookkeeping (None on the untraced fast path). Span IDs are
        // derived from the call counter and chunk offsets — logical inputs
        // only — so the emitted trace tree is reproducible even though the
        // timings inside it are not.
        let trace = self.trace_target();
        let call_name = format!("pool.{}", self.label);
        let call_span_id = trace
            .as_ref()
            .map(|t| derive_span_id(t.ctx.trace_id, t.ctx.span_id, &call_name, call_index));
        let call_start = trace.as_ref().map(|_| now_seconds());
        let call_busy_nanos = AtomicU64::new(0);
        // A chunk-body panic must reach the caller (a silently dropped
        // chunk would be data corruption), but it must not deadlock the
        // queue, kill sibling workers mid-chunk, or poison the stats
        // counters. Each chunk body runs under `catch_unwind`; the first
        // payload is stashed here and re-thrown from the *calling* thread
        // after the scope joins and the counters are settled.
        let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let panicked = AtomicBool::new(false);
        let run_chunk = |thread: usize, offset: usize, slice: &mut [T]| {
            // dd-lint: allow(determinism) — busy-time stats counter only,
            // never read by the chunk body (see DESIGN.md §7.11 exemptions)
            let busy_start = Instant::now();
            let chunk_start = trace.as_ref().map(|_| now_seconds());
            let result = catch_unwind(AssertUnwindSafe(|| f(offset, slice)));
            let busy = busy_start.elapsed().as_nanos() as u64;
            self.busy_nanos.fetch_add(busy, Ordering::Relaxed);
            call_busy_nanos.fetch_add(busy, Ordering::Relaxed);
            if let (Some(t), Some(call_sid)) = (&trace, call_span_id) {
                let chunk_name = format!("{call_name}.chunk");
                let sid = derive_span_id(t.ctx.trace_id, call_sid, &chunk_name, offset as u64);
                let mut e = Event::span(&chunk_name, Some(&call_name), busy as f64 * 1e-9)
                    .with_trace(t.ctx.trace_id, sid, Some(call_sid));
                e.start_seconds = chunk_start;
                e.thread = Some(thread as u64);
                t.obs.on_event(&e);
            }
            if let Err(payload) = result {
                panicked.store(true, Ordering::SeqCst);
                // Poison recovery: the critical section is a single
                // `get_or_insert`, which cannot leave the Option
                // half-written, so a poisoned flag carries no information.
                let mut slot = first_panic.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                slot.get_or_insert(payload);
            }
        };
        if workers <= 1 {
            for (ci, slice) in data.chunks_mut(chunk).enumerate() {
                if panicked.load(Ordering::SeqCst) {
                    break;
                }
                run_chunk(0, ci * chunk, slice);
            }
        } else {
            // A LIFO queue of (offset, slice) tasks. Completion order is
            // irrelevant: results land in the caller's slices, whose
            // positions are fixed by the chunk structure.
            let mut tasks: Vec<(usize, &mut [T])> =
                data.chunks_mut(chunk).enumerate().map(|(ci, slice)| (ci * chunk, slice)).collect();
            tasks.reverse();
            let queue = Mutex::new(tasks);
            std::thread::scope(|s| {
                for w in 0..workers {
                    let run_chunk = &run_chunk;
                    let queue = &queue;
                    let panicked = &panicked;
                    s.spawn(move || {
                        loop {
                            // Once a chunk has panicked the operation's
                            // result is void; stop draining the queue so
                            // the caller sees the panic promptly.
                            if panicked.load(Ordering::SeqCst) {
                                break;
                            }
                            // Bind the popped task through a `let` so the
                            // MutexGuard (a temporary of this statement) is
                            // dropped *before* f runs; matching on the lock
                            // expression directly in a `while let` would
                            // keep the guard alive across the body and
                            // serialize the whole pool.
                            // Poison recovery: chunk bodies run under
                            // `catch_unwind`, so the only code that can
                            // panic while holding this lock is `Vec::pop`,
                            // which never does; the queue stays consistent.
                            let task =
                                queue.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).pop();
                            let Some((offset, slice)) = task else { break };
                            run_chunk(w, offset, slice);
                        }
                    });
                }
            });
        }
        self.chunks.fetch_add(n_chunks as u64, Ordering::Relaxed);
        let wall = wall_start.elapsed();
        self.wall_nanos.fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
        if let (Some(t), Some(call_sid)) = (&trace, call_span_id) {
            let mut e = Event::span(&call_name, None, wall.as_secs_f64()).with_trace(
                t.ctx.trace_id,
                call_sid,
                Some(t.ctx.span_id),
            );
            e.start_seconds = call_start;
            e.busy_seconds = Some(call_busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9);
            t.obs.on_event(&e);
        }
        let payload = first_panic.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Computes `f(i)` for every `i in 0..n`, returning results in index
    /// order. Uses the default [`chunk_size`] partition.
    pub fn par_map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        self.par_chunks_mut(&mut slots, chunk_size(n), |offset, chunk| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = Some(f(offset + j));
            }
        });
        // dd-lint: allow(panic-hygiene) — every index is covered by exactly
        // one chunk; an empty slot is a pool bug worth a loud crash
        slots.into_iter().map(|slot| slot.expect("par_map chunk left a slot unfilled")).collect()
    }

    /// Maps each chunk range of `0..n` through `map` and folds the per-chunk
    /// results with `reduce` **sequentially in chunk order**, which is what
    /// keeps floating-point reductions bit-identical at any thread count.
    /// Returns `None` when `n == 0`.
    pub fn par_map_reduce<A, M, R>(&self, n: usize, chunk: usize, map: M, reduce: R) -> Option<A>
    where
        A: Send,
        M: Fn(Range<usize>) -> A + Sync,
        R: FnMut(A, A) -> A,
    {
        assert!(chunk > 0, "chunk size must be positive");
        if n == 0 {
            return None;
        }
        let n_chunks = n.div_ceil(chunk);
        let mut parts: Vec<Option<A>> = Vec::with_capacity(n_chunks);
        parts.resize_with(n_chunks, || None);
        // One task per chunk of the *input*; each slot receives the mapped
        // value for its fixed range.
        self.par_chunks_mut(&mut parts, 1, |ci, slot| {
            let start = ci * chunk;
            let end = (start + chunk).min(n);
            slot[0] = Some(map(start..end));
        });
        let mut parts = parts
            .into_iter()
            // dd-lint: allow(panic-hygiene) — each chunk writes its own slot
            // before returning; an empty slot is a pool bug worth a loud crash
            .map(|p| p.expect("par_map_reduce chunk left a slot unfilled"));
        let first = parts.next()?;
        Some(parts.fold(first, reduce))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(threads: usize) -> Pool {
        Pool::new("test", Threads::new(threads).unwrap())
    }

    #[test]
    fn chunk_size_depends_only_on_n() {
        assert_eq!(chunk_size(0), 1);
        assert_eq!(chunk_size(1), 1);
        assert_eq!(chunk_size(64), 1);
        assert_eq!(chunk_size(65), 2);
        assert_eq!(chunk_size(6_400), 100);
    }

    #[test]
    fn par_chunks_mut_visits_every_element_once() {
        for threads in [1, 2, 8] {
            let mut data = vec![0u32; 1000];
            pool(threads).par_chunks_mut(&mut data, 7, |offset, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x += (offset + j) as u32;
                }
            });
            let expect: Vec<u32> = (0..1000).collect();
            assert_eq!(data, expect, "threads={threads}");
        }
    }

    #[test]
    fn workers_run_chunks_concurrently() {
        // Regression test: popping the task queue must not hold the mutex
        // guard across the chunk body, or every worker serializes. Four
        // workers each sleep inside a chunk; if chunks ever overlap, the
        // high-water mark of concurrently-active bodies exceeds 1. Sleeping
        // threads need no core, so this holds even on a 1-CPU runner.
        use std::sync::atomic::AtomicUsize;
        use std::time::Duration;
        let active = AtomicUsize::new(0);
        let high_water = AtomicUsize::new(0);
        let mut data = vec![0u8; 4];
        pool(4).par_chunks_mut(&mut data, 1, |_, _| {
            let now = active.fetch_add(1, Ordering::SeqCst) + 1;
            high_water.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(50));
            active.fetch_sub(1, Ordering::SeqCst);
        });
        let peak = high_water.load(Ordering::SeqCst);
        assert!(peak > 1, "chunk bodies never overlapped (peak concurrency {peak})");
    }

    #[test]
    fn chunk_panic_propagates_without_poisoning_the_pool() {
        for threads in [1, 4] {
            let p = pool(threads);
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut data = vec![0u32; 100];
                p.par_chunks_mut(&mut data, 5, |offset, _| {
                    if offset == 50 {
                        panic!("injected chunk panic");
                    }
                });
            }));
            let payload = caught.expect_err("panic must reach the caller");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
            assert_eq!(msg, "injected chunk panic", "threads={threads}");

            // The pool is still fully usable afterwards: no deadlocked
            // queue, no poisoned counters, correct results.
            let out = p.par_map(100, |i| i * 2);
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
            let s = p.stats();
            assert!(s.calls >= 2, "stats survive a panic, calls {}", s.calls);
            assert!(s.wall_seconds >= 0.0);
        }
    }

    #[test]
    fn first_chunk_panic_wins_and_later_chunks_are_abandoned() {
        use std::sync::atomic::AtomicUsize;
        let ran = AtomicUsize::new(0);
        let p = pool(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut data = vec![0u8; 64];
            p.par_chunks_mut(&mut data, 1, |offset, _| {
                ran.fetch_add(1, Ordering::SeqCst);
                if offset == 0 {
                    panic!("first chunk dies");
                }
            });
        }));
        assert!(caught.is_err());
        // The panic flag short-circuits the queue: with a LIFO queue the
        // panicking chunk (offset 0) runs late, but at least one chunk must
        // have run and the call must have returned (no deadlock).
        assert!(ran.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn par_map_preserves_index_order() {
        for threads in [1, 3, 8] {
            let out = pool(threads).par_map(257, |i| i * i);
            let expect: Vec<usize> = (0..257).map(|i| i * i).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_reduce_is_bit_identical_across_thread_counts() {
        // A sum whose value depends on association order: only a fixed
        // chunk structure plus in-order reduction makes this bit-stable.
        let reference: Vec<f64> = (0..10_000)
            .map(|i| ((i as f64) * 0.73).sin() * 1e-3 + 1.0 / (i as f64 + 1.0))
            .collect();
        let run = |threads: usize| -> f64 {
            pool(threads)
                .par_map_reduce(
                    reference.len(),
                    chunk_size(reference.len()),
                    |range| range.map(|i| reference[i]).sum::<f64>(),
                    |a, b| a + b,
                )
                .unwrap()
        };
        let serial = run(1);
        for threads in [2, 5, 8] {
            assert_eq!(serial.to_bits(), run(threads).to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn par_map_reduce_empty_is_none() {
        assert_eq!(pool(4).par_map_reduce(0, 8, |_| 1u64, |a, b| a + b), None);
    }

    #[test]
    fn split_streams_are_deterministic_and_distinct() {
        let mut a = Pcg32::seed_from_u64(11);
        let mut b = Pcg32::seed_from_u64(11);
        let mut sa = split_streams(&mut a, 4);
        let mut sb = split_streams(&mut b, 4);
        for (x, y) in sa.iter_mut().zip(sb.iter_mut()) {
            assert_eq!(x.next_u64(), y.next_u64());
        }
        assert_ne!(sa[0].next_u64(), sa[1].next_u64());
    }

    #[test]
    fn traced_pool_emits_call_and_chunk_child_spans() {
        use std::sync::Arc;
        #[derive(Default)]
        struct Capture(Mutex<Vec<Event>>);
        impl dd_telemetry::TrainObserver for Capture {
            fn on_event(&self, e: &Event) {
                self.0.lock().unwrap().push(e.clone());
            }
        }

        let run = |threads: usize| -> (Vec<Event>, Vec<u32>) {
            let cap = Arc::new(Capture::default());
            let p = pool(threads);
            let root = dd_telemetry::ObserverHandle::new(cap.clone()).trace_root("fit", 9);
            p.set_trace(root.observer(), root.context());
            let mut data = vec![0u32; 100];
            p.par_chunks_mut(&mut data, 25, |offset, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = (offset + j) as u32;
                }
            });
            p.clear_trace();
            let mut d2 = vec![0u8; 4];
            p.par_chunks_mut(&mut d2, 2, |_, _| {});
            drop(root); // emits the root span last
            let events = cap.0.lock().unwrap().clone();
            (events, data)
        };

        let (events, data) = run(4);
        assert_eq!(data, (0..100).collect::<Vec<u32>>());
        let call: Vec<&Event> =
            events.iter().filter(|e| e.name.as_deref() == Some("pool.test")).collect();
        assert_eq!(call.len(), 1, "one traced call (the cleared call emits nothing)");
        let chunks: Vec<&Event> =
            events.iter().filter(|e| e.name.as_deref() == Some("pool.test.chunk")).collect();
        assert_eq!(chunks.len(), 4, "one chunk span per chunk");
        let call_sid = call[0].span_id.as_deref().unwrap();
        for c in &chunks {
            assert_eq!(c.parent_span_id.as_deref(), Some(call_sid), "chunks parent to the call");
            assert_eq!(c.trace_id, call[0].trace_id);
            assert!(c.thread.is_some());
            assert!(c.start_seconds.is_some());
        }
        let root_event = events.iter().find(|e| e.name.as_deref() == Some("fit")).unwrap();
        assert_eq!(
            call[0].parent_span_id, root_event.span_id,
            "the pool call parents to the stage span"
        );
        assert!(call[0].busy_seconds.is_some());

        // The trace *tree* (IDs) is identical across thread counts; only
        // timings and line order differ.
        let (events1, data1) = run(1);
        assert_eq!(data1, data);
        let ids = |evs: &[Event]| -> Vec<String> {
            let mut v: Vec<String> = evs
                .iter()
                .map(|e| {
                    format!(
                        "{}:{}:{}",
                        e.name.as_deref().unwrap_or(""),
                        e.span_id.as_deref().unwrap_or(""),
                        e.parent_span_id.as_deref().unwrap_or("-")
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(ids(&events), ids(&events1), "trace tree is thread-count independent");
    }

    #[test]
    fn stats_accumulate() {
        let p = pool(2);
        let _ = p.par_map(100, |i| i);
        let _ = p.par_map_reduce(100, 10, |r| r.len(), |a, b| a + b);
        let s = p.stats();
        assert_eq!(s.threads, 2);
        assert!(s.calls >= 2, "calls {}", s.calls);
        assert!(s.chunks >= 12, "chunks {}", s.chunks);
        assert!(s.wall_seconds >= 0.0);
        assert!(s.utilization() >= 0.0);
        assert_eq!(p.label(), "test");
        assert_eq!(p.threads().get(), 2);
    }
}
