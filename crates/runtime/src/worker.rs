//! Long-lived named worker threads for services.
//!
//! [`Pool`](crate::Pool) covers compute kernels with scoped, per-call
//! workers; this module covers the other shape — detached threads that live
//! for the duration of a service (the `dd serve` request pool, its
//! acceptor). Keeping both here lets the rest of the workspace avoid raw
//! `std::thread` spawning entirely (CI greps for strays).

use std::sync::Arc;
use std::thread::JoinHandle;

use crate::Threads;

/// Spawns a single named thread. The name shows up in panics, debuggers and
/// `/proc`, which is worth insisting on for anything long-lived.
pub fn spawn_named<T, F>(name: &str, f: F) -> Result<JoinHandle<T>, String>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(f)
        .map_err(|e| format!("spawning thread {name:?}: {e}"))
}

/// A fixed-size pool of named, long-lived worker threads.
///
/// Each worker runs `body(worker_index)` once; workers typically loop on a
/// shared channel until it disconnects. Dropping the pool joins all
/// workers, so shutdown ordering is: make the workers' loop terminate
/// (close the channel), then drop or [`join`](WorkerPool::join) the pool.
pub struct WorkerPool {
    label: String,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Starts `threads` workers named `{label}-{index}` all running `body`.
    pub fn start<F>(label: &str, threads: Threads, body: F) -> Result<WorkerPool, String>
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        let body = Arc::new(body);
        let mut handles = Vec::with_capacity(threads.get());
        for i in 0..threads.get() {
            let body = Arc::clone(&body);
            handles.push(spawn_named(&format!("{label}-{i}"), move || body(i))?);
        }
        Ok(WorkerPool { label: label.to_string(), handles })
    }

    /// The label workers were named after.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of workers not yet joined.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True once every worker has been joined (or none were started).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Joins every worker. Worker panics are swallowed: by the time a
    /// service joins its pool it is shutting down, and one poisoned worker
    /// should not abort the drain of the rest.
    pub fn join(&mut self) {
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn spawn_named_returns_value() {
        let handle = spawn_named("dd-test-thread", || 41 + 1).unwrap();
        assert_eq!(handle.join().unwrap(), 42);
    }

    #[test]
    fn worker_pool_runs_each_index_once() {
        let hits = Arc::new(AtomicUsize::new(0));
        let hits2 = Arc::clone(&hits);
        let mut pool = WorkerPool::start("dd-test-pool", Threads::new(4).unwrap(), move |i| {
            hits2.fetch_add(i + 1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(pool.label(), "dd-test-pool");
        assert_eq!(pool.len(), 4);
        pool.join();
        assert!(pool.is_empty());
        // 1 + 2 + 3 + 4
        assert_eq!(hits.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn drop_joins_channel_workers() {
        let (tx, rx) = mpsc::channel::<usize>();
        let rx = Arc::new(std::sync::Mutex::new(rx));
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let pool = WorkerPool::start("dd-test-drain", Threads::new(2).unwrap(), move |_| loop {
            let item = rx.lock().expect("rx poisoned").recv();
            match item {
                Ok(x) => {
                    seen2.fetch_add(x, Ordering::SeqCst);
                }
                Err(_) => break,
            }
        })
        .unwrap();
        for x in 1..=10 {
            tx.send(x).unwrap();
        }
        drop(tx); // disconnect => workers exit their loops
        drop(pool); // joins
        assert_eq!(seen.load(Ordering::SeqCst), 55);
    }
}
