//! Error types for network construction and I/O.

use std::fmt;

use crate::ids::NodeId;

/// Errors produced while building or loading a [`crate::MixedSocialNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A tie connected a node to itself; the mixed social network model of the
    /// paper (Definition 1) has no self ties.
    SelfLoop(NodeId),
    /// A node id was at or above the declared node count.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Declared node count of the network.
        n_nodes: usize,
    },
    /// The same node pair was inserted twice (possibly with different kinds).
    /// Definition 1 requires `E_d`, `E_b`, `E_u` to be pairwise disjoint, and
    /// a directed tie `(u, v)` forbids `(v, u)` from existing.
    DuplicateTie {
        /// First endpoint of the rejected tie.
        src: NodeId,
        /// Second endpoint of the rejected tie.
        dst: NodeId,
    },
    /// The network had no directed ties; Definition 1 requires `|E_d| > 0`.
    NoDirectedTies,
    /// A text edge list line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An underlying I/O failure while reading or writing an edge list.
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop(n) => write!(f, "self loop at node {n}"),
            GraphError::NodeOutOfRange { node, n_nodes } => {
                write!(f, "node {node} out of range for {n_nodes} nodes")
            }
            GraphError::DuplicateTie { src, dst } => {
                write!(f, "tie between {src} and {dst} conflicts with an existing tie")
            }
            GraphError::NoDirectedTies => {
                write!(f, "mixed social network requires at least one directed tie")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::SelfLoop(NodeId(3));
        assert!(e.to_string().contains("n3"));
        let e = GraphError::DuplicateTie { src: NodeId(1), dst: NodeId(2) };
        assert!(e.to_string().contains("n1"));
        assert!(e.to_string().contains("n2"));
        let e = GraphError::Parse { line: 9, message: "bad kind".into() };
        assert!(e.to_string().contains("line 9"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
    }
}
