//! Node centrality measures used by the handcrafted features (Sec. 3.1):
//! closeness centrality (Eq. 3) and betweenness centrality (Eq. 4).
//!
//! Both are computed on the *undirected view* of the network, as the paper
//! prescribes. Exact computation costs one BFS per node (`O(|V||E|)`), which
//! is fine for the sampled sub-networks of the evaluation but expensive for
//! full-scale graphs; the `*_sampled` variants estimate both measures from
//! `k` pivot sources with the standard unbiased scaling.
//!
//! Per-source BFS/Brandes passes are embarrassingly parallel, so every
//! measure comes in three flavours: the classic serial entry point
//! (`closeness_all`), a `_threads` variant that runs on a private
//! [`dd_runtime::Pool`], and a `_pool` variant for callers that own a pool
//! and want its utilization stats afterwards. Sources are chunked with a
//! structure that depends only on the source count and per-chunk partial
//! sums are reduced in chunk order, so results are **bit-identical at any
//! thread count** (see DESIGN.md §7.9).

use rand::seq::SliceRandom;
use rand::Rng;

use dd_runtime::{chunk_size, Pool, Threads};

use crate::ids::NodeId;
use crate::network::MixedSocialNetwork;
use crate::traversal::{bfs_distances, UNREACHABLE};

/// Exact closeness centrality for every node: `cc(u) = 1 / Σ_{v≠u} dis(u,v)`,
/// summing over nodes reachable from `u`. Isolated nodes get `0`.
pub fn closeness_all(g: &MixedSocialNetwork) -> Vec<f64> {
    closeness_all_threads(g, Threads::serial())
}

/// [`closeness_all`] on `threads` worker threads.
pub fn closeness_all_threads(g: &MixedSocialNetwork, threads: Threads) -> Vec<f64> {
    closeness_all_pool(g, &Pool::new("centrality.closeness", threads))
}

/// [`closeness_all`] on a caller-owned pool.
pub fn closeness_all_pool(g: &MixedSocialNetwork, pool: &Pool) -> Vec<f64> {
    let sources: Vec<NodeId> = g.nodes().collect();
    closeness_from_sources(g, &sources, g.n_nodes(), pool)
}

/// Approximate closeness from `k` random pivot sources.
///
/// Distance sums are scaled by `n/k` so the estimate is comparable with the
/// exact value. With `k ≥ n` this equals [`closeness_all`].
pub fn closeness_sampled<R: Rng>(g: &MixedSocialNetwork, k: usize, rng: &mut R) -> Vec<f64> {
    closeness_sampled_threads(g, k, rng, Threads::serial())
}

/// [`closeness_sampled`] on `threads` worker threads. Pivot selection draws
/// from `rng` before any parallel work, so the estimate depends only on the
/// RNG state, not the thread count.
pub fn closeness_sampled_threads<R: Rng>(
    g: &MixedSocialNetwork,
    k: usize,
    rng: &mut R,
    threads: Threads,
) -> Vec<f64> {
    let sources = sample_pivots(g, k, rng);
    closeness_from_sources(g, &sources, g.n_nodes(), &Pool::new("centrality.closeness", threads))
}

fn sample_pivots<R: Rng>(g: &MixedSocialNetwork, k: usize, rng: &mut R) -> Vec<NodeId> {
    let mut sources: Vec<NodeId> = g.nodes().collect();
    sources.shuffle(rng);
    sources.truncate(k.min(sources.len()));
    sources
}

fn closeness_from_sources(
    g: &MixedSocialNetwork,
    sources: &[NodeId],
    n: usize,
    pool: &Pool,
) -> Vec<f64> {
    // BFS from each source accumulates dis(source, v) onto v; by symmetry of
    // the undirected view this also accumulates Σ_s dis(v, s) for each v.
    let nn = g.n_nodes();
    let sums = pool
        .par_map_reduce(
            sources.len(),
            chunk_size(sources.len()),
            |range| {
                let mut sums = vec![0.0f64; nn];
                for &s in &sources[range] {
                    let dist = bfs_distances(g, s);
                    for (v, &d) in dist.iter().enumerate() {
                        if d != UNREACHABLE && d > 0 {
                            sums[v] += d as f64;
                        }
                    }
                }
                sums
            },
            add_elementwise,
        )
        .unwrap_or_else(|| vec![0.0f64; nn]);
    let scale = if sources.is_empty() { 0.0 } else { n as f64 / sources.len() as f64 };
    sums.iter()
        .map(|&s| {
            let est = s * scale;
            if est > 0.0 {
                1.0 / est
            } else {
                0.0
            }
        })
        .collect()
}

/// Exact betweenness centrality for every node via Brandes' algorithm on the
/// undirected view: `bc(u) = Σ_{i≠u≠j} σ_ij(u) / σ_ij`.
pub fn betweenness_all(g: &MixedSocialNetwork) -> Vec<f64> {
    betweenness_all_threads(g, Threads::serial())
}

/// [`betweenness_all`] on `threads` worker threads.
pub fn betweenness_all_threads(g: &MixedSocialNetwork, threads: Threads) -> Vec<f64> {
    betweenness_all_pool(g, &Pool::new("centrality.betweenness", threads))
}

/// [`betweenness_all`] on a caller-owned pool.
pub fn betweenness_all_pool(g: &MixedSocialNetwork, pool: &Pool) -> Vec<f64> {
    let sources: Vec<NodeId> = g.nodes().collect();
    betweenness_from_sources(g, &sources, g.n_nodes(), pool)
}

/// Approximate betweenness from `k` random pivot sources, scaled by `n/k`.
pub fn betweenness_sampled<R: Rng>(g: &MixedSocialNetwork, k: usize, rng: &mut R) -> Vec<f64> {
    betweenness_sampled_threads(g, k, rng, Threads::serial())
}

/// [`betweenness_sampled`] on `threads` worker threads. Pivot selection
/// draws from `rng` before any parallel work, so the estimate depends only
/// on the RNG state, not the thread count.
pub fn betweenness_sampled_threads<R: Rng>(
    g: &MixedSocialNetwork,
    k: usize,
    rng: &mut R,
    threads: Threads,
) -> Vec<f64> {
    let sources = sample_pivots(g, k, rng);
    betweenness_from_sources(
        g,
        &sources,
        g.n_nodes(),
        &Pool::new("centrality.betweenness", threads),
    )
}

fn betweenness_from_sources(
    g: &MixedSocialNetwork,
    sources: &[NodeId],
    n: usize,
    pool: &Pool,
) -> Vec<f64> {
    let nn = g.n_nodes();
    let mut bc = pool
        .par_map_reduce(
            sources.len(),
            chunk_size(sources.len()),
            |range| brandes_chunk(g, &sources[range]),
            add_elementwise,
        )
        .unwrap_or_else(|| vec![0.0f64; nn]);
    // Undirected: each pair (i, j) is visited from both ends when all sources
    // are used, so halve; sampled runs additionally scale by n/k.
    let scale = if sources.is_empty() { 0.0 } else { n as f64 / sources.len() as f64 / 2.0 };
    for b in &mut bc {
        *b *= scale;
    }
    bc
}

/// One Brandes accumulation pass over a chunk of sources, with working
/// arrays reused across the chunk's sources.
fn brandes_chunk(g: &MixedSocialNetwork, sources: &[NodeId]) -> Vec<f64> {
    let nn = g.n_nodes();
    let mut bc = vec![0.0f64; nn];
    let mut sigma = vec![0.0f64; nn];
    let mut dist = vec![-1i32; nn];
    let mut delta = vec![0.0f64; nn];
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); nn];
    let mut stack: Vec<u32> = Vec::with_capacity(nn);
    let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();

    for &s in sources {
        for i in 0..nn {
            sigma[i] = 0.0;
            dist[i] = -1;
            delta[i] = 0.0;
            preds[i].clear();
        }
        stack.clear();
        queue.clear();
        sigma[s.index()] = 1.0;
        dist[s.index()] = 0;
        queue.push_back(s.0);
        while let Some(u) = queue.pop_front() {
            stack.push(u);
            let du = dist[u as usize];
            for &w in g.neighbors(NodeId(u)) {
                let wi = w.index();
                if dist[wi] < 0 {
                    dist[wi] = du + 1;
                    queue.push_back(w.0);
                }
                if dist[wi] == du + 1 {
                    sigma[wi] += sigma[u as usize];
                    preds[wi].push(u);
                }
            }
        }
        while let Some(w) = stack.pop() {
            let wi = w as usize;
            let coeff = (1.0 + delta[wi]) / sigma[wi].max(f64::MIN_POSITIVE);
            for &p in &preds[wi] {
                delta[p as usize] += sigma[p as usize] * coeff;
            }
            if w != s.0 {
                bc[wi] += delta[wi];
            }
        }
    }
    bc
}

fn add_elementwise(mut acc: Vec<f64>, part: Vec<f64>) -> Vec<f64> {
    debug_assert_eq!(acc.len(), part.len());
    for (a, p) in acc.iter_mut().zip(&part) {
        *a += p;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Path 0-1-2-3-4 (directed left to right; centrality uses the
    /// undirected view so orientation is irrelevant).
    fn path5() -> MixedSocialNetwork {
        let mut b = NetworkBuilder::new(5);
        for i in 0..4u32 {
            b.add_directed(NodeId(i), NodeId(i + 1)).unwrap();
        }
        b.build().unwrap()
    }

    /// Star with center 0 and four leaves.
    fn star5() -> MixedSocialNetwork {
        let mut b = NetworkBuilder::new(5);
        for i in 1..5u32 {
            b.add_directed(NodeId(i), NodeId(0)).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn closeness_on_path() {
        let g = path5();
        let cc = closeness_all(&g);
        // Node 2 (middle): distances 2,1,1,2 → sum 6 → 1/6.
        assert!((cc[2] - 1.0 / 6.0).abs() < 1e-12);
        // Node 0 (end): distances 1,2,3,4 → sum 10 → 1/10.
        assert!((cc[0] - 0.1).abs() < 1e-12);
        // Symmetry.
        assert!((cc[0] - cc[4]).abs() < 1e-12);
        assert!((cc[1] - cc[3]).abs() < 1e-12);
        // Middle is most central.
        assert!(cc[2] > cc[1] && cc[1] > cc[0]);
    }

    #[test]
    fn betweenness_on_path() {
        let g = path5();
        let bc = betweenness_all(&g);
        // Standard values for a 5-path: ends 0, next 3, middle 4.
        assert!((bc[0]).abs() < 1e-9);
        assert!((bc[4]).abs() < 1e-9);
        assert!((bc[1] - 3.0).abs() < 1e-9);
        assert!((bc[3] - 3.0).abs() < 1e-9);
        assert!((bc[2] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn betweenness_on_star() {
        let g = star5();
        let bc = betweenness_all(&g);
        // Center lies on all C(4,2) = 6 leaf pairs.
        assert!((bc[0] - 6.0).abs() < 1e-9);
        for &leaf_bc in &bc[1..5] {
            assert!(leaf_bc.abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_with_all_pivots_matches_exact() {
        let g = path5();
        let mut rng = StdRng::seed_from_u64(7);
        let cc_s = closeness_sampled(&g, 5, &mut rng);
        let cc_e = closeness_all(&g);
        for (a, b) in cc_s.iter().zip(&cc_e) {
            assert!((a - b).abs() < 1e-12);
        }
        let bc_s = betweenness_sampled(&g, 5, &mut rng);
        let bc_e = betweenness_all(&g);
        for (a, b) in bc_s.iter().zip(&bc_e) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn threads_variants_are_bit_identical() {
        let g = path5();
        for threads in [2, 8] {
            let t = Threads::new(threads).unwrap();
            let cc1 = closeness_all(&g);
            let cct = closeness_all_threads(&g, t);
            assert!(cc1.iter().zip(&cct).all(|(a, b)| a.to_bits() == b.to_bits()));
            let bc1 = betweenness_all(&g);
            let bct = betweenness_all_threads(&g, t);
            assert!(bc1.iter().zip(&bct).all(|(a, b)| a.to_bits() == b.to_bits()));

            let mut r1 = StdRng::seed_from_u64(5);
            let mut rt = StdRng::seed_from_u64(5);
            let s1 = betweenness_sampled(&g, 3, &mut r1);
            let st = betweenness_sampled_threads(&g, 3, &mut rt, t);
            assert!(s1.iter().zip(&st).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn sampled_estimates_are_in_range() {
        let g = star5();
        let mut rng = StdRng::seed_from_u64(3);
        let cc = closeness_sampled(&g, 2, &mut rng);
        for &c in &cc {
            assert!(c >= 0.0 && c.is_finite());
        }
    }
}
