//! Connected ties, tie degrees, and the connected-tie-pair structure
//! (Definition 4 and Eq. 6 of the paper).
//!
//! Given ties `e1 = (u1, v1)` and `e2 = (u2, v2)`, `e2` is a *connected tie*
//! of `e1` iff `v1 = u2` and `u1 ≠ v2` — i.e. `e2` continues from the head of
//! `e1` without immediately doubling back. The multiset of all ordered
//! connected tie pairs `C(G)` is the topology signal that the DeepDirect
//! E-Step preserves.
//!
//! The paper states `deg_tie(e) = |c(e)|`; strictly, Eq. 6 counts all
//! out-ties of `v` including a back-tie `(v, u)`, which `c(e)` excludes. We
//! follow the operational definition `deg_tie(e) = |c(e)|` (it is the one the
//! sampling distributions actually need) and document the discrepancy here.

use crate::ids::TieId;
use crate::network::MixedSocialNetwork;

/// Returns the connected ties `c(e)` of the ordered tie `e` as a vector.
///
/// For hot paths prefer [`for_each_connected_tie`] or [`tie_degree`], which do
/// not allocate.
pub fn connected_ties(g: &MixedSocialNetwork, e: TieId) -> Vec<TieId> {
    let mut out = Vec::new();
    for_each_connected_tie(g, e, |t| out.push(t));
    out
}

/// Calls `f` for every connected tie of `e` without allocating.
#[inline]
pub fn for_each_connected_tie<F: FnMut(TieId)>(g: &MixedSocialNetwork, e: TieId, mut f: F) {
    let (u, v) = g.tie(e).endpoints();
    for &t in g.out_ties(v) {
        if g.tie(t).dst != u {
            f(t);
        }
    }
}

/// The tie degree `deg_tie(e) = |c(e)|`: out-ties of the head of `e`,
/// excluding the immediate back-tie to the tail of `e`.
#[inline]
pub fn tie_degree(g: &MixedSocialNetwork, e: TieId) -> usize {
    let (u, v) = g.tie(e).endpoints();
    let mut n = 0usize;
    for &t in g.out_ties(v) {
        if g.tie(t).dst != u {
            n += 1;
        }
    }
    n
}

/// Computes `deg_tie` for every ordered tie in one pass.
///
/// `deg_tie(e=(u,v))` equals the out-instance degree of `v` minus one if the
/// back instance `(v, u)` exists.
pub fn all_tie_degrees(g: &MixedSocialNetwork) -> Vec<u32> {
    let mut degs = Vec::with_capacity(g.n_ordered_ties());
    for (_, t) in g.iter_ties() {
        let mut d = g.out_instance_degree(t.dst) as u32;
        if g.find_tie(t.dst, t.src).is_some() {
            d -= 1;
        }
        degs.push(d);
    }
    degs
}

/// Number of connected tie pairs `|C(G)| = Σ_e |c(e)|`.
pub fn count_connected_pairs(g: &MixedSocialNetwork) -> u64 {
    all_tie_degrees(g).iter().map(|&d| d as u64).sum()
}

/// Picks the `i`-th connected tie of `e` (0-based, in adjacency order), or
/// `None` if `i ≥ deg_tie(e)`. Used by the uniform connected-tie sampling of
/// the E-Step without materializing `c(e)`.
pub fn nth_connected_tie(g: &MixedSocialNetwork, e: TieId, i: usize) -> Option<TieId> {
    let (u, v) = g.tie(e).endpoints();
    let mut seen = 0usize;
    for &t in g.out_ties(v) {
        if g.tie(t).dst != u {
            if seen == i {
                return Some(t);
            }
            seen += 1;
        }
    }
    None
}

/// Returns whether `(e1, e2)` is a connected tie pair (Definition 4).
pub fn is_connected_pair(g: &MixedSocialNetwork, e1: TieId, e2: TieId) -> bool {
    let (u1, v1) = g.tie(e1).endpoints();
    let (u2, v2) = g.tie(e2).endpoints();
    v1 == u2 && u1 != v2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::testutil::{diamond_network, fig1_network};

    #[test]
    fn connected_ties_follow_definition() {
        let g = diamond_network();
        // e = (0,1); c(e) = ties out of 1 not returning to 0 = {(1,2)}.
        let e01 = g.find_tie(NodeId(0), NodeId(1)).unwrap();
        let c = connected_ties(&g, e01);
        assert_eq!(c.len(), 1);
        assert_eq!(g.tie(c[0]).endpoints(), (NodeId(1), NodeId(2)));
        for t in c {
            assert!(is_connected_pair(&g, e01, t));
        }
    }

    #[test]
    fn back_tie_is_excluded() {
        let g = fig1_network();
        // (b,f) is bidirectional so (f,b) exists; c((b,f)) must not contain it.
        let bf = g.find_tie(NodeId(1), NodeId(5)).unwrap();
        let c = connected_ties(&g, bf);
        for t in &c {
            assert_ne!(g.tie(*t).endpoints(), (NodeId(5), NodeId(1)));
            assert_eq!(g.tie(*t).src, NodeId(5));
        }
        // Out of f: (f,e),(f,j),(f,b),(f,d) → minus the back tie (f,b) = 3.
        assert_eq!(c.len(), 3);
        assert_eq!(tie_degree(&g, bf), 3);
    }

    #[test]
    fn bulk_degrees_match_per_tie() {
        let g = fig1_network();
        let degs = all_tie_degrees(&g);
        for (id, _) in g.iter_ties() {
            assert_eq!(degs[id.index()] as usize, tie_degree(&g, id), "deg_tie of {id}");
        }
        let total: u64 = degs.iter().map(|&d| d as u64).sum();
        assert_eq!(total, count_connected_pairs(&g));
    }

    #[test]
    fn nth_connected_tie_enumerates_all() {
        let g = fig1_network();
        for (id, _) in g.iter_ties() {
            let c = connected_ties(&g, id);
            for (i, &t) in c.iter().enumerate() {
                assert_eq!(nth_connected_tie(&g, id, i), Some(t));
            }
            assert_eq!(nth_connected_tie(&g, id, c.len()), None);
        }
    }

    #[test]
    fn dead_end_tie_has_zero_degree() {
        let g = diamond_network();
        // (2,3): node 3 has no out ties.
        let e = g.find_tie(NodeId(2), NodeId(3)).unwrap();
        assert_eq!(tie_degree(&g, e), 0);
        assert!(connected_ties(&g, e).is_empty());
    }
}
