//! Traversals over the undirected view of a mixed social network:
//! breadth-first search, single-source shortest path distances, and connected
//! components.
//!
//! The paper treats the network as undirected whenever distances are needed
//! (Sec. 3.1: "the network is regarded as an undirected graph when
//! calculating shortest paths"), and its dataset preprocessing samples
//! sub-networks by breadth-first traversal (Sec. 6.1).

use std::collections::VecDeque;

use crate::ids::NodeId;
use crate::network::MixedSocialNetwork;

/// Sentinel distance for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances over the undirected view.
///
/// Returns a vector indexed by node id containing hop counts, with
/// [`UNREACHABLE`] for nodes in other components.
pub fn bfs_distances(g: &MixedSocialNetwork, source: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.n_nodes()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &w in g.neighbors(u) {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// BFS visit order from `source` over the undirected view, stopping after at
/// most `limit` nodes. Used by the BFS sub-network sampling protocol.
pub fn bfs_order(g: &MixedSocialNetwork, source: NodeId, limit: usize) -> Vec<NodeId> {
    let mut visited = vec![false; g.n_nodes()];
    let mut order = Vec::with_capacity(limit.min(g.n_nodes()));
    let mut queue = VecDeque::new();
    visited[source.index()] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        if order.len() >= limit {
            break;
        }
        for &w in g.neighbors(u) {
            if !visited[w.index()] {
                visited[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    order
}

/// Labels connected components of the undirected view.
///
/// Returns `(component_id_per_node, component_count)`.
pub fn connected_components(g: &MixedSocialNetwork) -> (Vec<u32>, usize) {
    let mut comp = vec![u32::MAX; g.n_nodes()];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for s in g.nodes() {
        if comp[s.index()] != u32::MAX {
            continue;
        }
        comp[s.index()] = next;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &w in g.neighbors(u) {
                if comp[w.index()] == u32::MAX {
                    comp[w.index()] = next;
                    queue.push_back(w);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// Id of the largest connected component and the nodes it contains.
pub fn largest_component(g: &MixedSocialNetwork) -> Vec<NodeId> {
    let (comp, n) = connected_components(g);
    if n == 0 {
        return Vec::new();
    }
    let mut sizes = vec![0usize; n];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    let best =
        sizes.iter().enumerate().max_by_key(|&(_, s)| *s).map(|(i, _)| i as u32).unwrap_or(0);
    comp.iter().enumerate().filter(|&(_, &c)| c == best).map(|(i, _)| NodeId(i as u32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::testutil::{diamond_network, fig1_network};

    #[test]
    fn distances_on_diamond() {
        let g = diamond_network();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 2, 1]);
    }

    #[test]
    fn fig1_is_connected() {
        let g = fig1_network();
        let (_, n) = connected_components(&g);
        assert_eq!(n, 1);
        assert_eq!(largest_component(&g).len(), 10);
        let d = bfs_distances(&g, NodeId(0));
        assert!(d.iter().all(|&x| x != UNREACHABLE));
    }

    #[test]
    fn disconnected_components_are_separated() {
        let mut b = NetworkBuilder::new(6);
        b.add_directed(NodeId(0), NodeId(1)).unwrap();
        b.add_directed(NodeId(1), NodeId(2)).unwrap();
        b.add_directed(NodeId(3), NodeId(4)).unwrap();
        // Node 5 is isolated.
        let g = b.build().unwrap();
        let (comp, n) = connected_components(&g);
        assert_eq!(n, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[3], comp[5]);
        let lc = largest_component(&g);
        assert_eq!(lc, vec![NodeId(0), NodeId(1), NodeId(2)]);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[5], UNREACHABLE);
    }

    #[test]
    fn bfs_order_respects_limit_and_start() {
        let g = fig1_network();
        let order = bfs_order(&g, NodeId(0), 4);
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], NodeId(0));
        // All returned nodes are distinct.
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        // Unlimited traversal reaches everything.
        assert_eq!(bfs_order(&g, NodeId(0), usize::MAX).len(), 10);
    }
}
