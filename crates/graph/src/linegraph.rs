//! Explicit line-graph construction (Sec. 4 of the paper).
//!
//! The line graph `L(G)` has one node per ordered tie of `G` and a directed
//! edge from `e1` to `e2` whenever the head of `e1` is the tail of `e2`. The
//! paper argues that embedding `L(G)` with a node-based method is wasteful
//! because `|V_L| = |E_G|` and a node with in-degree `d1` and out-degree `d2`
//! spawns `d1 × d2` line-graph edges. This module materializes `L(G)` so that
//! the size blow-up can be measured (see the `ablations` bench).
//!
//! Note the line-graph edge rule `head(e1) = tail(e2)` is slightly *looser*
//! than the connected-tie rule of Definition 4, which additionally excludes
//! immediate back-ties; [`LineGraph::new`] offers both variants.

use serde::{Deserialize, Serialize};

use crate::ids::TieId;
use crate::network::MixedSocialNetwork;

/// A materialized line graph in CSR form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LineGraph {
    n_nodes: usize,
    offsets: Vec<u64>,
    targets: Vec<TieId>,
}

/// Statistics comparing a graph with its line graph.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LineGraphStats {
    /// `|V|` of the original graph.
    pub orig_nodes: usize,
    /// Ordered ties of the original graph (= nodes of the line graph).
    pub orig_ties: usize,
    /// Edges of the line graph.
    pub line_edges: u64,
    /// `line_edges / orig_ties`: average out-degree in the line graph.
    pub expansion: f64,
}

impl LineGraph {
    /// Builds the line graph of `g`.
    ///
    /// With `exclude_back_ties = true` the edge set equals the connected-tie
    /// pairs `C(G)` of Definition 4; with `false` it is the classical
    /// Harary–Norman line digraph.
    pub fn new(g: &MixedSocialNetwork, exclude_back_ties: bool) -> Self {
        let n = g.n_ordered_ties();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut targets = Vec::new();
        for (_, t) in g.iter_ties() {
            for &next in g.out_ties(t.dst) {
                if exclude_back_ties && g.tie(next).dst == t.src {
                    continue;
                }
                targets.push(next);
            }
            offsets.push(targets.len() as u64);
        }
        LineGraph { n_nodes: n, offsets, targets }
    }

    /// Number of line-graph nodes (= ordered ties of the original graph).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of line-graph edges.
    pub fn n_edges(&self) -> u64 {
        *self.offsets.last().unwrap_or(&0)
    }

    /// Successors of line-graph node `e`.
    pub fn successors(&self, e: TieId) -> &[TieId] {
        let s = self.offsets[e.index()] as usize;
        let t = self.offsets[e.index() + 1] as usize;
        &self.targets[s..t]
    }

    /// Size statistics relative to the original graph.
    pub fn stats(&self, g: &MixedSocialNetwork) -> LineGraphStats {
        LineGraphStats {
            orig_nodes: g.n_nodes(),
            orig_ties: self.n_nodes,
            line_edges: self.n_edges(),
            expansion: if self.n_nodes == 0 {
                0.0
            } else {
                self.n_edges() as f64 / self.n_nodes as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::testutil::{diamond_network, fig1_network};
    use crate::ties::count_connected_pairs;

    #[test]
    fn line_graph_of_diamond() {
        let g = diamond_network();
        let lg = LineGraph::new(&g, false);
        assert_eq!(lg.n_nodes(), 5);
        // (0,1)→(1,2); (1,2)→(2,3); (0,4)→(4,3); others dead-end.
        assert_eq!(lg.n_edges(), 3);
        let e01 = g.find_tie(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(lg.successors(e01).len(), 1);
    }

    #[test]
    fn connected_tie_variant_matches_definition4() {
        let g = fig1_network();
        let lg = LineGraph::new(&g, true);
        assert_eq!(lg.n_edges(), count_connected_pairs(&g));
        // The classical variant is at least as large.
        let full = LineGraph::new(&g, false);
        assert!(full.n_edges() >= lg.n_edges());
    }

    #[test]
    fn stats_report_expansion() {
        let g = fig1_network();
        let lg = LineGraph::new(&g, false);
        let s = lg.stats(&g);
        assert_eq!(s.orig_nodes, 10);
        assert_eq!(s.orig_ties, g.n_ordered_ties());
        assert!(s.expansion > 0.0);
        assert_eq!(s.line_edges, lg.n_edges());
    }
}
