//! Tie kinds and ordered tie instances.

use serde::{Deserialize, Serialize};

use crate::ids::{NodeId, TieId};

/// The three kinds of social ties in a mixed social network (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TieKind {
    /// A tie whose direction is known and single: `(u, v) ∈ E_d`.
    Directed,
    /// A tie that explicitly runs both ways: `(u, v), (v, u) ∈ E_b`.
    Bidirectional,
    /// A tie whose direction is unknown: `(u, v), (v, u) ∈ E_u`.
    Undirected,
}

impl TieKind {
    /// Single-character code used by the text edge-list format.
    pub fn code(self) -> char {
        match self {
            TieKind::Directed => 'd',
            TieKind::Bidirectional => 'b',
            TieKind::Undirected => 'u',
        }
    }

    /// Parses the single-character code of the text edge-list format.
    pub fn from_code(c: char) -> Option<Self> {
        match c {
            'd' => Some(TieKind::Directed),
            'b' => Some(TieKind::Bidirectional),
            'u' => Some(TieKind::Undirected),
            _ => None,
        }
    }
}

/// One *ordered* tie instance `(src, dst)`.
///
/// A directed social tie materializes as a single instance. Bidirectional and
/// undirected social ties materialize as two instances that reference each
/// other through [`OrderedTie::reverse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderedTie {
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// The kind of the underlying social tie.
    pub kind: TieKind,
    /// The instance for `(dst, src)`, when the underlying social tie is
    /// bidirectional or undirected. `None` for directed ties.
    pub reverse: Option<TieId>,
}

impl OrderedTie {
    /// Returns the `(src, dst)` endpoint pair.
    #[inline]
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.src, self.dst)
    }

    /// Whether this instance belongs to a directed social tie.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.kind == TieKind::Directed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_roundtrip() {
        for k in [TieKind::Directed, TieKind::Bidirectional, TieKind::Undirected] {
            assert_eq!(TieKind::from_code(k.code()), Some(k));
        }
        assert_eq!(TieKind::from_code('x'), None);
    }

    #[test]
    fn ordered_tie_accessors() {
        let t =
            OrderedTie { src: NodeId(1), dst: NodeId(2), kind: TieKind::Directed, reverse: None };
        assert_eq!(t.endpoints(), (NodeId(1), NodeId(2)));
        assert!(t.is_directed());
        let b = OrderedTie {
            src: NodeId(2),
            dst: NodeId(1),
            kind: TieKind::Bidirectional,
            reverse: Some(TieId(0)),
        };
        assert!(!b.is_directed());
    }
}
