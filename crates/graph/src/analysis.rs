//! Network analysis: clustering, reciprocity, and the prevalence of the two
//! directionality patterns DeepDirect leans on.
//!
//! The patterns were established empirically in the ReDirect paper; this
//! module reproduces that measurement so both real edge lists and our
//! synthetic analogs can be checked for the same structure:
//!
//! * **Degree Consistency prevalence** — the fraction of directed ties that
//!   run from the lower-degree endpoint to the higher-degree endpoint
//!   (Definition 5),
//! * **Triad Status Consistency prevalence** — the fraction of directed
//!   2-paths `u → v → w` with a directed closing tie between `u` and `w`
//!   where that tie runs `u → w` (avoiding a cycle, Definition 6).

use crate::ids::NodeId;
use crate::network::MixedSocialNetwork;
use crate::tie::TieKind;

/// Local clustering coefficient of node `u` on the undirected view: the
/// fraction of neighbor pairs that are themselves connected.
pub fn local_clustering(g: &MixedSocialNetwork, u: NodeId) -> f64 {
    let nbrs = g.neighbors(u);
    let k = nbrs.len();
    if k < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.has_tie_between(a, b) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (k * (k - 1)) as f64
}

/// Average local clustering coefficient of the network.
pub fn average_clustering(g: &MixedSocialNetwork) -> f64 {
    if g.n_nodes() == 0 {
        return 0.0;
    }
    let total: f64 = g.nodes().map(|u| local_clustering(g, u)).sum();
    total / g.n_nodes() as f64
}

/// Fraction of social ties that are bidirectional (reciprocity).
pub fn reciprocity(g: &MixedSocialNetwork) -> f64 {
    let c = g.counts();
    if c.total() == 0 {
        return 0.0;
    }
    c.bidirectional as f64 / c.total() as f64
}

/// Prevalence of the Degree Consistency Pattern: among directed ties whose
/// endpoints have different social degrees, the fraction running from the
/// lower-degree node to the higher-degree node. `0.5` means no pattern.
pub fn degree_pattern_prevalence(g: &MixedSocialNetwork) -> f64 {
    let mut up = 0usize;
    let mut total = 0usize;
    for (_, u, v) in g.directed_ties() {
        let du = g.social_degree(u);
        let dv = g.social_degree(v);
        if du == dv {
            continue;
        }
        total += 1;
        if du < dv {
            up += 1;
        }
    }
    if total == 0 {
        0.5
    } else {
        up as f64 / total as f64
    }
}

/// Prevalence of the Triad Status Consistency Pattern: over directed
/// 2-paths `u → v → w` whose closing `(u, w)` tie is also directed, the
/// fraction where it runs `u → w` (no directed 3-cycle). `0.5` = no pattern.
pub fn triad_pattern_prevalence(g: &MixedSocialNetwork) -> f64 {
    let mut acyclic = 0usize;
    let mut total = 0usize;
    for (_, t1) in g.iter_ties() {
        if t1.kind != TieKind::Directed {
            continue;
        }
        let (u, v) = (t1.src, t1.dst);
        for &t2 in g.out_ties(v) {
            let tie2 = g.tie(t2);
            if tie2.kind != TieKind::Directed {
                continue;
            }
            let w = tie2.dst;
            if w == u {
                continue;
            }
            if let Some(closing) = g.find_tie(u, w) {
                if g.tie(closing).kind == TieKind::Directed {
                    total += 1;
                    acyclic += 1; // u → w closes forward
                }
            } else if let Some(closing) = g.find_tie(w, u) {
                if g.tie(closing).kind == TieKind::Directed {
                    total += 1; // w → u closes a directed 3-cycle
                }
            }
        }
    }
    if total == 0 {
        0.5
    } else {
        acyclic as f64 / total as f64
    }
}

/// A bundle of the above measurements, as used by the dataset reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternReport {
    /// Average local clustering coefficient.
    pub clustering: f64,
    /// Fraction of bidirectional ties.
    pub reciprocity: f64,
    /// Degree Consistency prevalence.
    pub degree_pattern: f64,
    /// Triad Status Consistency prevalence.
    pub triad_pattern: f64,
}

impl PatternReport {
    /// Measures all statistics of `g`.
    pub fn measure(g: &MixedSocialNetwork) -> Self {
        PatternReport {
            clustering: average_clustering(g),
            reciprocity: reciprocity(g),
            degree_pattern: degree_pattern_prevalence(g),
            triad_pattern: triad_pattern_prevalence(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{social_network, SocialNetConfig};
    use crate::network::NetworkBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clustering_of_triangle_and_path() {
        // Triangle: clustering 1 everywhere.
        let mut b = NetworkBuilder::new(3);
        b.add_directed(NodeId(0), NodeId(1)).unwrap();
        b.add_directed(NodeId(1), NodeId(2)).unwrap();
        b.add_directed(NodeId(0), NodeId(2)).unwrap();
        let tri = b.build().unwrap();
        for u in tri.nodes() {
            assert_eq!(local_clustering(&tri, u), 1.0);
        }
        assert_eq!(average_clustering(&tri), 1.0);
        // Path: clustering 0.
        let mut b = NetworkBuilder::new(3);
        b.add_directed(NodeId(0), NodeId(1)).unwrap();
        b.add_directed(NodeId(1), NodeId(2)).unwrap();
        let path = b.build().unwrap();
        assert_eq!(average_clustering(&path), 0.0);
    }

    #[test]
    fn degree_pattern_on_star() {
        // All spokes point at the hub → perfect degree consistency.
        let mut b = NetworkBuilder::new(5);
        for i in 1..5u32 {
            b.add_directed(NodeId(i), NodeId(0)).unwrap();
        }
        let g = b.build().unwrap();
        assert_eq!(degree_pattern_prevalence(&g), 1.0);
        // Reversed star → 0.
        let mut b = NetworkBuilder::new(5);
        for i in 1..5u32 {
            b.add_directed(NodeId(0), NodeId(i)).unwrap();
        }
        let g = b.build().unwrap();
        assert_eq!(degree_pattern_prevalence(&g), 0.0);
    }

    #[test]
    fn triad_pattern_detects_cycles() {
        // Acyclic triangle 0→1→2, 0→2: prevalence 1.
        let mut b = NetworkBuilder::new(3);
        b.add_directed(NodeId(0), NodeId(1)).unwrap();
        b.add_directed(NodeId(1), NodeId(2)).unwrap();
        b.add_directed(NodeId(0), NodeId(2)).unwrap();
        let g = b.build().unwrap();
        assert_eq!(triad_pattern_prevalence(&g), 1.0);
        // Directed 3-cycle 0→1→2→0: every 2-path closes backward → 0.
        let mut b = NetworkBuilder::new(3);
        b.add_directed(NodeId(0), NodeId(1)).unwrap();
        b.add_directed(NodeId(1), NodeId(2)).unwrap();
        b.add_directed(NodeId(2), NodeId(0)).unwrap();
        let g = b.build().unwrap();
        assert_eq!(triad_pattern_prevalence(&g), 0.0);
    }

    #[test]
    fn generator_exhibits_both_patterns() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = social_network(&SocialNetConfig { n_nodes: 500, ..Default::default() }, &mut rng)
            .network;
        let r = PatternReport::measure(&g);
        assert!(r.degree_pattern > 0.6, "degree pattern {}", r.degree_pattern);
        assert!(r.triad_pattern > 0.6, "triad pattern {}", r.triad_pattern);
        assert!(r.clustering > 0.02, "clustering {}", r.clustering);
        assert!((r.reciprocity - 0.3).abs() < 0.1, "reciprocity {}", r.reciprocity);
    }

    #[test]
    fn degenerate_networks_are_neutral() {
        let mut b = NetworkBuilder::new(2);
        b.add_directed(NodeId(0), NodeId(1)).unwrap();
        let g = b.build().unwrap();
        // Equal degrees → no degree-pattern evidence.
        assert_eq!(degree_pattern_prevalence(&g), 0.5);
        assert_eq!(triad_pattern_prevalence(&g), 0.5);
        assert_eq!(reciprocity(&g), 0.0);
    }
}
