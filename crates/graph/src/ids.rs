//! Strongly-typed identifiers for nodes and ordered ties.
//!
//! Both identifiers are thin wrappers over `u32`: the paper's networks have at
//! most a few million ties, and 32-bit ids halve the memory footprint of the
//! adjacency structures relative to `usize` on 64-bit platforms.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node (an individual) in a [`crate::MixedSocialNetwork`].
///
/// Node ids are dense: a network with `n` nodes uses ids `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct NodeId(pub u32);

/// Identifier of an *ordered tie instance* in a [`crate::MixedSocialNetwork`].
///
/// A directed social tie `(u, v)` yields one ordered instance; bidirectional
/// and undirected social ties yield two (one per direction). Tie ids are dense
/// within a built network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct TieId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TieId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for TieId {
    #[inline]
    fn from(v: u32) -> Self {
        TieId(v)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for TieId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(NodeId::from(42u32), id);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn tie_id_roundtrip() {
        let id = TieId(7);
        assert_eq!(id.index(), 7);
        assert_eq!(TieId::from(7u32), id);
        assert_eq!(id.to_string(), "t7");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId(1) < NodeId(2));
        assert!(TieId(0) < TieId(1));
    }
}
