//! Synthetic network generators.
//!
//! The paper evaluates on crawls of Twitter, LiveJournal, Epinions, Slashdot
//! and Tencent, which are not redistributable. The [`social_network`]
//! generator produces networks with the structural properties the TDL task
//! relies on:
//!
//! * heavy-tailed degrees (preferential attachment),
//! * clustering (triangle closure),
//! * community structure (planted partition bias),
//! * controllable reciprocity (fraction of bidirectional ties), and
//! * direction orientation driven by a latent *status* score, consistent with
//!   the Degree Consistency and Triad Status Consistency patterns: edges run
//!   from lower-status to higher-status endpoints with probability
//!   `1 - flip_prob`. Status combines log-degree, a per-community potential
//!   (a direction signal that is *invisible* to plain degree/centrality
//!   features but recoverable from topology), and Gaussian noise.
//!
//! Simpler [`erdos_renyi`] and [`preferential_attachment`] generators support
//! unit tests and ablations.

use rand::Rng;

use crate::hash::FxHashSet;
use crate::ids::NodeId;
use crate::network::{MixedSocialNetwork, NetworkBuilder};

/// Configuration for [`social_network`].
#[derive(Debug, Clone)]
pub struct SocialNetConfig {
    /// Number of nodes.
    pub n_nodes: usize,
    /// Undirected skeleton edges attached per arriving node.
    pub m_per_node: usize,
    /// Probability that a new edge closes a triangle (neighbor-of-neighbor)
    /// instead of attaching preferentially.
    pub closure_prob: f64,
    /// Number of planted communities.
    pub n_communities: usize,
    /// Probability that a preferential attachment step insists on a target in
    /// the arriving node's own community.
    pub p_intra: f64,
    /// Probability that a skeleton edge becomes a bidirectional social tie.
    pub reciprocity: f64,
    /// Status weight on `ln(1 + degree)`.
    pub w_degree: f64,
    /// Status weight on the community potential.
    pub w_community: f64,
    /// Standard deviation of per-node Gaussian status noise.
    pub status_noise: f64,
    /// Probability that a directed edge is oriented *against* the status
    /// gradient (label noise of the direction signal).
    pub flip_prob: f64,
}

impl Default for SocialNetConfig {
    fn default() -> Self {
        SocialNetConfig {
            n_nodes: 2000,
            m_per_node: 5,
            closure_prob: 0.3,
            n_communities: 12,
            p_intra: 0.7,
            reciprocity: 0.3,
            w_degree: 1.0,
            w_community: 2.0,
            status_noise: 0.4,
            flip_prob: 0.1,
        }
    }
}

/// A generated network plus the latent ground truth that produced it.
#[derive(Debug, Clone)]
pub struct GeneratedNetwork {
    /// The mixed social network (directed + bidirectional ties, no
    /// undirected ties — matching the paper's raw datasets).
    pub network: MixedSocialNetwork,
    /// Latent status score per node (higher = higher social status).
    pub status: Vec<f64>,
    /// Community assignment per node.
    pub community: Vec<u32>,
}

/// Samples a standard Gaussian via Box–Muller (the `rand` crate alone ships
/// no normal distribution).
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Generates a social network per [`SocialNetConfig`]; see the module docs
/// for the model.
pub fn social_network<R: Rng>(cfg: &SocialNetConfig, rng: &mut R) -> GeneratedNetwork {
    assert!(cfg.n_nodes >= 2, "need at least two nodes");
    assert!(cfg.m_per_node >= 1, "need at least one edge per node");
    assert!(cfg.n_communities >= 1, "need at least one community");
    let n = cfg.n_nodes;

    // Community assignments and potentials.
    let community: Vec<u32> = (0..n).map(|_| rng.gen_range(0..cfg.n_communities as u32)).collect();
    let potential: Vec<f64> = (0..cfg.n_communities).map(|_| rng.gen::<f64>()).collect();

    // --- Skeleton: preferential attachment with triangle closure ---
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * cfg.m_per_node);
    // Repeated-endpoint list: each node appears once per incident edge, plus
    // once at arrival so isolated early nodes remain reachable.
    let mut pa_pool: Vec<u32> = Vec::with_capacity(2 * n * cfg.m_per_node + n);
    let mut edge_set: FxHashSet<(u32, u32)> = FxHashSet::default();
    edge_set.reserve(n * cfg.m_per_node);

    let add_edge = |a: u32,
                    b: u32,
                    adj: &mut Vec<Vec<u32>>,
                    edges: &mut Vec<(u32, u32)>,
                    pool: &mut Vec<u32>,
                    set: &mut FxHashSet<(u32, u32)>|
     -> bool {
        if a == b {
            return false;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if !set.insert(key) {
            return false;
        }
        adj[a as usize].push(b);
        adj[b as usize].push(a);
        edges.push(key);
        pool.push(a);
        pool.push(b);
        true
    };

    pa_pool.push(0);
    for v in 1..n as u32 {
        pa_pool.push(v);
        let want = cfg.m_per_node.min(v as usize);
        let mut added = 0usize;
        let mut attempts = 0usize;
        while added < want && attempts < 50 * want {
            attempts += 1;
            let use_closure = !adj[v as usize].is_empty() && rng.gen::<f64>() < cfg.closure_prob;
            let target = if use_closure {
                // Neighbor of a random existing neighbor → closes a triangle.
                let nbrs = &adj[v as usize];
                let u = nbrs[rng.gen_range(0..nbrs.len())];
                let second = &adj[u as usize];
                if second.is_empty() {
                    continue;
                }
                second[rng.gen_range(0..second.len())]
            } else {
                // Preferential attachment with community bias.
                let mut t = pa_pool[rng.gen_range(0..pa_pool.len())];
                if rng.gen::<f64>() < cfg.p_intra {
                    // Retry a few times for a same-community target.
                    for _ in 0..8 {
                        if community[t as usize] == community[v as usize] {
                            break;
                        }
                        t = pa_pool[rng.gen_range(0..pa_pool.len())];
                    }
                }
                t
            };
            if target >= v {
                continue;
            }
            if add_edge(v, target, &mut adj, &mut edges, &mut pa_pool, &mut edge_set) {
                added += 1;
            }
        }
        // Fall back to an arbitrary earlier node so the network stays
        // connected even when sampling kept colliding.
        if added == 0 {
            let mut t = rng.gen_range(0..v);
            let mut guard = 0;
            while !add_edge(v, t, &mut adj, &mut edges, &mut pa_pool, &mut edge_set) && guard < 32 {
                t = rng.gen_range(0..v);
                guard += 1;
            }
        }
    }

    // --- Status scores ---
    let status: Vec<f64> = (0..n)
        .map(|v| {
            cfg.w_degree * (1.0 + adj[v].len() as f64).ln()
                + cfg.w_community * potential[community[v] as usize]
                + cfg.status_noise * gaussian(rng)
        })
        .collect();

    // --- Orientation ---
    let mut builder = NetworkBuilder::with_capacity(
        n,
        edges.len(),
        (edges.len() as f64 * cfg.reciprocity) as usize,
        0,
    );
    for &(a, b) in &edges {
        if rng.gen::<f64>() < cfg.reciprocity {
            builder.add_bidirectional(NodeId(a), NodeId(b)).expect("skeleton edges are unique");
        } else {
            let (lo, hi) = if status[a as usize] <= status[b as usize] { (a, b) } else { (b, a) };
            let (src, dst) = if rng.gen::<f64>() < cfg.flip_prob { (hi, lo) } else { (lo, hi) };
            builder.add_directed(NodeId(src), NodeId(dst)).expect("skeleton edges are unique");
        }
    }
    let network =
        builder.build().expect("generator always emits directed ties for reciprocity < 1");
    GeneratedNetwork { network, status, community }
}

/// Directed Erdős–Rényi-style generator: `m` distinct directed ties sampled
/// uniformly, with `reciprocity` fraction converted to bidirectional ties.
pub fn erdos_renyi<R: Rng>(
    n: usize,
    m: usize,
    reciprocity: f64,
    rng: &mut R,
) -> MixedSocialNetwork {
    assert!(n >= 2);
    let mut builder = NetworkBuilder::with_capacity(n, m, 0, 0);
    let mut placed = 0usize;
    let mut attempts = 0usize;
    while placed < m && attempts < 100 * m + 1000 {
        attempts += 1;
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v || builder.has_tie_between(NodeId(u), NodeId(v)) {
            continue;
        }
        let ok = if rng.gen::<f64>() < reciprocity {
            builder.add_bidirectional(NodeId(u), NodeId(v)).is_ok()
        } else {
            builder.add_directed(NodeId(u), NodeId(v)).is_ok()
        };
        if ok {
            placed += 1;
        }
    }
    builder.build().expect("reciprocity < 1 leaves directed ties")
}

/// Watts–Strogatz small-world generator: a ring lattice with `k` neighbors
/// per side, each edge rewired with probability `rewire`, then oriented by
/// node-id "status" (lower id → higher id with probability `1 − flip`).
/// Used by tests and ablations that need high clustering with controlled
/// randomness.
pub fn watts_strogatz<R: Rng>(
    n: usize,
    k: usize,
    rewire: f64,
    flip: f64,
    rng: &mut R,
) -> MixedSocialNetwork {
    assert!(n >= 4, "need at least four nodes");
    assert!(k >= 1 && 2 * k < n, "k must satisfy 1 <= k < n/2");
    let mut edges: FxHashSet<(u32, u32)> = FxHashSet::default();
    for u in 0..n as u32 {
        for j in 1..=k as u32 {
            let v = (u + j) % n as u32;
            let key = if u < v { (u, v) } else { (v, u) };
            edges.insert(key);
        }
    }
    // Rewire: replace each original lattice edge's far endpoint.
    let originals: Vec<(u32, u32)> = edges.iter().copied().collect();
    for (a, b) in originals {
        if rng.gen::<f64>() >= rewire {
            continue;
        }
        let mut tries = 0;
        loop {
            tries += 1;
            if tries > 32 {
                break;
            }
            let c = rng.gen_range(0..n as u32);
            if c == a || c == b {
                continue;
            }
            let new_key = if a < c { (a, c) } else { (c, a) };
            if edges.contains(&new_key) {
                continue;
            }
            edges.remove(&(a.min(b), a.max(b)));
            edges.insert(new_key);
            break;
        }
    }
    let mut builder = NetworkBuilder::with_capacity(n, edges.len(), 0, 0);
    for (a, b) in edges {
        let (src, dst) = if rng.gen::<f64>() < flip { (b, a) } else { (a, b) };
        builder.add_directed(NodeId(src), NodeId(dst)).expect("edges are unique");
    }
    builder.build().expect("lattice edges exist")
}

/// Undirected preferential-attachment skeleton exposed for tests and
/// ablations: returns the edge list of a Barabási–Albert-style graph.
pub fn preferential_attachment<R: Rng>(n: usize, m: usize, rng: &mut R) -> Vec<(u32, u32)> {
    assert!(n >= 2 && m >= 1);
    let mut pool: Vec<u32> = vec![0];
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * m);
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    for v in 1..n as u32 {
        pool.push(v);
        let want = m.min(v as usize);
        let mut added = 0;
        let mut guard = 0;
        while added < want && guard < 50 * want {
            guard += 1;
            let t = pool[rng.gen_range(0..pool.len())];
            if t == v {
                continue;
            }
            let key = if t < v { (t, v) } else { (v, t) };
            if seen.insert(key) {
                edges.push(key);
                pool.push(v);
                pool.push(t);
                added += 1;
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::connected_components;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn social_network_respects_config() {
        let cfg =
            SocialNetConfig { n_nodes: 300, m_per_node: 4, reciprocity: 0.4, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(1);
        let g = social_network(&cfg, &mut rng);
        assert_eq!(g.network.n_nodes(), 300);
        let c = g.network.counts();
        assert!(c.directed > 0);
        assert!(c.bidirectional > 0);
        assert_eq!(c.undirected, 0);
        // Reciprocity close to requested.
        let frac = c.bidirectional as f64 / c.total() as f64;
        assert!((frac - 0.4).abs() < 0.08, "reciprocity {frac} too far from 0.4");
        assert_eq!(g.status.len(), 300);
        assert_eq!(g.community.len(), 300);
    }

    #[test]
    fn social_network_is_connected() {
        let cfg = SocialNetConfig { n_nodes: 500, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(2);
        let g = social_network(&cfg, &mut rng);
        let (_, n_comp) = connected_components(&g.network);
        assert_eq!(n_comp, 1, "attachment process must stay connected");
    }

    #[test]
    fn directions_follow_status() {
        let cfg = SocialNetConfig {
            n_nodes: 800,
            flip_prob: 0.05,
            reciprocity: 0.2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let g = social_network(&cfg, &mut rng);
        let mut up = 0usize;
        let mut total = 0usize;
        for (_, u, v) in g.network.directed_ties() {
            total += 1;
            if g.status[u.index()] <= g.status[v.index()] {
                up += 1;
            }
        }
        let frac = up as f64 / total as f64;
        assert!(frac > 0.9, "expected ≥90% status-increasing edges, got {frac}");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let cfg = SocialNetConfig { n_nodes: 1000, m_per_node: 3, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(4);
        let g = social_network(&cfg, &mut rng);
        let mut degs: Vec<usize> = g.network.nodes().map(|u| g.network.social_degree(u)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let max = degs[0] as f64;
        let median = degs[degs.len() / 2] as f64;
        assert!(max > 6.0 * median, "max degree {max} should dwarf median {median}");
    }

    #[test]
    fn erdos_renyi_produces_requested_ties() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = erdos_renyi(100, 300, 0.25, &mut rng);
        assert_eq!(g.counts().total(), 300);
        assert!(g.counts().bidirectional > 20);
    }

    #[test]
    fn preferential_attachment_edge_count() {
        let mut rng = StdRng::seed_from_u64(6);
        let edges = preferential_attachment(200, 2, &mut rng);
        // First node contributes 0, second contributes 1, rest ≈ m each.
        assert!(edges.len() >= 190 && edges.len() <= 200 * 2);
        let mut seen = FxHashSet::default();
        for &e in &edges {
            assert!(seen.insert(e), "duplicate edge {e:?}");
            assert!(e.0 < e.1);
        }
    }

    #[test]
    fn watts_strogatz_ring_structure() {
        let mut rng = StdRng::seed_from_u64(8);
        // No rewiring: pure ring lattice with 2k edges per node.
        let g = watts_strogatz(20, 2, 0.0, 0.0, &mut rng);
        assert_eq!(g.counts().directed, 20 * 2);
        for u in g.nodes() {
            assert_eq!(g.social_degree(u), 4, "ring lattice degree at {u}");
        }
        // All edges oriented low id → high id when flip = 0 (ring wrap
        // edges order by min/max id).
        for (_, a, b) in g.directed_ties() {
            assert!(a < b);
        }
    }

    #[test]
    fn watts_strogatz_rewiring_changes_edges() {
        let mut rng = StdRng::seed_from_u64(9);
        let ring = watts_strogatz(60, 3, 0.0, 0.0, &mut rng);
        let rewired = watts_strogatz(60, 3, 0.7, 0.0, &mut rng);
        assert_eq!(ring.counts().directed, rewired.counts().directed);
        // Rewired graph has edges the ring lacks.
        let mut moved = 0;
        for (_, a, b) in rewired.directed_ties() {
            if !ring.has_tie_between(a, b) {
                moved += 1;
            }
        }
        assert!(moved > 10, "rewiring moved {moved} edges");
        // Clustering drops under rewiring.
        let c_ring = crate::analysis::average_clustering(&ring);
        let c_rew = crate::analysis::average_clustering(&rewired);
        assert!(c_ring > c_rew, "clustering {c_ring} -> {c_rew}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
