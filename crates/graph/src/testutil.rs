//! Shared fixtures for unit tests (compiled only under `cfg(test)`).

use crate::ids::NodeId;
use crate::network::{MixedSocialNetwork, NetworkBuilder};

/// The running example network of Fig. 1 in the paper.
///
/// `V = {a..j}` mapped to ids `0..10`;
/// `E_d = {(d,a),(c,f),(e,d),(f,e),(h,f),(i,f),(f,j)}`,
/// `E_b = {(b,f),(d,f),(e,g),(e,h)}`,
/// `E_u = {(b,d),(c,j),(h,i)}`.
pub fn fig1_network() -> MixedSocialNetwork {
    let n = |i: u32| NodeId(i);
    let (a, b, c, d, e, f, g, h, i, j) =
        (n(0), n(1), n(2), n(3), n(4), n(5), n(6), n(7), n(8), n(9));
    let mut bld = NetworkBuilder::new(10);
    for (u, v) in [(d, a), (c, f), (e, d), (f, e), (h, f), (i, f), (f, j)] {
        bld.add_directed(u, v).unwrap();
    }
    for (u, v) in [(b, f), (d, f), (e, g), (e, h)] {
        bld.add_bidirectional(u, v).unwrap();
    }
    for (u, v) in [(b, d), (c, j), (h, i)] {
        bld.add_undirected(u, v).unwrap();
    }
    bld.build().unwrap()
}

/// A small purely-directed path-plus-fan network useful for traversal tests.
///
/// Edges: 0→1→2→3 and 0→4, 4→3.
pub fn diamond_network() -> MixedSocialNetwork {
    let mut b = NetworkBuilder::new(5);
    for (u, v) in [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)] {
        b.add_directed(NodeId(u), NodeId(v)).unwrap();
    }
    b.build().unwrap()
}
