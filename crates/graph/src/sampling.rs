//! Sub-network sampling and the hide-direction evaluation protocol.
//!
//! The paper's experiments (Sec. 6.1–6.2) sample sub-networks by breadth-first
//! traversal and then *hide the directions* of a random fraction of the
//! directed ties, turning them into undirected ties whose true orientation is
//! kept aside as ground truth for the direction-discovery task.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::ids::NodeId;
use crate::network::{MixedSocialNetwork, NetworkBuilder};
use crate::tie::TieKind;
use crate::traversal::bfs_order;

/// Induces the sub-network on `nodes`, relabeling them densely `0..k` in the
/// order given. Returns the sub-network and the mapping `new → old`.
pub fn induced_subnetwork(
    g: &MixedSocialNetwork,
    nodes: &[NodeId],
) -> (MixedSocialNetwork, Vec<NodeId>) {
    let mut old_to_new = vec![u32::MAX; g.n_nodes()];
    for (new, &old) in nodes.iter().enumerate() {
        old_to_new[old.index()] = new as u32;
    }
    let mut b = NetworkBuilder::new(nodes.len());
    for (_, t) in g.iter_ties() {
        let su = old_to_new[t.src.index()];
        let sv = old_to_new[t.dst.index()];
        if su == u32::MAX || sv == u32::MAX {
            continue;
        }
        match t.kind {
            TieKind::Directed => {
                b.add_directed(NodeId(su), NodeId(sv)).expect("induced ties are unique");
            }
            // Symmetric kinds appear as two instances; keep the canonical one.
            TieKind::Bidirectional if t.src < t.dst => {
                b.add_bidirectional(NodeId(su), NodeId(sv)).expect("induced ties are unique");
            }
            TieKind::Undirected if t.src < t.dst => {
                b.add_undirected(NodeId(su), NodeId(sv)).expect("induced ties are unique");
            }
            _ => {}
        }
    }
    (b.build_unchecked(), nodes.to_vec())
}

/// BFS sub-network sample of roughly `target_nodes` nodes starting from a
/// random seed, following the dataset preprocessing of Sec. 6.1.
pub fn bfs_subnetwork<R: Rng>(
    g: &MixedSocialNetwork,
    target_nodes: usize,
    rng: &mut R,
) -> (MixedSocialNetwork, Vec<NodeId>) {
    let seed = NodeId(rng.gen_range(0..g.n_nodes() as u32));
    let order = bfs_order(g, seed, target_nodes);
    induced_subnetwork(g, &order)
}

/// Output of [`hide_directions`]: the mixed network with hidden ties plus the
/// ground truth needed to score direction discovery.
#[derive(Debug, Clone)]
pub struct HiddenDirections {
    /// The network where the selected directed ties became undirected.
    pub network: MixedSocialNetwork,
    /// True orientations `(src, dst)` of the hidden ties, in hiding order.
    pub truth: Vec<(NodeId, NodeId)>,
}

/// Hides the directions of a random subset of directed ties so that the
/// fraction of ties that *remain directed* among `E_d ∪ E_u` is
/// `keep_directed_frac` (the x-axis of Figs. 3–5).
///
/// Bidirectional ties are untouched. At least one directed tie is always
/// kept, as Definition 1 requires.
pub fn hide_directions<R: Rng>(
    g: &MixedSocialNetwork,
    keep_directed_frac: f64,
    rng: &mut R,
) -> HiddenDirections {
    assert!(
        (0.0..=1.0).contains(&keep_directed_frac),
        "keep fraction must be in [0, 1], got {keep_directed_frac}"
    );
    let directed: Vec<(NodeId, NodeId)> = g.directed_ties().map(|(_, u, v)| (u, v)).collect();
    let mut idx: Vec<usize> = (0..directed.len()).collect();
    idx.shuffle(rng);
    let keep = ((directed.len() as f64) * keep_directed_frac).round() as usize;
    let keep = keep.clamp(1, directed.len());
    let mut hidden = vec![false; directed.len()];
    for &i in &idx[keep..] {
        hidden[i] = true;
    }

    let counts = g.counts();
    let mut b = NetworkBuilder::with_capacity(
        g.n_nodes(),
        keep,
        counts.bidirectional,
        directed.len() - keep + counts.undirected,
    );
    let mut truth = Vec::with_capacity(directed.len() - keep);
    for (i, &(u, v)) in directed.iter().enumerate() {
        if hidden[i] {
            b.add_undirected(u, v).expect("source ties are unique");
            truth.push((u, v));
        } else {
            b.add_directed(u, v).expect("source ties are unique");
        }
    }
    for (_, u, v) in g.bidirectional_pairs() {
        b.add_bidirectional(u, v).expect("source ties are unique");
    }
    for (_, u, v) in g.undirected_pairs() {
        b.add_undirected(u, v).expect("source ties are unique");
    }
    HiddenDirections { network: b.build().expect("at least one directed tie kept"), truth }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{social_network, SocialNetConfig};
    use crate::testutil::fig1_network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn induced_subnetwork_keeps_internal_ties() {
        let g = fig1_network();
        // Take {e(4), f(5), d(3)}: internal ties (e,d) directed, (d,f) bidi,
        // (f,e) directed.
        let (sub, map) = induced_subnetwork(&g, &[NodeId(4), NodeId(5), NodeId(3)]);
        assert_eq!(sub.n_nodes(), 3);
        assert_eq!(map, vec![NodeId(4), NodeId(5), NodeId(3)]);
        assert_eq!(sub.counts().directed, 2);
        assert_eq!(sub.counts().bidirectional, 1);
        assert_eq!(sub.counts().undirected, 0);
        // (e,d) in old ids → (0, 2) in new ids.
        assert!(sub.find_tie(NodeId(0), NodeId(2)).is_some());
    }

    #[test]
    fn bfs_subnetwork_size() {
        let cfg = SocialNetConfig { n_nodes: 500, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(11);
        let g = social_network(&cfg, &mut rng).network;
        let (sub, map) = bfs_subnetwork(&g, 120, &mut rng);
        assert_eq!(sub.n_nodes(), 120);
        assert_eq!(map.len(), 120);
    }

    #[test]
    fn hide_directions_fractions() {
        let cfg = SocialNetConfig { n_nodes: 400, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(12);
        let g = social_network(&cfg, &mut rng).network;
        let n_dir = g.counts().directed;
        let h = hide_directions(&g, 0.25, &mut rng);
        let kept = h.network.counts().directed;
        let hidden = h.network.counts().undirected;
        assert_eq!(kept + hidden, n_dir);
        assert_eq!(h.truth.len(), hidden);
        let frac = kept as f64 / n_dir as f64;
        assert!((frac - 0.25).abs() < 0.01, "kept fraction {frac}");
        // Bidirectional ties untouched.
        assert_eq!(h.network.counts().bidirectional, g.counts().bidirectional);
    }

    #[test]
    fn hidden_truth_matches_undirected_set() {
        let g = fig1_network();
        let mut rng = StdRng::seed_from_u64(13);
        let h = hide_directions(&g, 0.5, &mut rng);
        for &(u, v) in &h.truth {
            let t = h.network.find_tie(u, v).expect("hidden tie must exist as undirected instance");
            assert_eq!(h.network.tie(t).kind, TieKind::Undirected);
        }
    }

    #[test]
    fn always_keeps_one_directed_tie() {
        let g = fig1_network();
        let mut rng = StdRng::seed_from_u64(14);
        let h = hide_directions(&g, 0.0, &mut rng);
        assert_eq!(h.network.counts().directed, 1);
    }

    #[test]
    #[should_panic(expected = "keep fraction")]
    fn rejects_bad_fraction() {
        let g = fig1_network();
        let mut rng = StdRng::seed_from_u64(15);
        let _ = hide_directions(&g, 1.5, &mut rng);
    }
}
