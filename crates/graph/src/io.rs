//! Text edge-list I/O for mixed social networks.
//!
//! Format: one tie per line, `<kind> <src> <dst>` where `kind` is `d`
//! (directed), `b` (bidirectional) or `u` (undirected). Lines starting with
//! `#` and blank lines are ignored. A header line `n <count>` may declare the
//! node count; otherwise it is inferred as `max id + 1`.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::error::GraphError;
use crate::ids::NodeId;
use crate::network::{MixedSocialNetwork, NetworkBuilder};
use crate::tie::TieKind;

/// Writes `g` in the text edge-list format.
pub fn write_edge_list<W: Write>(g: &MixedSocialNetwork, mut w: W) -> Result<(), GraphError> {
    writeln!(w, "n {}", g.n_nodes())?;
    for (_, u, v) in g.directed_ties() {
        writeln!(w, "d {} {}", u.0, v.0)?;
    }
    for (_, u, v) in g.bidirectional_pairs() {
        writeln!(w, "b {} {}", u.0, v.0)?;
    }
    for (_, u, v) in g.undirected_pairs() {
        writeln!(w, "u {} {}", u.0, v.0)?;
    }
    Ok(())
}

/// Reads a network from the text edge-list format.
pub fn read_edge_list<R: Read>(r: R) -> Result<MixedSocialNetwork, GraphError> {
    let reader = BufReader::new(r);
    let mut declared_nodes: Option<usize> = None;
    let mut ties: Vec<(TieKind, u32, u32)> = Vec::new();
    let mut max_id = 0u32;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let head = parts.next().unwrap_or("");
        let parse_err =
            |msg: &str| GraphError::Parse { line: lineno + 1, message: msg.to_string() };
        if head == "n" {
            let count: usize = parts
                .next()
                .ok_or_else(|| parse_err("missing node count"))?
                .parse()
                .map_err(|_| parse_err("bad node count"))?;
            declared_nodes = Some(count);
            continue;
        }
        let kind = head
            .chars()
            .next()
            .and_then(TieKind::from_code)
            .filter(|_| head.len() == 1)
            .ok_or_else(|| parse_err("kind must be one of d/b/u"))?;
        let u: u32 = parts
            .next()
            .ok_or_else(|| parse_err("missing src"))?
            .parse()
            .map_err(|_| parse_err("bad src id"))?;
        let v: u32 = parts
            .next()
            .ok_or_else(|| parse_err("missing dst"))?
            .parse()
            .map_err(|_| parse_err("bad dst id"))?;
        if parts.next().is_some() {
            return Err(parse_err("trailing tokens"));
        }
        max_id = max_id.max(u).max(v);
        ties.push((kind, u, v));
    }
    let n_nodes = declared_nodes.unwrap_or(max_id as usize + 1);
    let mut b = NetworkBuilder::new(n_nodes);
    for (kind, u, v) in ties {
        let (u, v) = (NodeId(u), NodeId(v));
        match kind {
            TieKind::Directed => b.add_directed(u, v)?,
            TieKind::Bidirectional => b.add_bidirectional(u, v)?,
            TieKind::Undirected => b.add_undirected(u, v)?,
        };
    }
    b.build()
}

/// Writes `g` to the file at `path`.
pub fn save_edge_list<P: AsRef<Path>>(g: &MixedSocialNetwork, path: P) -> Result<(), GraphError> {
    let f = std::fs::File::create(path)?;
    write_edge_list(g, std::io::BufWriter::new(f))
}

/// Reads a network from the file at `path`.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<MixedSocialNetwork, GraphError> {
    let f = std::fs::File::open(path)?;
    read_edge_list(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig1_network;

    #[test]
    fn roundtrip_preserves_network() {
        let g = fig1_network();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.n_nodes(), g.n_nodes());
        assert_eq!(g2.counts(), g.counts());
        for (_, t) in g.iter_ties() {
            let id = g2.find_tie(t.src, t.dst).expect("tie survives roundtrip");
            assert_eq!(g2.tie(id).kind, t.kind);
        }
    }

    #[test]
    fn parses_comments_and_blanks() {
        let text = "# comment\n\nn 4\nd 0 1\nb 1 2\nu 2 3\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.counts().directed, 1);
        assert_eq!(g.counts().bidirectional, 1);
        assert_eq!(g.counts().undirected, 1);
    }

    #[test]
    fn infers_node_count() {
        let g = read_edge_list("d 0 7\n".as_bytes()).unwrap();
        assert_eq!(g.n_nodes(), 8);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(
            read_edge_list("x 0 1\n".as_bytes()),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_edge_list("d 0\n".as_bytes()),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_edge_list("d 0 abc\n".as_bytes()),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_edge_list("d 0 1 2\n".as_bytes()),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_duplicate_on_load() {
        let err = read_edge_list("d 0 1\nd 1 0\n".as_bytes());
        assert!(matches!(err, Err(GraphError::DuplicateTie { .. })));
    }

    #[test]
    fn file_roundtrip() {
        let g = fig1_network();
        let dir = std::env::temp_dir().join("dd_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.edges");
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path).unwrap();
        assert_eq!(g2.counts(), g.counts());
        std::fs::remove_file(&path).ok();
    }
}
