//! # dd-graph — mixed social network substrate for DeepDirect
//!
//! This crate implements the graph model of *DeepDirect: Learning Directions
//! of Social Ties with Edge-based Network Embedding* (TKDE 2018 / ICDE 2019):
//! the **mixed social network** `G = (V, E_d ∪ E_b ∪ E_u)` with directed,
//! bidirectional and undirected ties (Definition 1), along with every graph
//! primitive the paper's methods consume:
//!
//! * mixed in/out degrees with half-weight undirected ties (Eqs. 1–2)
//!   — [`degrees`],
//! * connected ties, tie degrees and `C(G)` (Definition 4, Eq. 6) — [`ties`],
//! * closeness and betweenness centrality (Eqs. 3–4) — [`centrality`],
//! * the 16 directed triad count features (Sec. 3.1) — [`triads`],
//! * line graphs for the size-blow-up argument of Sec. 4 — [`linegraph`],
//! * BFS sub-network sampling and the hide-direction evaluation protocol
//!   (Sec. 6.1–6.2) — [`sampling`],
//! * synthetic social network generators with status-driven tie directions,
//!   standing in for the paper's five proprietary crawls — [`generators`],
//! * clustering / reciprocity / directionality-pattern prevalence
//!   measurements — [`analysis`].
//!
//! ## Quick example
//!
//! ```
//! use dd_graph::{NetworkBuilder, NodeId};
//!
//! let mut b = NetworkBuilder::new(3);
//! b.add_directed(NodeId(0), NodeId(1)).unwrap();
//! b.add_undirected(NodeId(1), NodeId(2)).unwrap();
//! let g = b.build().unwrap();
//! assert_eq!(g.counts().directed, 1);
//! assert_eq!(g.n_ordered_ties(), 3); // undirected ties materialize twice
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod centrality;
pub mod degrees;
pub mod error;
pub mod generators;
pub mod hash;
pub mod ids;
pub mod io;
pub mod linegraph;
pub mod network;
pub mod sampling;
pub mod tie;
pub mod ties;
pub mod traversal;
pub mod triads;

#[cfg(test)]
pub(crate) mod testutil;

pub use error::GraphError;
pub use ids::{NodeId, TieId};
pub use network::{MixedSocialNetwork, NetworkBuilder, TieCounts};
pub use tie::{OrderedTie, TieKind};
