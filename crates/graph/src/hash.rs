//! A fast, non-cryptographic hasher for integer-keyed maps.
//!
//! The standard library's SipHash is HashDoS-resistant but slow for the small
//! integer keys that dominate graph workloads (node pairs, tie ids). This
//! module provides an FxHash-style multiply-and-rotate hasher, which is the
//! same family of hash used by `rustc` itself. All inputs here are internal
//! ids, never attacker-controlled, so DoS resistance is irrelevant.

// dd-lint: allow(determinism) — this module *defines* the sanctioned
// deterministic aliases; the std types appear only to be re-keyed with a
// fixed-seed hasher, which removes the per-process randomness
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

// dd-lint: allow(determinism) — alias definition; fixed-seed hasher makes
// iteration order a pure function of the insertion sequence
/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

// dd-lint: allow(determinism) — alias definition; fixed-seed hasher makes
// iteration order a pure function of the insertion sequence
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style hasher: a single multiply and rotate per word.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Chunked word-at-a-time path; the tail is folded into one word.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_inserts_and_looks_up() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i + 1), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(500, 501)), Some(&500));
        assert_eq!(m.get(&(501, 500)), None);
    }

    #[test]
    fn set_distinguishes_pair_order() {
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
        assert!(!s.contains(&(2, 1)));
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(12345), h(12345));
        assert_ne!(h(12345), h(12346));
    }

    #[test]
    fn byte_writes_cover_tail() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12]);
        assert_ne!(a.finish(), b.finish());
    }
}
